//! Metrics analysis: summaries, time series, and burst-recovery detection
//! (the paper's *metrics analyzer* component).

use serde::{Deserialize, Serialize};

use crate::consumer::LatencySample;

/// One probe of the SUT's input-topic consumer lag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LagSample {
    /// Milliseconds since the measurement window opened.
    pub t_ms: f64,
    /// Unread input events at probe time.
    pub lag: u64,
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean (ms).
    pub mean: f64,
    /// Population standard deviation (ms).
    pub std: f64,
    /// Minimum (ms).
    pub min: f64,
    /// Maximum (ms).
    pub max: f64,
    /// Median (ms).
    pub p50: f64,
    /// 95th percentile (ms).
    pub p95: f64,
    /// 99th percentile (ms).
    pub p99: f64,
}

impl Summary {
    /// The all-zero summary for an empty sample set.
    pub fn empty() -> Summary {
        Summary {
            count: 0,
            mean: 0.0,
            std: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p95: 0.0,
            p99: 0.0,
        }
    }

    /// Summarise an observability histogram snapshot of **nanosecond**
    /// samples into the usual millisecond summary. Quantiles come from the
    /// log-bucketed histogram, so they carry its resolution (≤ 1/32
    /// relative error) rather than being exact order statistics.
    pub fn from_histogram(hist: &crate::obs::HistogramSnapshot) -> Summary {
        if hist.count() == 0 {
            return Summary::empty();
        }
        const NS_PER_MS: f64 = 1e6;
        Summary {
            count: hist.count() as usize,
            mean: hist.mean() / NS_PER_MS,
            std: hist.stddev() / NS_PER_MS,
            min: hist.min() as f64 / NS_PER_MS,
            max: hist.max() as f64 / NS_PER_MS,
            p50: hist.percentile(0.50) / NS_PER_MS,
            p95: hist.percentile(0.95) / NS_PER_MS,
            p99: hist.percentile(0.99) / NS_PER_MS,
        }
    }
}

/// Percentile over a **sorted** slice with linear interpolation between
/// closest ranks (the `C = 1` / numpy `linear` variant): `q` maps to the
/// fractional position `q * (n - 1)` and the two straddling samples are
/// blended. Unlike nearest-rank this is continuous in `q` and unbiased for
/// small sample sets.
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Summarise a set of latency values (order irrelevant).
pub fn summarize(values: &[f64]) -> Summary {
    if values.is_empty() {
        return Summary::empty();
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let mean = sorted.iter().sum::<f64>() / n;
    let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Summary {
        count: sorted.len(),
        mean,
        std: var.sqrt(),
        min: sorted[0],
        max: *sorted.last().expect("non-empty"),
        p50: percentile_sorted(&sorted, 0.50),
        p95: percentile_sorted(&sorted, 0.95),
        p99: percentile_sorted(&sorted, 0.99),
    }
}

/// One time bucket of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Bucket start, in ms since the first sample.
    pub start_ms: f64,
    /// Completed events in the bucket.
    pub count: usize,
    /// Throughput over the bucket (events/s).
    pub throughput_eps: f64,
    /// Mean latency of events completing in the bucket (ms).
    pub mean_latency_ms: f64,
    /// Max latency in the bucket (ms).
    pub max_latency_ms: f64,
}

/// Bucket samples by completion time into fixed windows.
pub fn bucketize(samples: &[LatencySample], window_ms: f64) -> Vec<Bucket> {
    if samples.is_empty() || window_ms <= 0.0 {
        return Vec::new();
    }
    let t0 = samples
        .iter()
        .map(|s| s.end_ms)
        .fold(f64::INFINITY, f64::min);
    let t1 = samples
        .iter()
        .map(|s| s.end_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    let n_buckets = ((t1 - t0) / window_ms).floor() as usize + 1;
    let mut counts = vec![0usize; n_buckets];
    let mut sums = vec![0.0f64; n_buckets];
    let mut maxes = vec![0.0f64; n_buckets];
    for s in samples {
        let i = (((s.end_ms - t0) / window_ms) as usize).min(n_buckets - 1);
        counts[i] += 1;
        sums[i] += s.latency_ms;
        maxes[i] = maxes[i].max(s.latency_ms);
    }
    (0..n_buckets)
        .map(|i| Bucket {
            start_ms: i as f64 * window_ms,
            count: counts[i],
            throughput_eps: counts[i] as f64 / (window_ms / 1e3),
            mean_latency_ms: if counts[i] > 0 {
                sums[i] / counts[i] as f64
            } else {
                0.0
            },
            max_latency_ms: maxes[i],
        })
        .collect()
}

/// Throughput over a sample window: completed events divided by the span of
/// completion times.
pub fn throughput_eps(samples: &[LatencySample]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let t0 = samples
        .iter()
        .map(|s| s.end_ms)
        .fold(f64::INFINITY, f64::min);
    let t1 = samples
        .iter()
        .map(|s| s.end_ms)
        .fold(f64::NEG_INFINITY, f64::max);
    if t1 <= t0 {
        return 0.0;
    }
    (samples.len() - 1) as f64 / ((t1 - t0) / 1e3)
}

/// Time for the SUT to recover after a burst (§5.1.4): the interval between
/// the burst's end and the start of the first bucket whose mean latency is
/// back within `factor ×` the pre-burst baseline and stays there for
/// `stable_buckets` consecutive buckets. `None` if it never recovers within
/// the sampled window.
pub fn recovery_time_s(
    buckets: &[Bucket],
    burst_end_ms: f64,
    baseline_latency_ms: f64,
    factor: f64,
    stable_buckets: usize,
) -> Option<f64> {
    let threshold = baseline_latency_ms * factor;
    let window = stable_buckets.max(1);
    let after: Vec<&Bucket> = buckets
        .iter()
        .filter(|b| b.start_ms >= burst_end_ms)
        .collect();
    for i in 0..after.len() {
        if i + window > after.len() {
            break;
        }
        if after[i..i + window]
            .iter()
            .all(|b| b.count == 0 || b.mean_latency_ms <= threshold)
        {
            return Some((after[i].start_ms - burst_end_ms) / 1e3);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample(end_ms: f64, latency_ms: f64) -> LatencySample {
        LatencySample {
            id: 0,
            end_ms,
            latency_ms,
        }
    }

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
        // Interpolated ranks: position q * (n - 1) over [1..5].
        assert!((s.p95 - 4.8).abs() < 1e-9, "p95 = {}", s.p95);
        assert!((s.p99 - 4.96).abs() < 1e-9, "p99 = {}", s.p99);
        assert!((s.std - 2.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn percentiles_interpolate_between_ranks() {
        // Two samples: the median is their midpoint, not either endpoint.
        let s = summarize(&[10.0, 20.0]);
        assert!((s.p50 - 15.0).abs() < 1e-9);
        // A single sample is every percentile.
        let s = summarize(&[7.0]);
        assert_eq!((s.p50, s.p95, s.p99), (7.0, 7.0, 7.0));
    }

    #[test]
    fn from_histogram_tracks_exact_summary() {
        // Millisecond values 1..=1000 recorded as nanoseconds; the
        // log-bucketed histogram must reproduce the quantiles within one
        // bucket (≤ 1/32 relative error).
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let mut snap = crate::obs::HistogramSnapshot::empty();
        for v in &values {
            snap.record((*v * 1e6) as u64);
        }
        let exact = summarize(&values);
        let approx = Summary::from_histogram(&snap);
        assert_eq!(approx.count, exact.count);
        for (name, a, e) in [
            ("p50", approx.p50, exact.p50),
            ("p95", approx.p95, exact.p95),
            ("p99", approx.p99, exact.p99),
        ] {
            assert!(
                (a - e).abs() <= e / 32.0 + 1e-6,
                "{name}: histogram {a} vs exact {e}"
            );
        }
        assert!((approx.mean - exact.mean).abs() <= exact.mean / 16.0);
        assert!((approx.min - exact.min).abs() < 1e-9);
        assert!((approx.max - exact.max).abs() < 1e-9);
    }

    #[test]
    fn from_histogram_of_empty_is_zeroes() {
        let s = Summary::from_histogram(&crate::obs::HistogramSnapshot::empty());
        assert_eq!(s, Summary::empty());
    }

    #[test]
    fn summary_of_empty_is_zeroes() {
        assert_eq!(summarize(&[]).count, 0);
    }

    #[test]
    fn bucketize_counts_and_rates() {
        let samples = vec![
            sample(1000.0, 10.0),
            sample(1100.0, 20.0),
            sample(2500.0, 30.0),
        ];
        let buckets = bucketize(&samples, 1000.0);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].count, 2);
        assert!((buckets[0].mean_latency_ms - 15.0).abs() < 1e-9);
        assert!((buckets[0].throughput_eps - 2.0).abs() < 1e-9);
        assert_eq!(buckets[1].count, 1);
        assert_eq!(buckets[1].max_latency_ms, 30.0);
    }

    #[test]
    fn throughput_from_span() {
        let samples: Vec<LatencySample> = (0..101)
            .map(|i| sample(1000.0 + i as f64 * 10.0, 1.0))
            .collect();
        // 100 intervals over 1 second.
        assert!((throughput_eps(&samples) - 100.0).abs() < 1e-6);
        assert_eq!(throughput_eps(&samples[..1]), 0.0);
    }

    #[test]
    fn recovery_detected_after_burst() {
        // Latency spikes during the burst (ends at 3000 ms) and decays.
        let mut buckets = Vec::new();
        for (i, lat) in [10.0, 10.0, 200.0, 150.0, 80.0, 12.0, 11.0, 10.0]
            .iter()
            .enumerate()
        {
            buckets.push(Bucket {
                start_ms: i as f64 * 1000.0,
                count: 5,
                throughput_eps: 5.0,
                mean_latency_ms: *lat,
                max_latency_ms: *lat,
            });
        }
        let rec = recovery_time_s(&buckets, 3000.0, 10.0, 1.5, 2).unwrap();
        // First stable bucket starts at 5000 ms → 2 s after burst end.
        assert!((rec - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recovery_none_when_latency_stays_high() {
        let buckets: Vec<Bucket> = (0..5)
            .map(|i| Bucket {
                start_ms: i as f64 * 1000.0,
                count: 1,
                throughput_eps: 1.0,
                mean_latency_ms: 500.0,
                max_latency_ms: 500.0,
            })
            .collect();
        assert!(recovery_time_s(&buckets, 0.0, 10.0, 1.5, 2).is_none());
    }

    proptest! {
        #[test]
        fn percentiles_match_sorted_reference(
            values in proptest::collection::vec(0.0f64..1e6, 1..200),
        ) {
            let s = summarize(&values);
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            prop_assert_eq!(s.min, sorted[0]);
            prop_assert_eq!(s.max, *sorted.last().unwrap());
            // The interpolated median lies within the sample range and at
            // least half the samples lie at or below it.
            prop_assert!(s.p50 >= s.min && s.p50 <= s.max);
            let at_or_below = sorted.iter().filter(|&&v| v <= s.p50).count();
            prop_assert!(at_or_below * 2 >= sorted.len());
            // Ordering of the quantiles.
            prop_assert!(s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        }

        #[test]
        fn bucket_counts_sum_to_sample_count(
            times in proptest::collection::vec(0.0f64..10_000.0, 1..100),
        ) {
            let samples: Vec<LatencySample> =
                times.iter().map(|&t| sample(t, 1.0)).collect();
            let buckets = bucketize(&samples, 500.0);
            let total: usize = buckets.iter().map(|b| b.count).sum();
            prop_assert_eq!(total, samples.len());
        }
    }
}
