//! `crayfish-worker` — one engine worker as a standalone process.
//!
//! Connects to a `crayfish-node` cluster through the failover-aware
//! client, consumes its assigned input partitions, scores every batch
//! with the embedded ONNX runtime, and produces `ScoredBatch` records to
//! the output topic. Offsets are committed only after the scored output
//! is flushed, so a SIGKILL anywhere in the loop replays uncommitted
//! batches on the next incarnation (at-least-once; the broker's
//! idempotence window drops producer-side retries). The process runs
//! until killed — the parent experiment supervises and respawns it.
//!
//! ```text
//! crayfish-worker --nodes 0=127.0.0.1:4100,1=127.0.0.1:4101 \
//!                 --input crayfish-in-0 --output crayfish-out-0 \
//!                 --group crayfish-sut --partitions 0,2,4 \
//!                 --model tiny-mlp --seed 42
//! ```

#![forbid(unsafe_code)]

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crayfish_broker::{BrokerApi, PartitionConsumer, Producer, ProducerConfig};
use crayfish_chaos::ChaosHandle;
use crayfish_core::scoring::{score_payload, ScorerSpec};
use crayfish_models::ModelSpec;
use crayfish_obs::ObsHandle;
use crayfish_runtime::{Device, EmbeddedLib};

struct Args {
    nodes: Vec<(u32, SocketAddr)>,
    input: String,
    output: String,
    group: String,
    partitions: Vec<u32>,
    model: String,
    seed: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: crayfish-worker --nodes ID=ADDR[,ID=ADDR]... --input TOPIC --output TOPIC \
         --group GROUP --partitions P[,P]... --model NAME [--seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut nodes = Vec::new();
    let mut input = None;
    let mut output = None;
    let mut group = None;
    let mut partitions = Vec::new();
    let mut model = None;
    let mut seed = 42u64;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let Some(v) = argv.next() else { usage() };
        match flag.as_str() {
            "--nodes" => {
                for part in v.split(',') {
                    let Some((id, addr)) = part.split_once('=') else {
                        usage()
                    };
                    match (id.parse(), addr.parse()) {
                        (Ok(i), Ok(a)) => nodes.push((i, a)),
                        _ => usage(),
                    }
                }
            }
            "--input" => input = Some(v),
            "--output" => output = Some(v),
            "--group" => group = Some(v),
            "--partitions" => {
                for p in v.split(',') {
                    match p.parse() {
                        Ok(p) => partitions.push(p),
                        Err(_) => usage(),
                    }
                }
            }
            "--model" => model = Some(v),
            "--seed" => seed = v.parse().unwrap_or(42),
            _ => usage(),
        }
    }
    let (Some(input), Some(output), Some(group), Some(model)) = (input, output, group, model)
    else {
        usage()
    };
    if nodes.is_empty() || partitions.is_empty() {
        usage();
    }
    Args {
        nodes,
        input,
        output,
        group,
        partitions,
        model,
        seed,
    }
}

fn run(args: &Args) -> Result<(), String> {
    let broker: Arc<dyn BrokerApi> = crayfish_broker::connect_cluster(
        &args.nodes,
        ObsHandle::disabled(),
        ChaosHandle::disabled(),
    );
    // The parent creates the topics after spawning us; wait for them.
    let deadline = crayfish_sim::now() + Duration::from_secs(10);
    while broker.partitions(&args.input).is_err() || broker.partitions(&args.output).is_err() {
        if crayfish_sim::now() >= deadline {
            return Err(format!(
                "topics {}/{} never appeared",
                args.input, args.output
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let spec = ModelSpec::by_name(&args.model).map_err(|e| e.to_string())?;
    let graph = Arc::new(spec.build(args.seed));
    let mut scorer = ScorerSpec::Embedded {
        lib: EmbeddedLib::Onnx,
        graph,
        device: Device::Cpu,
    }
    .build()
    .map_err(|e| e.to_string())?;

    let mut consumer = PartitionConsumer::new(
        broker.clone(),
        &args.input,
        &args.group,
        args.partitions.clone(),
    )
    .map_err(|e| e.to_string())?;
    let mut producer = Producer::new(broker.clone(), &args.output, ProducerConfig::default())
        .map_err(|e| e.to_string())?;

    loop {
        let records = match consumer.poll(Duration::from_millis(100)) {
            Ok(r) => r,
            Err(e) if e.is_transient() => {
                // Broker failover in progress; the cluster client retries,
                // and anything unacked replays from committed offsets.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
            Err(e) => return Err(format!("poll: {e}")),
        };
        if records.is_empty() {
            continue;
        }
        for rec in records {
            if let Ok(out) = score_payload(scorer.as_mut(), &rec.value) {
                let _ = producer.send(None, out);
            }
        }
        // Flush the scored output before committing input offsets:
        // crash-at-any-point then replays, never drops.
        producer.flush();
        consumer.commit();
    }
}

fn main() {
    let args = parse_args();
    if let Err(e) = run(&args) {
        eprintln!("crayfish-worker: {e}");
        std::process::exit(1);
    }
}
