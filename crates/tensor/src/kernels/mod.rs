//! Neural-network compute kernels.
//!
//! All kernels are single-threaded (one intra-op thread, matching the
//! paper's serving-tool configuration) and operate on the row-major layouts
//! documented in the crate root.

pub mod activation;
pub mod conv;
pub mod gemm;
pub mod norm;
pub mod pool;

pub use activation::{relu_inplace, softmax_rows};
pub use conv::{conv2d_direct, conv2d_im2col, Conv2dParams};
pub use gemm::{dense, gemm, matmul_naive};
pub use norm::{batchnorm_inference, BnParams};
pub use pool::{avgpool_global, maxpool2d};

/// Elementwise `a += b` for residual connections.
///
/// # Panics
/// Panics if the slices differ in length (graph validation guarantees they
/// do not).
pub fn add_inplace(a: &mut [f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "add_inplace length mismatch");
    for (x, y) in a.iter_mut().zip(b) {
        *x += y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_inplace_adds() {
        let mut a = vec![1.0, 2.0];
        add_inplace(&mut a, &[10.0, 20.0]);
        assert_eq!(a, vec![11.0, 22.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_inplace_panics_on_mismatch() {
        let mut a = vec![1.0];
        add_inplace(&mut a, &[1.0, 2.0]);
    }
}
