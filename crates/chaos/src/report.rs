//! The per-run recovery report: chaos runs produce numbers, not pass/fail.

use std::fmt;

use serde::{Deserialize, Serialize};

/// One fault window as observed at runtime (times relative to chaos start).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncidentReport {
    /// Stable fault-kind name (`partition_outage`, …).
    pub kind: String,
    /// When the fault began, ms from chaos start.
    pub start_ms: f64,
    /// When the fault window ended, if it did.
    pub end_ms: Option<f64>,
    /// Mean time to recovery: fault start → the fault domain's recovery
    /// criterion. For serving and engine faults that is the first
    /// post-fault success; for broker faults it is the consumer's lag
    /// returning to zero (backlog fully drained), not merely the first
    /// successful poll. `None` if the fabric never proved recovery.
    pub mttr_ms: Option<f64>,
}

/// Aggregated recovery numbers for one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Every injected fault window.
    pub incidents: Vec<IncidentReport>,
    /// Mean MTTR over recovered incidents.
    pub mean_mttr_ms: Option<f64>,
    /// Worst MTTR over recovered incidents.
    pub max_mttr_ms: Option<f64>,
    /// Incidents whose window ended without a subsequent success.
    pub unrecovered: usize,
    /// Records the broker dropped as duplicate re-sends (producer retries
    /// whose first attempt had actually landed).
    pub duplicates_dropped: u64,
    /// Total time spent inside fault windows, ms.
    pub fault_time_ms: f64,
    /// Observation period (chaos start → report), ms.
    pub observed_ms: f64,
}

impl RecoveryReport {
    pub(crate) fn new(
        incidents: Vec<IncidentReport>,
        fault_time_ms: f64,
        observed_ms: f64,
        duplicates_dropped: u64,
    ) -> Self {
        let mttrs: Vec<f64> = incidents.iter().filter_map(|i| i.mttr_ms).collect();
        let unrecovered = incidents
            .iter()
            .filter(|i| i.end_ms.is_some() && i.mttr_ms.is_none())
            .count();
        RecoveryReport {
            mean_mttr_ms: if mttrs.is_empty() {
                None
            } else {
                Some(mttrs.iter().sum::<f64>() / mttrs.len() as f64)
            },
            max_mttr_ms: mttrs.iter().cloned().fold(None, |acc, x| {
                Some(match acc {
                    None => x,
                    Some(a) => a.max(x),
                })
            }),
            unrecovered,
            incidents,
            duplicates_dropped,
            fault_time_ms,
            observed_ms,
        }
    }

    /// Fraction of the observation period spent outside fault windows.
    pub fn availability(&self) -> f64 {
        if self.observed_ms <= 0.0 {
            return 1.0;
        }
        (1.0 - self.fault_time_ms / self.observed_ms).clamp(0.0, 1.0)
    }
}

impl fmt::Display for RecoveryReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "recovery report: {} fault(s), availability {:.1}%, {} duplicate(s) dropped",
            self.incidents.len(),
            self.availability() * 100.0,
            self.duplicates_dropped,
        )?;
        for i in &self.incidents {
            let end = i
                .end_ms
                .map(|e| format!("{e:7.0}"))
                .unwrap_or_else(|| "  (open)".into());
            let mttr = i
                .mttr_ms
                .map(|m| format!("mttr {m:6.1} ms"))
                .unwrap_or_else(|| "unrecovered".into());
            writeln!(
                f,
                "  {:17} start {:7.0} ms  end {end} ms  {mttr}",
                i.kind, i.start_ms
            )?;
        }
        if let (Some(mean), Some(max)) = (self.mean_mttr_ms, self.max_mttr_ms) {
            writeln!(f, "  mean MTTR {mean:.1} ms, max {max:.1} ms")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_mttr_and_unrecovered() {
        let r = RecoveryReport::new(
            vec![
                IncidentReport {
                    kind: "partition_outage".into(),
                    start_ms: 100.0,
                    end_ms: Some(300.0),
                    mttr_ms: Some(250.0),
                },
                IncidentReport {
                    kind: "serving_crash".into(),
                    start_ms: 400.0,
                    end_ms: Some(600.0),
                    mttr_ms: None,
                },
            ],
            400.0,
            1000.0,
            3,
        );
        assert_eq!(r.mean_mttr_ms, Some(250.0));
        assert_eq!(r.max_mttr_ms, Some(250.0));
        assert_eq!(r.unrecovered, 1);
        assert!((r.availability() - 0.6).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("partition_outage"));
        assert!(text.contains("unrecovered"));
    }

    #[test]
    fn empty_report_is_fully_available() {
        let r = RecoveryReport::default();
        assert_eq!(r.availability(), 1.0);
        assert!(r.mean_mttr_ms.is_none());
    }
}
