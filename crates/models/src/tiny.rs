//! Miniature models for fast tests and examples.
//!
//! These are not part of the paper's evaluation; they let the test suite and
//! quickstart examples exercise every code path (including convolutions and
//! residual connections) in microseconds.

use std::sync::Arc;

use crayfish_tensor::kernels::conv::Conv2dParams;
use crayfish_tensor::kernels::norm::BnParams;
use crayfish_tensor::{NnGraph, Op, Shape, Tensor};

/// A 2-layer MLP over an 8×8 input with 4 output classes.
pub fn tiny_mlp(seed: u64) -> NnGraph {
    let mut g = NnGraph::new("tiny-mlp");
    let input = g.add(
        "input",
        Op::Input {
            shape: Shape::from([8, 8]),
        },
        vec![],
    );
    let flat = g.add("flatten", Op::Flatten, vec![input]);
    let w1 = Arc::new(Tensor::seeded_he([64, 16], seed, 64));
    let b1 = Arc::new(Tensor::zeros([16]));
    let d1 = g.add("fc1", Op::Dense { w: w1, b: b1 }, vec![flat]);
    let r1 = g.add("relu1", Op::Relu, vec![d1]);
    let w2 = Arc::new(Tensor::seeded_he([16, 4], seed.wrapping_add(1), 16));
    let b2 = Arc::new(Tensor::zeros([4]));
    let d2 = g.add("fc2", Op::Dense { w: w2, b: b2 }, vec![r1]);
    g.add("softmax", Op::Softmax, vec![d2]);
    g
}

/// A small CNN with one residual connection over an 8×8 RGB input —
/// exercises conv, batch-norm, pooling, add, and the classifier head.
pub fn tiny_cnn(seed: u64) -> NnGraph {
    let mut g = NnGraph::new("tiny-cnn");
    let input = g.add(
        "input",
        Op::Input {
            shape: Shape::from([3, 8, 8]),
        },
        vec![],
    );
    let w1 = Arc::new(Tensor::seeded_he([8, 3, 3, 3], seed, 27));
    let c1 = g.add(
        "conv1",
        Op::Conv2d {
            w: w1,
            b: None,
            params: Conv2dParams {
                in_c: 3,
                out_c: 8,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
        },
        vec![input],
    );
    let bn1 = g.add(
        "bn1",
        Op::BatchNorm {
            params: Arc::new(BnParams {
                gamma: vec![1.0; 8],
                beta: vec![0.0; 8],
                mean: vec![0.0; 8],
                var: vec![1.0; 8],
                eps: 1e-5,
            }),
        },
        vec![c1],
    );
    let r1 = g.add("relu1", Op::Relu, vec![bn1]);
    let w2 = Arc::new(Tensor::seeded_he([8, 8, 3, 3], seed.wrapping_add(1), 72));
    let c2 = g.add(
        "conv2",
        Op::Conv2d {
            w: w2,
            b: None,
            params: Conv2dParams {
                in_c: 8,
                out_c: 8,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
        },
        vec![r1],
    );
    let res = g.add("residual", Op::Add, vec![c2, r1]);
    let r2 = g.add("relu2", Op::Relu, vec![res]);
    let gap = g.add("gap", Op::GlobalAvgPool, vec![r2]);
    let w3 = Arc::new(Tensor::seeded_he([8, 4], seed.wrapping_add(2), 8));
    let b3 = Arc::new(Tensor::zeros([4]));
    let fc = g.add("fc", Op::Dense { w: w3, b: b3 }, vec![gap]);
    g.add("softmax", Op::Softmax, vec![fc]);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_mlp_shapes() {
        let g = tiny_mlp(1);
        assert_eq!(g.output_shape(3).unwrap().dims(), &[3, 4]);
        assert!(g.param_count() < 2000);
    }

    #[test]
    fn tiny_cnn_shapes() {
        let g = tiny_cnn(1);
        assert_eq!(g.output_shape(2).unwrap().dims(), &[2, 4]);
        // Exercises conv/bn/add ops.
        assert!(g.nodes().iter().any(|n| matches!(n.op, Op::Add)));
        assert!(g
            .nodes()
            .iter()
            .any(|n| matches!(n.op, Op::BatchNorm { .. })));
    }
}
