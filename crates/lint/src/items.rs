//! Item extraction: every `fn` in the project, with enough of its
//! surrounding context (crate, module path, `impl`/`trait` owner) to give
//! it a stable qualified name and to resolve calls against it.
//!
//! This is not a parser. It is the same deliberately small token-level
//! model as `source.rs`: it walks *cleaned* text (comments, strings, and
//! test items already blanked) and recovers item structure from `mod X {`,
//! `impl .. {`, `trait X {`, and `fn name` tokens plus brace matching.
//! That is exact for the shapes this repo actually writes and degrades
//! to "fewer resolved edges" — never to wrong line numbers — elsewhere.

use crate::source::{matching, SourceFile};

/// One function item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Repo-relative file path.
    pub rel: String,
    /// Crate key: `broker` for `crates/broker/src/..`, `crayfish` for the
    /// root `src/` tree.
    pub crate_name: String,
    /// Module path inside the crate: file-derived segments plus inline
    /// `mod` blocks, e.g. `["kernels", "gemm"]`.
    pub module: Vec<String>,
    /// `impl`/`trait` owner type, if the fn is an associated item
    /// (`impl Broker { fn append .. }` → `Some("Broker")`).
    pub owner: Option<String>,
    pub name: String,
    /// 1-based declaration line in the original file.
    pub line: usize,
    /// Byte offset of the `fn` keyword in cleaned text.
    pub fn_pos: usize,
    /// Body byte range in cleaned text, inclusive of both braces.
    pub body: (usize, usize),
}

impl FnItem {
    /// Stable whitespace-free qualified name used in fingerprints:
    /// `crate::module::Owner::name`. Survives line churn by construction.
    pub fn qualified(&self) -> String {
        let mut q = self.crate_name.clone();
        for m in &self.module {
            q.push_str("::");
            q.push_str(m);
        }
        if let Some(t) = &self.owner {
            q.push_str("::");
            q.push_str(t);
        }
        q.push_str("::");
        q.push_str(&self.name);
        q
    }
}

/// Crate key for a repo-relative path.
pub fn crate_of(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("unknown").to_string()
    } else {
        "crayfish".to_string()
    }
}

/// File-derived module path: `crates/broker/src/rpc.rs` → `["rpc"]`,
/// `src/bin/crayfish-node.rs` → `["bin", "crayfish-node"]`,
/// `crates/tensor/src/kernels/mod.rs` → `["kernels"]`, crate roots → `[]`.
fn file_modules(rel: &str) -> Vec<String> {
    let after_src = match rel.find("src/") {
        Some(i) => &rel[i + 4..],
        None => rel,
    };
    let mut mods: Vec<String> = after_src
        .trim_end_matches(".rs")
        .split('/')
        .map(str::to_string)
        .collect();
    if matches!(
        mods.last().map(String::as_str),
        Some("lib" | "main" | "mod")
    ) {
        mods.pop();
    }
    mods
}

/// A `mod`/`impl`/`trait` block span in cleaned text.
#[derive(Debug)]
struct Scope {
    start: usize,
    end: usize,
    /// `Some(name)` for `mod name { .. }`, `None` for impl/trait scopes.
    module: Option<String>,
    /// `Some(type)` for impl/trait scopes.
    owner: Option<String>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Previous non-whitespace byte before `pos`, if any.
fn prev_nonspace(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes[..pos]
        .iter()
        .rev()
        .copied()
        .find(|b| !b.is_ascii_whitespace())
}

/// Does the keyword at `pos` (already matched textually) sit at item
/// position? True when preceded by nothing or by `;`, `{`, `}`, or `]`
/// (the close of an attribute) — which excludes `-> impl Trait`,
/// `&impl`, `(impl ..)` argument positions, and expression contexts.
fn at_item_position(bytes: &[u8], pos: usize) -> bool {
    match prev_nonspace(bytes, pos) {
        None => true,
        Some(b) => matches!(b, b';' | b'{' | b'}' | b']'),
    }
}

/// Occurrences of keyword `kw` as a whole word in `clean`. The character
/// after may be whitespace or `<` (`impl<T: Clone> ..` has no space).
fn keyword_positions(clean: &str, kw: &str) -> Vec<usize> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(found) = clean[search..].find(kw) {
        let pos = search + found;
        search = pos + kw.len();
        if pos > 0 && is_ident(bytes[pos - 1]) {
            continue;
        }
        if bytes
            .get(pos + kw.len())
            .is_some_and(|&b| is_ident(b) || !(b.is_ascii_whitespace() || b == b'<'))
        {
            continue;
        }
        out.push(pos);
    }
    out
}

/// Strip balanced `<..>` generic groups from a header snippet.
fn strip_generics(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut depth = 0usize;
    for c in s.chars() {
        match c {
            '<' => depth += 1,
            '>' if depth > 0 => depth -= 1,
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// The owner type named by an `impl`/`trait` header (text between the
/// keyword and the `{`): `impl<T> fmt::Debug for Conn<T> where ..` → `Conn`.
fn owner_of_header(header: &str) -> Option<String> {
    let flat = strip_generics(header);
    let flat = flat.split(" where ").next().unwrap_or(&flat);
    let target = match flat.rfind(" for ") {
        Some(i) => &flat[i + 5..],
        None => flat,
    };
    let target = target.trim().trim_start_matches('&');
    // Last path segment of the leading path: `fmt::Debug` → `Debug`.
    let first_token: String = target
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == ':')
        .collect();
    let seg = first_token.rsplit("::").next().unwrap_or("").to_string();
    if seg.is_empty() {
        None
    } else {
        Some(seg)
    }
}

/// All mod/impl/trait scopes in cleaned text.
fn scopes(clean: &str) -> Vec<Scope> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    for pos in keyword_positions(clean, "mod") {
        let after = &clean[pos + 3..];
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        // `mod name;` declares an out-of-line module — no scope here.
        let Some(brace_rel) = after.find(['{', ';']) else {
            continue;
        };
        let brace = pos + 3 + brace_rel;
        if bytes[brace] != b'{' || name.is_empty() {
            continue;
        }
        if let Some(end) = matching(bytes, brace, b'{', b'}') {
            out.push(Scope {
                start: brace,
                end,
                module: Some(name),
                owner: None,
            });
        }
    }
    for kw in ["impl", "trait"] {
        for pos in keyword_positions(clean, kw) {
            if !at_item_position(bytes, pos) {
                continue;
            }
            let Some(brace_rel) = clean[pos..].find(['{', ';']) else {
                continue;
            };
            let brace = pos + brace_rel;
            if bytes[brace] != b'{' {
                continue;
            }
            let header = &clean[pos + kw.len()..brace];
            let Some(owner) = owner_of_header(header) else {
                continue;
            };
            if let Some(end) = matching(bytes, brace, b'{', b'}') {
                out.push(Scope {
                    start: brace,
                    end,
                    module: None,
                    owner: Some(owner),
                });
            }
        }
    }
    out
}

/// Extract every bodied `fn` of one file.
pub fn file_fns(file: &SourceFile) -> Vec<FnItem> {
    let clean = &file.clean;
    let bytes = clean.as_bytes();
    let scopes = scopes(clean);
    let crate_name = crate_of(&file.rel);
    let base_modules = file_modules(&file.rel);
    let mut out = Vec::new();
    for pos in keyword_positions(clean, "fn") {
        let after = &clean[pos + 3..];
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        // Find the body opener; a `;` first means a bodiless signature.
        let mut j = pos + 3;
        let mut paren_depth = 0usize;
        let open = loop {
            if j >= bytes.len() {
                break None;
            }
            match bytes[j] {
                b'(' | b'[' => paren_depth += 1,
                b')' | b']' => paren_depth = paren_depth.saturating_sub(1),
                b';' if paren_depth == 0 => break None,
                b'{' if paren_depth == 0 => break Some(j),
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        let Some(close) = matching(bytes, open, b'{', b'}') else {
            continue;
        };
        // Enclosing scopes, innermost last. The innermost impl/trait scope
        // containing the fn (but not another fn in between — nested fns in
        // this repo are free) names the owner; every enclosing named mod
        // extends the module path.
        let mut module = base_modules.clone();
        let mut owner = None;
        let mut enclosing: Vec<&Scope> = scopes
            .iter()
            .filter(|s| s.start < pos && pos < s.end)
            .collect();
        enclosing.sort_by_key(|s| s.start);
        for s in enclosing {
            if let Some(m) = &s.module {
                module.push(m.clone());
            }
            if let Some(t) = &s.owner {
                owner = Some(t.clone());
            }
        }
        out.push(FnItem {
            rel: file.rel.clone(),
            crate_name: crate_name.clone(),
            module,
            owner,
            name,
            line: file.line_of(pos),
            fn_pos: pos,
            body: (open, close),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn fns(rel: &str, code: &str) -> Vec<FnItem> {
        file_fns(&SourceFile::synthetic(rel, code))
    }

    #[test]
    fn free_fn_gets_file_module_path() {
        let f = fns("crates/broker/src/rpc.rs", "pub fn dispatch() { x(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].qualified(), "broker::rpc::dispatch");
        assert_eq!(f[0].owner, None);
    }

    #[test]
    fn crate_roots_and_mod_rs_collapse() {
        assert_eq!(
            fns("crates/net/src/lib.rs", "fn init() {}")[0].qualified(),
            "net::init"
        );
        assert_eq!(
            fns("crates/tensor/src/kernels/mod.rs", "fn helper() {}")[0].qualified(),
            "tensor::kernels::helper"
        );
        assert_eq!(
            fns("src/bin/crayfish-node.rs", "fn main() {}")[0].qualified(),
            "crayfish::bin::crayfish-node::main"
        );
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let code = "struct Broker;\nimpl Broker {\n    pub fn append(&self) { self.push(); }\n}\n";
        let f = fns("crates/broker/src/broker.rs", code);
        assert_eq!(f[0].qualified(), "broker::broker::Broker::append");
        assert_eq!(f[0].owner.as_deref(), Some("Broker"));
    }

    #[test]
    fn trait_impls_name_the_implementing_type() {
        let code = "impl fmt::Debug for Responder {\n    fn fmt(&self) {}\n}\n\
                    impl<T: Clone> Iterator for Cursor<T> {\n    fn next(&mut self) {}\n}\n";
        let f = fns("crates/net/src/reactor.rs", code);
        assert_eq!(f[0].owner.as_deref(), Some("Responder"));
        assert_eq!(f[1].owner.as_deref(), Some("Cursor"));
    }

    #[test]
    fn trait_default_bodies_are_items_but_signatures_are_not() {
        let code =
            "trait Api {\n    fn must_impl(&self);\n    fn defaulted(&self) { helper() }\n}\n";
        let f = fns("crates/broker/src/api.rs", code);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].qualified(), "broker::api::Api::defaulted");
    }

    #[test]
    fn inline_mods_extend_the_module_path() {
        let code =
            "mod outer {\n    mod inner {\n        fn deep() {}\n    }\n    fn shallow() {}\n}\n";
        let f = fns("crates/core/src/config.rs", code);
        let q: Vec<String> = f.iter().map(FnItem::qualified).collect();
        assert!(q.contains(&"core::config::outer::inner::deep".to_string()));
        assert!(q.contains(&"core::config::outer::shallow".to_string()));
    }

    #[test]
    fn return_position_impl_is_not_a_scope() {
        let code = "fn make() -> impl Iterator<Item = u32> { (0..4).into_iter() }\nfn after() {}\n";
        let f = fns("crates/core/src/lib.rs", code);
        assert_eq!(f[0].owner, None);
        assert_eq!(f[1].owner, None);
        assert_eq!(f[1].qualified(), "core::after");
    }

    #[test]
    fn where_clauses_and_generics_do_not_confuse_owners() {
        let code = "impl<R: Read + Send> Transport<R> for TcpTransport<R> where R: 'static {\n\
                    fn send(&self) {}\n}\n";
        let f = fns("crates/net/src/transport.rs", code);
        assert_eq!(f[0].owner.as_deref(), Some("TcpTransport"));
    }

    #[test]
    fn test_items_are_already_blanked() {
        let code = "#[cfg(test)]\nmod tests {\n    fn hidden() {}\n}\nfn visible() {}\n";
        let f = fns("crates/core/src/lib.rs", code);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].name, "visible");
    }

    #[test]
    fn fn_with_default_arg_brace_in_signature_types() {
        // Braces inside the parameter list (array types) must not be taken
        // for the body opener.
        let code = "fn f(x: [u8; 4]) -> u8 { x[0] }";
        let f = fns("crates/core/src/lib.rs", code);
        assert_eq!(f.len(), 1);
        let (open, close) = f[0].body;
        assert_eq!(&code[open..=close], "{ x[0] }");
    }
}
