//! **Figure 10** — end-to-end latency vs batch size across the four stream
//! processors, with embedded ONNX and external TF-Serving (FFNN, closed
//! loop, `mp = 1`).

use crayfish::prelude::*;
use crayfish_bench::*;

/// Paper reference point: serving 128-point events with TF-Serving.
fn paper_bsz128(engine: &str) -> Option<f64> {
    match engine {
        "flink" => Some(167.44),
        "ray" => Some(169.7),
        _ => None,
    }
}

fn main() {
    let tools = [
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ];
    let rate = match profile() {
        Profile::Quick => 4.0,
        Profile::Paper => 1.0,
    };
    let mut table = Table::new(
        "Figure 10: latency vs batch size across SPSs (ms/batch, FFNN, closed loop, mp=1)",
        &[
            "engine",
            "serving tool",
            "bsz",
            "latency (mean ± std)",
            "paper tf@128",
        ],
    );
    let mut dump = Vec::new();
    for (engine, processor) in registry::all_processors() {
        for (tool, serving) in tools {
            for bsz in [32usize, 128, 512] {
                let mut spec = base_spec(ModelSpec::Ffnn, serving);
                spec.bsz = bsz;
                spec.workload = Workload::Constant { rate };
                spec.duration = ffnn_window().mul_f64(1.5);
                let result = run(
                    &format!("fig10/{engine}/{tool}/bsz{bsz}"),
                    processor.as_ref(),
                    &spec,
                );
                let paper = match (bsz, tool, paper_bsz128(engine)) {
                    (128, "tf-serving (x)", Some(v)) => format!("{v:.0}"),
                    _ => "-".into(),
                };
                table.row(vec![
                    engine.into(),
                    tool.into(),
                    bsz.to_string(),
                    ms_pm(&result.latency),
                    paper,
                ]);
                dump.push(Measurement::of(
                    format!("{engine}/{tool}/bsz{bsz}"),
                    &result,
                ));
            }
        }
    }
    table.print();
    println!("\nPaper shape: Flink lowest at bsz 32/128 but loses to Kafka Streams at");
    println!("512; Spark SS highest across the board (micro-batching); Ray competitive,");
    println!("sometimes lowest, despite HTTP serving.");
    save_json("fig10", &dump);
}
