//! **Figure 7** — vertical scalability for ResNet50 on the Flink-style
//! engine (offered 256 events/s, `bsz = 1`).
//!
//! Note: on a single-core evaluation host the embedded CPU inference cannot
//! physically scale with `mp`; the external servers' modelled worker
//! concurrency still can. EXPERIMENTS.md discusses the deviation.

use crayfish::prelude::*;
use crayfish_bench::*;

fn main() {
    let flink = FlinkProcessor::new();
    let mut table = Table::new(
        "Figure 7: ResNet50 vertical scaling on Flink (events/s, ir=256, bsz=1)",
        &["serving tool", "mp", "measured"],
    );
    let mut dump = Vec::new();
    for (tool, serving) in resnet_tools() {
        for mp in mp_sweep_resnet() {
            let mut spec = base_spec(ModelSpec::Resnet50, serving);
            spec.mp = mp;
            spec.workload = Workload::Constant {
                rate: OVERLOAD_RESNET,
            };
            spec.duration = resnet_window_at_least(40);
            let result = run(&format!("fig7/{tool}/mp{mp}"), &flink, &spec);
            table.row(vec![
                tool.into(),
                mp.to_string(),
                eps(result.throughput_eps),
            ]);
            dump.push(Measurement::of(format!("{tool}/mp{mp}"), &result));
        }
    }
    table.print();
    println!("\nPaper shape: onnx and torchserve keep scaling; tf-serving shows");
    println!("negligible gains and torchserve overtakes it past mp=8.");
    save_json("fig7", &dump);
}
