//! Loom models for the engine kernel's worker lifecycle: supervised
//! crash/restart handoff over broker offsets, and stop/join. Compiled only
//! under `RUSTFLAGS="--cfg loom"`.

#![cfg(loom)]

use std::sync::Arc as StdArc;

use crayfish_broker::Broker;
use crayfish_core::scoring::ScorerSpec;
use crayfish_core::ProcessorContext;
use crayfish_engine_kernel::{Rebuild, WorkerExit, WorkerSet};
use crayfish_models::tiny;
use crayfish_runtime::{Device, EmbeddedLib};
use crayfish_sim::NetworkModel;
use crayfish_sync::atomic::Ordering;
use crayfish_sync::{model, thread};
use crayfish_tensor::NnGraph;

fn loom_ctx(broker: StdArc<Broker>, graph: &StdArc<NnGraph>) -> ProcessorContext {
    broker.create_topic("in", 1).unwrap();
    broker.create_topic("out", 1).unwrap();
    ProcessorContext {
        broker,
        input_topic: "in".into(),
        output_topic: "out".into(),
        group: "g".into(),
        scorer: ScorerSpec::Embedded {
            lib: EmbeddedLib::Onnx,
            graph: graph.clone(),
            device: Device::Cpu,
        },
        mp: 1,
    }
}

/// The at-least-once handoff every engine relies on: an incarnation that
/// commits its offset and then crashes must be replaced by one that reads
/// the committed offset back, under every interleaving with the stopping
/// main thread.
#[test]
fn supervised_restart_resumes_from_the_committed_offset() {
    // The graph is pure input data for the context — build it once outside
    // the model so loom does not re-explore its construction.
    let graph = StdArc::new(tiny::tiny_mlp(1));
    model(move || {
        let broker = Broker::new(NetworkModel::zero());
        let ctx = loom_ctx(broker.clone(), &graph);
        let mut set = WorkerSet::new();
        let b2 = broker.clone();
        let mut first = true;
        set.supervised(
            &ctx,
            "loom-worker".into(),
            Rebuild::eager(|| Ok(())).unwrap(),
            move |_r, _ctl| {
                if first {
                    first = false;
                    b2.commit_offset("g", "in", 0, 1);
                    WorkerExit::Failed("crash after commit".into())
                } else {
                    assert_eq!(
                        b2.committed_offset("g", "in", 0),
                        1,
                        "restarted incarnation lost the committed offset"
                    );
                    WorkerExit::Stopped
                }
            },
        );
        set.into_job().stop();
        assert_eq!(broker.committed_offset("g", "in", 0), 1);
    });
}

/// Stop must terminate a plain task that honours the stop flag — no lost
/// store, no deadlocked join.
#[test]
fn stop_joins_flag_observing_tasks() {
    model(|| {
        let mut set = WorkerSet::new();
        let stop = set.stop_flag();
        set.task("loom-task".into(), move || {
            while !stop.load(Ordering::SeqCst) {
                thread::yield_now();
            }
        })
        .unwrap();
        set.into_job().stop();
    });
}
