//! The `CrayfishDataBatch` unit of computation and its JSON wire form.
//!
//! §3.1 of the paper: "A CrayfishDataBatch contains a batch of data points
//! alongside the creation timestamp, which is used in computing end-to-end
//! latencies. Crayfish uses JSON serialization throughout the data pipeline
//! for simplicity and flexibility." The JSON cost is real and intentional —
//! it dominates transfer sizes for large inputs, which is why the paper's
//! GPU gains are modest.

use bytes::Bytes;
use serde::{Deserialize, Serialize};

use crayfish_tensor::{Shape, Tensor};

use crate::error::CoreError;
use crate::obs::{ObsHandle, Stage};
use crate::Result;

/// A batch of `bsz` data points travelling through the pipeline as one
/// event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrayfishDataBatch {
    /// Monotonic batch id assigned by the producer.
    pub id: u64,
    /// Producer-side creation timestamp (UNIX ms) — the *start* time of the
    /// end-to-end latency measurement (§3.3, step 1).
    pub created_ms: f64,
    /// Per-item shape (e.g. `[28, 28]`).
    pub shape: Vec<usize>,
    /// Number of data points in the batch (`bsz`).
    pub bsz: usize,
    /// Row-major data of all `bsz` items.
    pub data: Vec<f32>,
}

impl CrayfishDataBatch {
    /// Build a batch from a `[bsz, ..item]` tensor.
    pub fn from_tensor(id: u64, created_ms: f64, t: &Tensor) -> CrayfishDataBatch {
        CrayfishDataBatch {
            id,
            created_ms,
            shape: t.shape().per_item().dims().to_vec(),
            bsz: t.batch(),
            data: t.data().to_vec(),
        }
    }

    /// Reassemble the `[bsz, ..item]` tensor.
    pub fn to_tensor(&self) -> Result<Tensor> {
        let mut dims = vec![self.bsz];
        dims.extend_from_slice(&self.shape);
        Tensor::from_vec(Shape::new(dims), self.data.clone())
            .map_err(|e| CoreError::Codec(format!("batch {}: {e}", self.id)))
    }

    /// JSON-encode for the wire.
    pub fn encode(&self) -> Result<Bytes> {
        serde_json::to_vec(self)
            .map(Bytes::from)
            .map_err(|e| CoreError::Codec(format!("batch encode: {e}")))
    }

    /// Parse from the wire.
    pub fn decode(bytes: &[u8]) -> Result<CrayfishDataBatch> {
        let batch: CrayfishDataBatch = serde_json::from_slice(bytes)
            .map_err(|e| CoreError::Codec(format!("batch decode: {e}")))?;
        let expect: usize = batch.shape.iter().product::<usize>() * batch.bsz;
        if batch.data.len() != expect {
            return Err(CoreError::Codec(format!(
                "batch {}: {} values for bsz {} of shape {:?}",
                batch.id,
                batch.data.len(),
                batch.bsz,
                batch.shape
            )));
        }
        Ok(batch)
    }
}

/// A scored batch on its way to the output topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredBatch {
    /// The originating batch id.
    pub id: u64,
    /// Creation timestamp carried through from the input batch.
    pub created_ms: f64,
    /// Number of scored data points.
    pub bsz: usize,
    /// Classes per prediction.
    pub classes: usize,
    /// `bsz × classes` probabilities, row-major.
    pub scores: Vec<f32>,
}

impl ScoredBatch {
    /// Build from the scoring operator's output tensor.
    pub fn from_output(input: &CrayfishDataBatch, output: &Tensor) -> ScoredBatch {
        ScoredBatch {
            id: input.id,
            created_ms: input.created_ms,
            bsz: output.batch(),
            classes: output.shape().per_item().numel(),
            scores: output.data().to_vec(),
        }
    }

    /// JSON-encode for the wire.
    pub fn encode(&self) -> Result<Bytes> {
        serde_json::to_vec(self)
            .map(Bytes::from)
            .map_err(|e| CoreError::Codec(format!("scored encode: {e}")))
    }

    /// Parse from the wire.
    pub fn decode(bytes: &[u8]) -> Result<ScoredBatch> {
        serde_json::from_slice(bytes).map_err(|e| CoreError::Codec(format!("scored decode: {e}")))
    }
}

/// Decode one wire payload into its batch and `[bsz, ..item]` input tensor
/// inside a `decode` span. This is the input half of every engine's scoring
/// operator; the engine kernel (via [`crate::scoring::score_payload_obs`])
/// is its only caller on the data path, so the wire format and its span
/// accounting cannot drift between engines.
pub fn decode_input_obs(payload: &[u8], obs: &ObsHandle) -> Result<(CrayfishDataBatch, Tensor)> {
    let span = obs.timer(Stage::Decode);
    let batch = CrayfishDataBatch::decode(payload)?;
    let input = batch.to_tensor()?;
    span.stop();
    Ok((batch, input))
}

/// Encode the scoring output against its originating batch inside an
/// `encode` span — the output half of every engine's scoring operator.
pub fn encode_output_obs(
    input: &CrayfishDataBatch,
    output: &Tensor,
    obs: &ObsHandle,
) -> Result<Bytes> {
    let span = obs.timer(Stage::Encode);
    let encoded = ScoredBatch::from_output(input, output).encode();
    span.stop();
    encoded
}

/// Shared wire-format helpers for engine and conformance tests: every suite
/// feeds seeded `CrayfishDataBatch` payloads in and reads distinct
/// `ScoredBatch` ids out, so the helpers live here once instead of being
/// copied into each engine crate.
pub mod testkit {
    use std::collections::BTreeSet;
    use std::sync::Arc;
    use std::time::Duration;

    use bytes::Bytes;

    use crayfish_broker::BrokerApi;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::now_millis_f64;
    use crayfish_tensor::Tensor;

    use super::{CrayfishDataBatch, ScoredBatch};
    use crate::processor::ProcessorContext;
    use crate::scoring::ScorerSpec;

    /// The standard engine-test cell: fresh `partitions`-way `in`/`out`
    /// topics on `broker` and a context scoring with the embedded ONNX tiny
    /// MLP. Tests that need a different scorer overwrite `ctx.scorer`.
    pub fn onnx_ctx(broker: Arc<dyn BrokerApi>, partitions: u32, mp: usize) -> ProcessorContext {
        broker.create_topic("in", partitions).unwrap();
        broker.create_topic("out", partitions).unwrap();
        ProcessorContext {
            broker,
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp,
        }
    }

    /// A deterministic `[1, 8, 8]` input payload with `id` as the seed.
    pub fn seeded_payload(id: u64) -> Bytes {
        let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
        CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
            .encode()
            .expect("encode seeded payload")
    }

    /// Append seeded payloads with ids `from..to`, spread round-robin over
    /// `topic`'s `partitions`.
    pub fn feed_range(broker: &dyn BrokerApi, topic: &str, partitions: u32, from: u64, to: u64) {
        for id in from..to {
            broker
                .append(
                    topic,
                    (id % u64::from(partitions.max(1))) as u32,
                    vec![(seeded_payload(id), now_millis_f64())],
                )
                .expect("append input payload");
        }
    }

    /// [`feed_range`] from 0.
    pub fn feed(broker: &dyn BrokerApi, topic: &str, partitions: u32, n: u64) {
        feed_range(broker, topic, partitions, 0, n);
    }

    /// Read `topic` from the beginning until `done` says the batches read
    /// so far suffice (or `timeout` elapses) and return them in read order.
    fn drain_until(
        broker: &dyn BrokerApi,
        topic: &str,
        partitions: u32,
        timeout: Duration,
        done: impl Fn(&[ScoredBatch]) -> bool,
    ) -> Vec<ScoredBatch> {
        let deadline = crayfish_sim::now() + timeout;
        let mut out = Vec::new();
        let mut offsets = vec![0u64; partitions as usize];
        while !done(&out) && crayfish_sim::now() < deadline {
            for p in 0..partitions {
                let recs = broker
                    .read(topic, p, offsets[p as usize], 10_000, usize::MAX)
                    .expect("read output topic");
                if let Some(last) = recs.last() {
                    offsets[p as usize] = last.offset + 1;
                }
                for r in recs {
                    out.push(ScoredBatch::decode(&r.value).expect("decode scored batch"));
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        out
    }

    /// Drain until `expect` scored batches have appeared; duplicates —
    /// legal under at-least-once delivery — are included and counted.
    pub fn drain_scored(
        broker: &dyn BrokerApi,
        topic: &str,
        partitions: u32,
        expect: usize,
        timeout: Duration,
    ) -> Vec<ScoredBatch> {
        drain_until(broker, topic, partitions, timeout, |out| {
            out.len() >= expect
        })
    }

    /// The set of distinct batch ids in `scored`.
    pub fn distinct_ids(scored: &[ScoredBatch]) -> BTreeSet<u64> {
        scored.iter().map(|s| s.id).collect()
    }

    /// Drain until `expect` *distinct* ids have appeared, tolerant of the
    /// duplicates a crash-recovery replay produces.
    pub fn drain_distinct(
        broker: &dyn BrokerApi,
        topic: &str,
        partitions: u32,
        expect: usize,
        timeout: Duration,
    ) -> Vec<ScoredBatch> {
        drain_until(broker, topic, partitions, timeout, |out| {
            distinct_ids(out).len() >= expect
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_json_roundtrip() {
        let t = Tensor::seeded_uniform([4, 3, 3], 1, 0.0, 1.0);
        let batch = CrayfishDataBatch::from_tensor(7, 123.5, &t);
        let bytes = batch.encode().unwrap();
        let back = CrayfishDataBatch::decode(&bytes).unwrap();
        assert_eq!(back.id, 7);
        assert_eq!(back.bsz, 4);
        assert_eq!(back.to_tensor().unwrap(), t);
    }

    #[test]
    fn decode_rejects_inconsistent_sizes() {
        let json = br#"{"id":1,"created_ms":0.0,"shape":[2,2],"bsz":2,"data":[1.0,2.0]}"#;
        assert!(CrayfishDataBatch::decode(json).is_err());
        assert!(CrayfishDataBatch::decode(b"not json").is_err());
    }

    #[test]
    fn scored_batch_carries_timestamps() {
        let t = Tensor::seeded_uniform([2, 4], 1, 0.0, 1.0);
        let input = CrayfishDataBatch::from_tensor(3, 55.5, &Tensor::zeros([2, 8, 8]));
        let scored = ScoredBatch::from_output(&input, &t);
        assert_eq!(scored.id, 3);
        assert_eq!(scored.created_ms, 55.5);
        assert_eq!(scored.classes, 4);
        let back = ScoredBatch::decode(&scored.encode().unwrap()).unwrap();
        assert_eq!(back, scored);
    }

    #[test]
    fn json_payload_sizes_are_realistic() {
        // One FFNN input point is ~3 KB on the paper's wire; our JSON is the
        // same order of magnitude.
        let t = Tensor::seeded_uniform([1, 28, 28], 1, 0.0, 1.0);
        let bytes = CrayfishDataBatch::from_tensor(1, 0.0, &t).encode().unwrap();
        assert!(
            bytes.len() > 2_000 && bytes.len() < 15_000,
            "{} bytes",
            bytes.len()
        );
    }
}
