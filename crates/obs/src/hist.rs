//! Mergeable log-bucketed histograms.
//!
//! HDR-style layout: values below 32 get exact buckets; every octave above
//! that is split into 32 sub-buckets, so the relative error of any recorded
//! value is at most 1/32 (~3%). Buckets are `AtomicU64`s grouped into
//! per-thread shards, so recording is a handful of relaxed atomic adds with
//! no locks and (in the common case) no cross-core contention.
//!
//! A [`Histogram`] is the live, concurrently-written object; a
//! [`HistogramSnapshot`] is a point-in-time copy that supports `merge`,
//! percentile queries, and exposition. Snapshots taken from different
//! histograms (e.g. one per operator thread) merge losslessly because all
//! histograms share the same fixed bucket layout.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (32).
const SUBS: u64 = 1 << SUB_BITS;

/// Total buckets needed to cover the full `u64` range at this resolution.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUBS as usize;

/// Index of the bucket holding `value`. Monotone in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBS {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (value >> shift) - SUBS;
        ((shift as u64 + 1) * SUBS + sub) as usize
    }
}

/// Smallest value mapping to bucket `idx` (the bucket's inclusive low edge).
#[inline]
pub fn bucket_low(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUBS {
        idx
    } else {
        let shift = idx / SUBS - 1;
        let sub = idx % SUBS;
        (SUBS + sub) << shift
    }
}

/// Exclusive high edge of bucket `idx` (saturating at `u64::MAX`).
#[inline]
pub fn bucket_high(idx: usize) -> u64 {
    if idx + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(idx + 1)
    }
}

/// One shard: a full bucket array plus summary atomics.
struct Shard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Shard {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.min.fetch_min(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }
}

// Threads are assigned a stable shard index on first use; the assignment is
// global (not per histogram) so one TLS read suffices for any number of
// histograms.
thread_local! {
    static THREAD_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}
static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn thread_slot() -> usize {
    THREAD_SHARD.with(|c| {
        let v = c.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_THREAD.fetch_add(1, Relaxed);
            c.set(v);
            v
        }
    })
}

/// A concurrently-writable log-bucketed histogram.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Default shard count: enough to keep unrelated recorder threads off
    /// each other's cache lines most of the time without bloating memory.
    pub const DEFAULT_SHARDS: usize = 8;

    pub fn new() -> Histogram {
        Histogram::with_shards(Histogram::DEFAULT_SHARDS)
    }

    pub fn with_shards(n: usize) -> Histogram {
        let n = n.max(1);
        Histogram {
            shards: (0..n).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one value. Lock-free; relaxed atomics on the caller's shard.
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_slot() % self.shards.len()];
        shard.record(value);
    }

    /// Point-in-time copy merging all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in self.shards.iter() {
            let count = shard.count.load(Relaxed);
            if count == 0 {
                continue;
            }
            snap.count += count;
            snap.sum += shard.sum.load(Relaxed);
            snap.min = snap.min.min(shard.min.load(Relaxed));
            snap.max = snap.max.max(shard.max.load(Relaxed));
            let buckets = snap.buckets.get_or_insert_with(|| vec![0; NUM_BUCKETS]);
            for (b, v) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *b += v.load(Relaxed);
            }
        }
        snap
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        write!(
            f,
            "Histogram {{ count: {}, mean: {:.1}, p99: {:.1} }}",
            snap.count(),
            snap.mean(),
            snap.percentile(0.99)
        )
    }
}

/// A point-in-time, mergeable view of a [`Histogram`].
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// `None` while empty (avoids allocating 15 KiB for idle histograms).
    buckets: Option<Vec<u64>>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl HistogramSnapshot {
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: None,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Build a snapshot directly from raw values (bypassing a live
    /// histogram). Useful for offline summarisation.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for v in values {
            snap.record(v);
        }
        snap
    }

    /// Record into the snapshot itself (single-threaded use).
    pub fn record(&mut self, value: u64) {
        let buckets = self.buckets.get_or_insert_with(|| vec![0; NUM_BUCKETS]);
        buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold `other` into `self`. Lossless: both sides share the fixed
    /// bucket layout.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let theirs = other.buckets.as_ref().expect("non-empty snapshot");
        let buckets = self.buckets.get_or_insert_with(|| vec![0; NUM_BUCKETS]);
        for (b, v) in buckets.iter_mut().zip(theirs.iter()) {
            *b += v;
        }
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate standard deviation from bucket midpoints.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let mut acc = 0.0;
        for (idx, &c) in self.buckets.as_ref().expect("non-empty").iter().enumerate() {
            if c == 0 {
                continue;
            }
            let mid = midpoint(idx);
            acc += c as f64 * (mid - mean) * (mid - mean);
        }
        (acc / (self.count as f64 - 1.0)).sqrt()
    }

    /// Quantile `q` in [0, 1], linearly interpolated inside the bucket and
    /// clamped to the exact observed [min, max]. Accuracy is one bucket
    /// width (~3% relative) or better.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.buckets.as_ref().expect("non-empty").iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let into = (rank - cum) as f64;
                let low = bucket_low(idx) as f64;
                let high = bucket_high(idx) as f64;
                let v = low + (high - low) * (into / c as f64);
                return v.clamp(self.min as f64, self.max as f64);
            }
            cum += c;
        }
        self.max as f64
    }

    /// Non-empty buckets as `(exclusive_high_edge, count)`, in value order.
    /// This is the cumulative-bucket source for Prometheus exposition.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        match &self.buckets {
            None => Vec::new(),
            Some(buckets) => buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(idx, &c)| (bucket_high(idx), c))
                .collect(),
        }
    }
}

fn midpoint(idx: usize) -> f64 {
    (bucket_low(idx) as f64 + bucket_high(idx) as f64) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift so tests need no external RNG crate.
    pub(crate) struct XorShift(u64);
    impl XorShift {
        pub(crate) fn new(seed: u64) -> XorShift {
            XorShift(seed.max(1))
        }
        pub(crate) fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn bucket_layout_is_monotone_and_self_inverse() {
        for idx in 0..NUM_BUCKETS - 1 {
            let low = bucket_low(idx);
            assert_eq!(bucket_index(low), idx, "low edge maps to own bucket");
            assert!(bucket_low(idx + 1) > low, "edges strictly increase");
            assert_eq!(bucket_high(idx), bucket_low(idx + 1));
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut rng = XorShift::new(7);
        for _ in 0..10_000 {
            let v = rng.next() >> (rng.next() % 40);
            let idx = bucket_index(v);
            let (low, high) = (bucket_low(idx), bucket_high(idx));
            assert!(low <= v && v < high, "{v} outside [{low}, {high})");
            if v >= SUBS {
                let width = (high - low) as f64;
                assert!(width / v as f64 <= 1.0 / SUBS as f64 + 1e-9);
            }
        }
    }

    #[test]
    fn exact_summary_stats() {
        let h = Histogram::new();
        for v in [5, 10, 15, 1000, 2] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum(), 1032);
        assert_eq!(s.min(), 2);
        assert_eq!(s.max(), 1000);
        assert!((s.mean() - 206.4).abs() < 1e-9);
    }

    #[test]
    fn percentiles_track_exact_values_within_one_bucket() {
        let mut rng = XorShift::new(42);
        let mut values: Vec<u64> = (0..5000).map(|_| rng.next() % 1_000_000).collect();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for q in [0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[rank - 1];
            let est = snap.percentile(q);
            // Within one bucket of the exact value: the estimate's bucket
            // must be within one of the exact value's bucket.
            let exact_idx = bucket_index(exact) as i64;
            let est_idx = bucket_index(est as u64) as i64;
            assert!(
                (exact_idx - est_idx).abs() <= 1,
                "q={q}: exact {exact} (bucket {exact_idx}) vs est {est} (bucket {est_idx})"
            );
        }
    }

    #[test]
    fn merged_shards_equal_single_threaded_reference() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                let mut rng = XorShift::new(t + 1);
                for _ in 0..10_000 {
                    h.record(rng.next() % 100_000);
                }
            }));
        }
        for j in handles {
            j.join().unwrap();
        }
        // Reference: same values recorded single-threaded.
        let mut reference = HistogramSnapshot::empty();
        for t in 0..4u64 {
            let mut rng = XorShift::new(t + 1);
            for _ in 0..10_000 {
                reference.record(rng.next() % 100_000);
            }
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), reference.count());
        assert_eq!(snap.sum(), reference.sum());
        assert_eq!(snap.min(), reference.min());
        assert_eq!(snap.max(), reference.max());
        assert_eq!(snap.nonzero_buckets(), reference.nonzero_buckets());
    }

    #[test]
    fn merge_is_commutative_and_matches_union() {
        let mut rng = XorShift::new(9);
        let a_vals: Vec<u64> = (0..500).map(|_| rng.next() % 10_000).collect();
        let b_vals: Vec<u64> = (0..300).map(|_| rng.next() % 1_000_000).collect();
        let a = HistogramSnapshot::from_values(a_vals.iter().copied());
        let b = HistogramSnapshot::from_values(b_vals.iter().copied());
        let union = HistogramSnapshot::from_values(a_vals.iter().chain(&b_vals).copied());

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for m in [&ab, &ba] {
            assert_eq!(m.count(), union.count());
            assert_eq!(m.sum(), union.sum());
            assert_eq!(m.nonzero_buckets(), union.nonzero_buckets());
        }
    }

    #[test]
    fn empty_snapshot_is_benign() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 0);
        assert!(s.nonzero_buckets().is_empty());
        let mut m = HistogramSnapshot::empty();
        m.merge(&s);
        assert!(m.is_empty());
    }
}
