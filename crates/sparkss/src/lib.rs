//! # crayfish-sparkss
//!
//! A micro-batch stream processing engine in the style of Spark Structured
//! Streaming (§3.4.1 of the paper), implementing the Crayfish
//! `DataProcessor` interface as an [`EnginePersonality`] over the shared
//! engine kernel.
//!
//! Mechanisms reproduced:
//!
//! * **Micro-batch triggers**: a driver loop repeatedly (a) resolves the
//!   available input offsets, (b) pays the calibrated per-batch planning/
//!   scheduling cost (`microbatch_schedule` in
//!   [`crayfish_sim::calibration`]), (c) splits the batch into per-partition
//!   tasks executed by an executor pool, (d) waits for the barrier, and
//!   (e) commits. The paper sets the trigger interval to the minimum, so a
//!   new batch starts as soon as the previous one finishes. Each committed
//!   batch increments the `spark_microbatches` counter.
//! * **Throughput over latency**: per-event overheads amortise across the
//!   whole micro-batch (the paper's Table 5 Spark SS throughput win), while
//!   every event waits for batch accumulation + scheduling (its Fig. 10
//!   latency loss).
//! * **External-server saturation**: the tasks of one micro-batch issue
//!   their blocking scoring calls concurrently, which is what keeps an
//!   external server busy (§5.3.3, §7.1 "Micro-batching Support").
//!
//! The driver is the engine's one supervised, commit-owning kernel worker
//! (restarts replan the uncommitted batch from the committed offsets); the
//! executors are kernel score/sink stages past commit scope, living until
//! the driver's task channel disconnects.

#![forbid(unsafe_code)]

use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};

use crayfish_broker::{PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::chaos::WorkerExit;
use crayfish_core::{DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_engine_kernel::{
    charge_ingest_chunk, EnginePersonality, ProducerSink, Rebuild, ScoreStage, WorkerSet,
};
use crayfish_sim::{calibration, precise_sleep, Cost, OverheadModel};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SparkOptions {
    /// Extra delay between micro-batches. The paper uses the minimum
    /// (zero): trigger as soon as the previous batch commits.
    pub trigger_interval: Duration,
    /// Concurrent task slots of the executor. The paper's executor has 60
    /// cores (Table 3) regardless of `mp`, which is why Spark SS saturates
    /// external servers even at low `mp` and why its throughput barely
    /// moves when scaling `mp` (§5.3.3, Fig. 11).
    pub executor_cores: usize,
    /// Cap on records pulled into one micro-batch (Spark's
    /// `maxOffsetsPerTrigger`).
    pub max_records_per_batch: usize,
    /// Calibrated overheads (driver scheduling cost).
    pub overheads: OverheadModel,
    /// Calibrated per-record framework cost inside a task, charged as one
    /// aggregate sleep per chunk — Spark's whole-stage codegen amortises it
    /// (see [`calibration::RECORD_OVERHEAD_SPARK`]).
    pub record_overhead: Cost,
}

impl Default for SparkOptions {
    fn default() -> Self {
        SparkOptions {
            trigger_interval: Duration::ZERO,
            executor_cores: 24,
            max_records_per_batch: 10_000,
            overheads: OverheadModel::calibrated(),
            record_overhead: calibration::RECORD_OVERHEAD_SPARK,
        }
    }
}

/// The Spark-Structured-Streaming-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SparkProcessor {
    /// Engine options.
    pub options: SparkOptions,
}

impl SparkProcessor {
    /// Engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: SparkOptions) -> Self {
        SparkProcessor { options }
    }
}

/// One task of a micro-batch: a chunk of records to score and write.
struct Task {
    records: Vec<Bytes>,
    done: Sender<usize>,
}

impl EnginePersonality for SparkProcessor {
    fn name(&self) -> &'static str {
        "sparkss"
    }

    fn deploy(&self, ctx: &ProcessorContext, set: &mut WorkerSet) -> Result<()> {
        let options = self.options;
        let partitions = ctx.broker.partitions(&ctx.input_topic)?;
        let slots = options.executor_cores.max(1);
        let (task_tx, task_rx) = unbounded::<Task>();

        // Driver. Registered first: stopping joins it first, its closure —
        // which owns the task channel — drops, and the executor pool drains
        // and exits on disconnect. Supervised: a transient fabric failure
        // or an injected crash ends the incarnation before the batch
        // commits; the restarted driver rebuilds its consumer at the
        // committed offsets and replans the batch (at-least-once,
        // duplicates bounded by one uncommitted micro-batch).
        let broker = ctx.broker.clone();
        let input_topic = ctx.input_topic.clone();
        let group = ctx.group.clone();
        let resources = Rebuild::eager(move || {
            let mut source = PartitionConsumer::new(
                broker.clone(),
                &input_topic,
                &group,
                (0..partitions).collect(),
            )?;
            source.max_poll_records = options.max_records_per_batch;
            Ok(source)
        })?;
        let obs = ctx.obs().clone();
        let commits = obs.counter("engine_commits");
        let microbatches = obs.counter("spark_microbatches");
        let schedule_ns = obs.histogram_ns("spark_schedule");
        set.supervised(ctx, "spark-driver".into(), resources, move |source, ctl| {
            loop {
                if let Some(exit) = ctl.checkpoint() {
                    return exit;
                }
                // (a) Resolve available offsets / pull the micro-batch.
                let records = match source.poll(Duration::from_millis(50)) {
                    Ok(r) => r,
                    Err(e) if e.is_transient() => return WorkerExit::Failed(format!("poll: {e}")),
                    Err(_) => return WorkerExit::Stopped,
                };
                if records.is_empty() {
                    continue;
                }
                // (b) Planning and task scheduling for this batch.
                let sched = schedule_ns.start();
                options.overheads.microbatch_schedule.spend(0);
                schedule_ns.observe_since(sched);
                // (c) One task per source partition with data, as Spark
                // plans Kafka micro-batches.
                let mut chunks: Vec<(u32, Vec<Bytes>)> = Vec::new();
                for rec in records {
                    match chunks.iter_mut().find(|(p, _)| *p == rec.partition) {
                        Some((_, c)) => c.push(rec.value),
                        None => chunks.push((rec.partition, vec![rec.value])),
                    }
                }
                let mut dispatched = 0usize;
                // The send scope ends before the barrier so the tasks hold
                // the only `done` senders — a dead task then surfaces as a
                // recv error instead of a hang.
                let done_rx = {
                    let (done_tx, done_rx) = unbounded();
                    for (_, records) in chunks.into_iter().filter(|(_, c)| !c.is_empty()) {
                        dispatched += 1;
                        if task_tx
                            .send(Task {
                                records,
                                done: done_tx.clone(),
                            })
                            .is_err()
                        {
                            return WorkerExit::Stopped;
                        }
                    }
                    done_rx
                };
                // (d) Barrier: the batch commits only when every task has
                // finished.
                for _ in 0..dispatched {
                    if done_rx.recv().is_err() {
                        return WorkerExit::Stopped;
                    }
                }
                // (e) Commit and trigger the next batch.
                source.commit();
                commits.inc();
                microbatches.inc();
                if !options.trigger_interval.is_zero() {
                    precise_sleep(options.trigger_interval);
                }
            }
        });

        // Executor pool: `executor_cores` task slots run concurrently, each
        // owning a scorer and a producer (Spark tasks write to the sink
        // themselves). Slot count is a property of the executor, not of
        // `mp` — matching the paper's deployment. Tasks are past the
        // driver's commit scope, so transient scoring failures retry in
        // place rather than dropping the record.
        for i in 0..slots {
            let rx = task_rx.clone();
            let obs = ctx.obs().clone();
            let mut score = ScoreStage::in_place(ctx.scorer.build()?, &obs);
            let producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let mut sink = ProducerSink::new(producer, &obs);
            set.task(format!("spark-executor-{i}"), move || {
                // Runs until the driver drops the channel.
                while let Ok(task) = rx.recv() {
                    // Vectorised framework cost for the whole chunk — one
                    // `ingest` span covers the whole amortised sleep.
                    let bytes: usize = task.records.iter().map(|r| r.len()).sum();
                    charge_ingest_chunk(&obs, options.record_overhead, bytes, task.records.len());
                    let mut written = 0usize;
                    for rec in &task.records {
                        if let Ok(Some(out)) = score.score(rec) {
                            if sink.emit(out).is_ok() {
                                written += 1;
                            }
                        }
                    }
                    sink.flush();
                    let _ = task.done.send(written);
                }
            })?;
        }
        Ok(())
    }
}

impl DataProcessor for SparkProcessor {
    fn name(&self) -> &'static str {
        EnginePersonality::name(self)
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        crayfish_engine_kernel::start(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crayfish_broker::Broker;
    use crayfish_core::batch::testkit::{drain_scored, feed, onnx_ctx};
    use crayfish_core::chaos::{testkit::poll_until, ChaosHandle};
    use crayfish_core::obs::ObsHandle;
    use crayfish_sim::NetworkModel;

    /// Fast options for tests: no modelled driver cost.
    fn quick() -> SparkProcessor {
        SparkProcessor::with_options(SparkOptions {
            overheads: OverheadModel::zero(),
            record_overhead: Cost::ZERO,
            ..Default::default()
        })
    }

    #[test]
    fn driver_cost_adds_latency_floor() {
        // With the calibrated 10 ms scheduling cost, a single event's
        // end-to-end time through the engine must exceed 10 ms.
        let ctx = onnx_ctx(Broker::new(NetworkModel::zero()), 8, 1);
        let broker = ctx.broker.clone();
        let job = SparkProcessor::new().start(ctx).unwrap();
        let start = std::time::Instant::now();
        feed(broker.as_ref(), "in", 8, 1);
        drain_scored(broker.as_ref(), "out", 8, 1, Duration::from_secs(10));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(ms >= 10.0, "micro-batch completed in {ms} ms");
        job.stop();
    }

    #[test]
    fn commits_offsets_per_micro_batch() {
        // The personality's trigger clock: every committed batch drains the
        // group lag and counts as one micro-batch.
        let obs = ObsHandle::enabled();
        let broker = Broker::with_parts(NetworkModel::zero(), obs.clone(), ChaosHandle::disabled());
        let ctx = onnx_ctx(broker.clone(), 8, 2);
        let job = quick().start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 30);
        drain_scored(broker.as_ref(), "out", 8, 30, Duration::from_secs(10));
        assert!(poll_until(Duration::from_secs(5), || {
            broker.group_lag("sut", "in").unwrap() == 0
        }));
        assert!(obs.counter("spark_microbatches").get() > 0);
        job.stop();
    }

    #[test]
    fn stop_terminates_driver_and_executors() {
        let ctx = onnx_ctx(Broker::new(NetworkModel::zero()), 8, 3);
        let broker = ctx.broker.clone();
        let job = quick().start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 10);
        drain_scored(broker.as_ref(), "out", 8, 10, Duration::from_secs(10));
        job.stop();
        feed(broker.as_ref(), "in", 8, 5);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(broker.total_records("out").unwrap(), 10);
    }
}
