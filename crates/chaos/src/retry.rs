//! Bounded retries with exponential backoff and deterministic jitter.

use std::thread;
use std::time::Duration;

use crate::rng::DetRng;

/// Retry policy: exponential backoff with jitter, bounded attempts.
///
/// The jitter is derived deterministically from `seed` and the attempt
/// number, so a seeded chaos run retries on an identical schedule every
/// replay.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff.
    pub cap: Duration,
    /// Multiplier applied per retry.
    pub multiplier: f64,
    /// Fraction of the backoff randomised (0.0 = none, 0.2 = ±20%).
    pub jitter: f64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(200),
            multiplier: 2.0,
            jitter: 0.2,
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// A snappier policy for latency-sensitive serving calls.
    pub fn quick() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(160),
            ..Default::default()
        }
    }

    /// A patient policy for producers that must ride out outage windows.
    pub fn patient() -> Self {
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(250),
            ..Default::default()
        }
    }

    /// No retries at all.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// Backoff before retry `attempt` (0-based). Deterministic.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.powi(attempt as i32);
        let capped = exp.min(self.cap.as_secs_f64());
        if self.jitter <= 0.0 {
            return Duration::from_secs_f64(capped);
        }
        let mut rng = DetRng::new(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37));
        let factor = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        Duration::from_secs_f64((capped * factor).max(0.0))
    }

    /// Run `op`, retrying transient errors up to `max_retries` times with
    /// backoff. `on_retry` observes each retry (for counters). Errors that
    /// are not transient — and transient errors once the budget is spent —
    /// are returned to the caller.
    pub fn run<T, E>(
        &self,
        is_transient: impl Fn(&E) -> bool,
        on_retry: impl FnMut(u32),
        op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        self.run_hinted(is_transient, |_| None, on_retry, op)
    }

    /// Like [`run`](RetryPolicy::run), but lets the error suggest how long
    /// to wait: when `hint` returns `Some(d)` (a server's typed
    /// `Overloaded { retry_after }`, say), the sleep before that retry is
    /// at least `d`. The exponential schedule still applies underneath, so
    /// repeated overloads keep backing off past the server's estimate
    /// rather than hammering it on a fixed cadence.
    pub fn run_hinted<T, E>(
        &self,
        is_transient: impl Fn(&E) -> bool,
        hint: impl Fn(&E) -> Option<Duration>,
        mut on_retry: impl FnMut(u32),
        mut op: impl FnMut() -> Result<T, E>,
    ) -> Result<T, E> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < self.max_retries && is_transient(&e) => {
                    on_retry(attempt);
                    let wait = match hint(&e) {
                        Some(h) => self.backoff(attempt).max(h),
                        None => self.backoff(attempt),
                    };
                    thread::sleep(wait);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            jitter: 0.0,
            ..Default::default()
        };
        assert_eq!(p.backoff(0), Duration::from_millis(5));
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(10), Duration::from_millis(200));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 0..6 {
            let a = p.backoff(attempt);
            let b = p.backoff(attempt);
            assert_eq!(a, b);
            let nominal = RetryPolicy { jitter: 0.0, ..p }
                .backoff(attempt)
                .as_secs_f64();
            let got = a.as_secs_f64();
            assert!(got >= nominal * 0.8 - 1e-9 && got <= nominal * 1.2 + 1e-9);
        }
    }

    #[test]
    fn run_retries_transient_until_success() {
        let p = RetryPolicy {
            base: Duration::from_micros(100),
            jitter: 0.0,
            ..Default::default()
        };
        let mut calls = 0;
        let mut retries = 0;
        let out: Result<u32, &str> = p.run(
            |_| true,
            |_| retries += 1,
            || {
                calls += 1;
                if calls < 3 {
                    Err("transient")
                } else {
                    Ok(7)
                }
            },
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 3);
        assert_eq!(retries, 2);
    }

    #[test]
    fn hint_raises_the_backoff_floor() {
        let p = RetryPolicy {
            max_retries: 2,
            base: Duration::from_micros(50),
            jitter: 0.0,
            ..Default::default()
        };
        let sw = std::time::Instant::now();
        let mut calls = 0;
        let out: Result<(), &str> = p.run_hinted(
            |_| true,
            |_| Some(Duration::from_millis(20)),
            |_| {},
            || {
                calls += 1;
                if calls < 2 {
                    Err("overloaded")
                } else {
                    Ok(())
                }
            },
        );
        assert!(out.is_ok());
        assert!(
            sw.elapsed() >= Duration::from_millis(15),
            "hint not honoured: slept only {:?}",
            sw.elapsed()
        );

        // A hint below the scheduled backoff never shortens the sleep.
        let p = RetryPolicy {
            max_retries: 1,
            base: Duration::from_millis(30),
            jitter: 0.0,
            ..Default::default()
        };
        let sw = std::time::Instant::now();
        let mut first = true;
        let out: Result<(), &str> = p.run_hinted(
            |_| true,
            |_| Some(Duration::from_micros(1)),
            |_| {},
            || {
                if first {
                    first = false;
                    Err("overloaded")
                } else {
                    Ok(())
                }
            },
        );
        assert!(out.is_ok());
        assert!(sw.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn run_gives_up_after_budget_and_skips_permanent() {
        let p = RetryPolicy {
            max_retries: 2,
            base: Duration::from_micros(100),
            jitter: 0.0,
            ..Default::default()
        };
        let mut calls = 0;
        let out: Result<(), &str> = p.run(
            |_| true,
            |_| {},
            || {
                calls += 1;
                Err("always")
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<(), &str> = p.run(
            |_| false,
            |_| {},
            || {
                calls += 1;
                Err("permanent")
            },
        );
        assert!(out.is_err());
        assert_eq!(calls, 1);
    }
}
