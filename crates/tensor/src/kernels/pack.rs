//! Operand packing for the blocked GEMM.
//!
//! Packing rewrites a row-major operand into the strip layout the
//! microkernel consumes (see [`crate::kernels::microkernel`]): `A` becomes
//! `MR`-row strips stored K-major, `B` becomes `NR`-column strips stored
//! K-major, both zero-padded to full strip width at the edges. The payoff
//! is that every inner-loop access is unit-stride and every edge case is
//! absorbed at pack time, once — not per FLOP.
//!
//! These functions write into caller-provided buffers and never allocate:
//! scratch comes from [`crate::packed::GemmScratch`] (reused across calls)
//! or from weights packed once at executor plan-compile time
//! ([`crate::packed::PackedA`] / [`crate::packed::PackedB`]).

use crate::kernels::microkernel::{padded_qk, MR, NR, QMR, QNR};
use crate::kernels::quant::{amax, f32_to_f16_bits, quant_scales, quantize1, quantize_channel_into};

/// Number of `MR`-row strips covering `m` rows.
#[inline]
pub fn a_strips(m: usize) -> usize {
    m.div_ceil(MR)
}

/// Number of `NR`-column strips covering `n` columns.
#[inline]
pub fn b_strips(n: usize) -> usize {
    n.div_ceil(NR)
}

/// Length of the packed form of an `m×k` row-major `A`.
#[inline]
pub fn packed_a_len(m: usize, k: usize) -> usize {
    a_strips(m) * k * MR
}

/// Length of the packed form of a `k×n` row-major `B`.
#[inline]
pub fn packed_b_len(k: usize, n: usize) -> usize {
    b_strips(n) * k * NR
}

/// Pack row-major `a` (`m×k`) into `out` as `MR`-row strips, K-major:
/// strip `s` occupies `out[s * k * MR ..][.. k * MR]` and element
/// `(s * MR + r, p)` of `A` lands at offset `p * MR + r` inside it. Rows
/// past `m` are zero.
pub fn pack_a_into(a: &[f32], m: usize, k: usize, out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "pack_a: A length");
    assert_eq!(out.len(), packed_a_len(m, k), "pack_a: out length");
    for s in 0..a_strips(m) {
        let strip = &mut out[s * k * MR..(s + 1) * k * MR];
        let rows = MR.min(m - s * MR);
        for r in 0..MR {
            if r < rows {
                let row = &a[(s * MR + r) * k..(s * MR + r + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    strip[p * MR + r] = v;
                }
            } else {
                for p in 0..k {
                    strip[p * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Pack row-major `b` (`k×n`) into `out` as `NR`-column strips, K-major:
/// strip `s` occupies `out[s * k * NR ..][.. k * NR]` and element
/// `(p, s * NR + c)` of `B` lands at offset `p * NR + c` inside it.
/// Columns past `n` are zero.
pub fn pack_b_into(b: &[f32], k: usize, n: usize, out: &mut [f32]) {
    assert_eq!(b.len(), k * n, "pack_b: B length");
    assert_eq!(out.len(), packed_b_len(k, n), "pack_b: out length");
    // Row-outer order streams `B` through the cache exactly once; the
    // writes fan out to `b_strips(n)` destinations at stride `k * NR`,
    // which the store buffers absorb. Strip-outer order would re-read all
    // of `B` once per strip.
    let strips = b_strips(n);
    for p in 0..k {
        let row = &b[p * n..(p + 1) * n];
        for s in 0..strips {
            let cols = NR.min(n - s * NR);
            let dst = &mut out[s * k * NR + p * NR..s * k * NR + (p + 1) * NR];
            dst[..cols].copy_from_slice(&row[s * NR..s * NR + cols]);
            dst[cols..].fill(0.0);
        }
    }
}

/// Rows of a quantized `A` panel: `m` rounded up to whole `QMR` tiles so
/// the int8 driver never needs a row-edge microkernel (padding rows are
/// zero and clipped on store).
#[inline]
pub fn q_rows(m: usize) -> usize {
    m.div_ceil(QMR) * QMR
}

/// Columns of a quantized `B` panel, rounded up to whole `QNR` tiles.
#[inline]
pub fn q_cols(n: usize) -> usize {
    n.div_ceil(QNR) * QNR
}

/// Length (in `i16`s) of the quantized form of an `m×k` `A` operand.
#[inline]
pub fn quant_a_len(m: usize, k: usize) -> usize {
    q_rows(m) * padded_qk(k)
}

/// Length (in `i16`s) of the quantized form of a `k×n` `B` operand.
#[inline]
pub fn quant_b_len(k: usize, n: usize) -> usize {
    q_cols(n) * padded_qk(k)
}

/// Quantize a row-major `m×k` `A` operand (conv weights per output
/// channel, or dense activations per batch row) into the int8 panel
/// layout: row `r` occupies `out[r * padded_qk(k) ..][.. padded_qk(k)]`
/// contiguously, K-padded with zeros; rows past `m` (up to [`q_rows`]) are
/// zero. `scales[r]` receives the per-row symmetric scale (`amax / 127`).
///
/// This is the per-call activation quantizer on the int8 dense path, so it
/// allocates nothing.
pub fn quantize_a_into(a: &[f32], m: usize, k: usize, out: &mut [i16], scales: &mut [f32]) {
    assert_eq!(a.len(), m * k, "quantize_a: A length");
    assert_eq!(out.len(), quant_a_len(m, k), "quantize_a: out length");
    assert_eq!(scales.len(), m, "quantize_a: scales length");
    let kp = padded_qk(k);
    for r in 0..m {
        let row = &a[r * k..(r + 1) * k];
        let (scale, inv) = quant_scales(amax(row));
        scales[r] = scale;
        quantize_channel_into(row, inv, &mut out[r * kp..(r + 1) * kp]);
    }
    out[m * kp..].fill(0);
}

/// Quantize a row-major `k×n` `B` operand (dense weights, per output
/// feature) into the int8 panel layout: *column* `j` occupies
/// `out[j * padded_qk(k) ..][.. padded_qk(k)]` contiguously — the
/// column-major-by-channel mirror of [`quantize_a_into`] — with
/// `scales[j]` the per-column scale. Columns past `n` are zero.
pub fn quantize_b_into(b: &[f32], k: usize, n: usize, out: &mut [i16], scales: &mut [f32]) {
    assert_eq!(b.len(), k * n, "quantize_b: B length");
    assert_eq!(out.len(), quant_b_len(k, n), "quantize_b: out length");
    assert_eq!(scales.len(), n, "quantize_b: scales length");
    let kp = padded_qk(k);
    for j in 0..n {
        let mut am = 0.0f32;
        for p in 0..k {
            am = am.max(b[p * n + j].abs());
        }
        let (scale, inv) = quant_scales(am);
        scales[j] = scale;
        let col = &mut out[j * kp..(j + 1) * kp];
        for (p, o) in col.iter_mut().enumerate().take(k) {
            *o = quantize1(b[p * n + j], inv);
        }
        col[k..].fill(0);
    }
    out[n * kp..].fill(0);
}

/// Quantize an `im2col` matrix (`krows×cols`, row-major by kernel row — the
/// layout [`crate::kernels::conv::im2col`] writes) into the int8 `B` panel
/// layout with a single per-tensor `inv_scale`: patch `j` becomes the
/// contiguous K-padded column `out[j * padded_qk(krows) ..]`.
///
/// The transpose is blocked over 64 patches so the strided panel writes
/// touch a bounded set of cache lines while the source streams once. Runs
/// per conv call on the int8 path; allocates nothing.
pub fn quantize_patches_into(
    col: &[f32],
    krows: usize,
    cols: usize,
    inv_scale: f32,
    out: &mut [i16],
) {
    assert_eq!(col.len(), krows * cols, "quantize_patches: col length");
    assert_eq!(
        out.len(),
        quant_b_len(krows, cols),
        "quantize_patches: out length"
    );
    let kp = padded_qk(krows);
    const JB: usize = 64;
    for j0 in (0..cols).step_by(JB) {
        let jn = JB.min(cols - j0);
        for p in 0..krows {
            let src = &col[p * cols + j0..p * cols + j0 + jn];
            for (dj, &v) in src.iter().enumerate() {
                out[(j0 + dj) * kp + p] = quantize1(v, inv_scale);
            }
        }
    }
    // Zero the K padding of every real column and all padding columns.
    for j in 0..cols {
        out[j * kp + krows..(j + 1) * kp].fill(0);
    }
    out[cols * kp..].fill(0);
}

/// [`pack_a_into`] storing f16 bits: identical strip geometry, so the f16
/// panels can be block-expanded back into the f32 packed layout and fed to
/// the unchanged f32 microkernel.
pub fn pack_a16_into(a: &[f32], m: usize, k: usize, out: &mut [u16]) {
    assert_eq!(a.len(), m * k, "pack_a16: A length");
    assert_eq!(out.len(), packed_a_len(m, k), "pack_a16: out length");
    for s in 0..a_strips(m) {
        let strip = &mut out[s * k * MR..(s + 1) * k * MR];
        let rows = MR.min(m - s * MR);
        for r in 0..MR {
            if r < rows {
                let row = &a[(s * MR + r) * k..(s * MR + r + 1) * k];
                for (p, &v) in row.iter().enumerate() {
                    strip[p * MR + r] = f32_to_f16_bits(v);
                }
            } else {
                for p in 0..k {
                    strip[p * MR + r] = 0;
                }
            }
        }
    }
}

/// [`pack_b_into`] storing f16 bits (same geometry notes as
/// [`pack_a16_into`]).
pub fn pack_b16_into(b: &[f32], k: usize, n: usize, out: &mut [u16]) {
    assert_eq!(b.len(), k * n, "pack_b16: B length");
    assert_eq!(out.len(), packed_b_len(k, n), "pack_b16: out length");
    let strips = b_strips(n);
    for p in 0..k {
        let row = &b[p * n..(p + 1) * n];
        for s in 0..strips {
            let cols = NR.min(n - s * NR);
            let dst = &mut out[s * k * NR + p * NR..s * k * NR + (p + 1) * NR];
            for (o, &v) in dst[..cols].iter_mut().zip(&row[s * NR..s * NR + cols]) {
                *o = f32_to_f16_bits(v);
            }
            dst[cols..].fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::quant::f16_bits_to_f32;

    #[test]
    fn quantize_a_per_row_scales_and_pads() {
        // Two rows with different dynamic ranges; m=2 pads to q_rows(2)=4.
        let k = 3;
        let a = [1.0f32, -2.0, 0.5, 100.0, 50.0, -25.0];
        let mut out = vec![7i16; quant_a_len(2, k)];
        let mut scales = vec![0.0f32; 2];
        quantize_a_into(&a, 2, k, &mut out, &mut scales);
        let kp = padded_qk(k);
        assert_eq!(scales[0], 2.0 / 127.0);
        assert_eq!(scales[1], 100.0 / 127.0);
        assert_eq!(&out[..3], &[64, -127, 32]);
        assert_eq!(&out[kp..kp + 3], &[127, 64, -32]);
        assert!(out[2 * kp..].iter().all(|&v| v == 0), "padding rows zero");
        assert!(out[3..kp].iter().all(|&v| v == 0), "K padding zero");
    }

    #[test]
    fn quantize_b_is_column_major_per_column() {
        // B = [[1, 10], [-2, 20]] (k=2, n=2): col 0 amax 2, col 1 amax 20.
        let b = [1.0f32, 10.0, -2.0, 20.0];
        let mut out = vec![7i16; quant_b_len(2, 2)];
        let mut scales = vec![0.0f32; 2];
        quantize_b_into(&b, 2, 2, &mut out, &mut scales);
        let kp = padded_qk(2);
        assert_eq!(scales, vec![2.0 / 127.0, 20.0 / 127.0]);
        assert_eq!(&out[..2], &[64, -127]);
        assert_eq!(&out[kp..kp + 2], &[64, 127]);
    }

    #[test]
    fn quantize_patches_transposes_im2col_layout() {
        // col (krows=2, cols=3): rows [1 2 3] / [4 5 6]; patch j must
        // become the contiguous column [col[0][j], col[1][j]].
        let col = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut out = vec![7i16; quant_b_len(2, 3)];
        quantize_patches_into(&col, 2, 3, 1.0, &mut out);
        let kp = padded_qk(2);
        for j in 0..3 {
            assert_eq!(out[j * kp], (j + 1) as i16, "patch {j} row 0");
            assert_eq!(out[j * kp + 1], (j + 4) as i16, "patch {j} row 1");
            assert!(out[j * kp + 2..(j + 1) * kp].iter().all(|&v| v == 0));
        }
        assert!(out[3 * kp..].iter().all(|&v| v == 0), "padding cols zero");
    }

    #[test]
    fn pack16_mirrors_f32_geometry() {
        let (m, k, n) = (MR + 1, 3, NR + 2);
        let a: Vec<f32> = (0..m * k).map(|v| v as f32 * 0.25).collect();
        let b: Vec<f32> = (0..k * n).map(|v| v as f32 * 0.5).collect();
        let mut pf = vec![0.0f32; packed_a_len(m, k)];
        let mut p16 = vec![0u16; packed_a_len(m, k)];
        pack_a_into(&a, m, k, &mut pf);
        pack_a16_into(&a, m, k, &mut p16);
        for (i, (&f, &h)) in pf.iter().zip(&p16).enumerate() {
            assert_eq!(f, f16_bits_to_f32(h), "A offset {i}");
        }
        let mut pf = vec![0.0f32; packed_b_len(k, n)];
        let mut p16 = vec![0u16; packed_b_len(k, n)];
        pack_b_into(&b, k, n, &mut pf);
        pack_b16_into(&b, k, n, &mut p16);
        for (i, (&f, &h)) in pf.iter().zip(&p16).enumerate() {
            assert_eq!(f, f16_bits_to_f32(h), "B offset {i}");
        }
    }

    #[test]
    fn pack_a_interleaves_rows_and_pads() {
        // m = MR + 1 (two strips, second nearly empty), k = 3.
        let m = MR + 1;
        let k = 3;
        let a: Vec<f32> = (0..m * k).map(|v| v as f32).collect();
        let mut out = vec![f32::NAN; packed_a_len(m, k)];
        pack_a_into(&a, m, k, &mut out);
        // Strip 0, p = 1 holds column 1 of rows 0..MR.
        for r in 0..MR {
            assert_eq!(out[MR + r], a[r * k + 1]);
        }
        // Strip 1 holds row MR in lane 0 and zeros elsewhere.
        let strip1 = &out[k * MR..];
        for p in 0..k {
            assert_eq!(strip1[p * MR], a[MR * k + p]);
            for r in 1..MR {
                assert_eq!(strip1[p * MR + r], 0.0);
            }
        }
    }

    #[test]
    fn pack_b_copies_column_strips_and_pads() {
        // n = NR + 2, k = 2.
        let n = NR + 2;
        let k = 2;
        let b: Vec<f32> = (0..k * n).map(|v| v as f32).collect();
        let mut out = vec![f32::NAN; packed_b_len(k, n)];
        pack_b_into(&b, k, n, &mut out);
        // Strip 0, row p is b[p*n .. p*n+NR].
        for p in 0..k {
            assert_eq!(&out[p * NR..(p + 1) * NR], &b[p * n..p * n + NR]);
        }
        // Strip 1, row p starts with the 2 leftover columns then zeros.
        let strip1 = &out[k * NR..];
        for p in 0..k {
            assert_eq!(strip1[p * NR], b[p * n + NR]);
            assert_eq!(strip1[p * NR + 1], b[p * n + NR + 1]);
            for c in 2..NR {
                assert_eq!(strip1[p * NR + c], 0.0);
            }
        }
    }
}
