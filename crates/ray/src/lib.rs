//! # crayfish-ray
//!
//! An actor-based distributed computing engine in the style of Ray
//! (§3.4.4 of the paper), implementing the Crayfish `DataProcessor`
//! interface.
//!
//! Mechanisms reproduced:
//!
//! * **Actor pipelines**: `mp` independent chains of input → scoring →
//!   output actors with a one-to-one mapping between stages, exactly the
//!   manual spawning scheme the paper uses to emulate data parallelism
//!   (§4.3 "Scaling up").
//! * **Object-store message passing**: every message between actors is
//!   copied (a Plasma put/get pair) and pays the calibrated Python actor
//!   dispatch cost — the per-message overhead behind Ray's lowest-of-all
//!   throughput in Table 5.
//! * **No interoperability penalty**: the scoring actor applies the model
//!   directly (Ray is Python-native), so embedded scoring here carries no
//!   JNI-style marshalling.
//! * **Bounded mailboxes** provide backpressure from scoring back to the
//!   input actors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};

use crayfish_broker::{Broker, PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::chaos::{supervise, RetryPolicy, SupervisorConfig, WorkerExit};
use crayfish_core::scoring::score_payload_obs;
use crayfish_core::{CoreError, DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_sim::{Cost, OverheadModel};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RayOptions {
    /// Mailbox capacity per actor (backpressure bound).
    pub mailbox_capacity: usize,
    /// Calibrated overheads (actor dispatch cost).
    pub overheads: OverheadModel,
}

impl Default for RayOptions {
    fn default() -> Self {
        RayOptions {
            mailbox_capacity: 128,
            overheads: OverheadModel::calibrated(),
        }
    }
}

/// The Ray-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RayProcessor {
    /// Engine options.
    pub options: RayOptions,
}

impl RayProcessor {
    /// Engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: RayOptions) -> Self {
        RayProcessor { options }
    }
}

struct RayJob {
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl RunningJob for RayJob {
    fn stop(mut self: Box<Self>) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

/// An object-store transfer: the receiver gets its own copy of the payload
/// and pays the Python dispatch cost.
fn object_store_receive(msg: &Bytes, dispatch: Cost) -> Bytes {
    let copy = Bytes::from(msg.to_vec());
    dispatch.spend(copy.len());
    copy
}

impl DataProcessor for RayProcessor {
    fn name(&self) -> &'static str {
        "ray"
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        ctx.validate()?;
        let stop = Arc::new(AtomicBool::new(false));
        let options = self.options;
        let dispatch = options.overheads.actor_dispatch;
        let partitions = ctx.broker.partitions(&ctx.input_topic)?;
        let assignment = Broker::range_assignment(partitions, ctx.mp);
        let mut threads = Vec::with_capacity(ctx.mp * 3);

        for (i, assigned) in assignment.into_iter().enumerate() {
            // One-to-one actor chain i: input -> scoring -> output.
            let (score_tx, score_rx): (Sender<Bytes>, Receiver<Bytes>) =
                bounded(options.mailbox_capacity.max(1));
            let (out_tx, out_rx): (Sender<Bytes>, Receiver<Bytes>) =
                bounded(options.mailbox_capacity.max(1));

            // Input actor: consumes from Kafka, puts into the object store.
            // Supervised (Ray restarts dead actors): the mailbox survives
            // across incarnations, only the consumer is rebuilt, resuming
            // from the committed offsets.
            let consumer = PartitionConsumer::new(
                ctx.broker.clone(),
                &ctx.input_topic,
                &ctx.group,
                assigned.clone(),
            )?;
            let mut slot = Some(consumer);
            let flag = stop.clone();
            let chaos = ctx.chaos().clone();
            let broker = ctx.broker.clone();
            let input_topic = ctx.input_topic.clone();
            let group = ctx.group.clone();
            threads.push(supervise(
                format!("ray-input-{i}"),
                stop.clone(),
                ctx.obs().clone(),
                chaos.clone(),
                SupervisorConfig::default(),
                move |_incarnation| {
                    let mut consumer = match slot.take() {
                        Some(c) => c,
                        None => match PartitionConsumer::new(
                            broker.clone(),
                            &input_topic,
                            &group,
                            assigned.clone(),
                        ) {
                            Ok(c) => c,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("rebuild consumer: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        },
                    };
                    while !flag.load(Ordering::SeqCst) {
                        if chaos.take_worker_crash() {
                            return WorkerExit::Failed("injected actor crash".into());
                        }
                        let records = match consumer.poll(Duration::from_millis(50)) {
                            Ok(r) => r,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("poll: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        };
                        for rec in records {
                            if score_tx.send(rec.value).is_err() {
                                return WorkerExit::Stopped;
                            }
                        }
                        consumer.commit();
                    }
                    WorkerExit::Stopped
                },
            ));

            // Scoring actor.
            let mut scorer = ctx.scorer.build()?;
            let obs = ctx.obs().clone();
            threads.push(spawn_actor(format!("ray-score-{i}"), move || {
                let batches_scored = obs.counter("batches_scored");
                let score_errors = obs.counter("score_errors");
                let retries = obs.counter("retries");
                // Messages already left the input actor's commit scope, so
                // transient scoring failures retry in place.
                let retry = RetryPolicy::patient();
                loop {
                    match score_rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(msg) => {
                            // Object-store get + actor dispatch is the
                            // engine's per-record ingestion cost.
                            let span = obs.timer(crayfish_core::Stage::Ingest);
                            let staged = object_store_receive(&msg, dispatch);
                            span.stop();
                            let outcome = retry.run(
                                CoreError::is_transient,
                                |_| retries.inc(),
                                || score_payload_obs(scorer.as_mut(), &staged, &obs),
                            );
                            match outcome {
                                Ok(scored) => {
                                    batches_scored.inc();
                                    if out_tx.send(scored).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => score_errors.inc(),
                            }
                        }
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            })?);

            // Output actor: writes to Kafka.
            let mut producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let obs = ctx.obs().clone();
            threads.push(spawn_actor(format!("ray-output-{i}"), move || {
                let records_out = obs.counter("records_out");
                loop {
                    match out_rx.recv_timeout(Duration::from_millis(100)) {
                        Ok(msg) => {
                            let span = obs.timer(crayfish_core::Stage::Emit);
                            let staged = object_store_receive(&msg, dispatch);
                            let sent = producer.send(None, staged);
                            span.stop();
                            if sent.is_err() {
                                return;
                            }
                            records_out.inc();
                        }
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => return,
                    }
                }
            })?);
        }
        Ok(Box::new(RayJob { stop, threads }))
    }
}

fn spawn_actor(name: String, body: impl FnOnce() + Send + 'static) -> Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(body)
        .map_err(|e| CoreError::Config(format!("spawn {name}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_core::batch::{CrayfishDataBatch, ScoredBatch};
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::{now_millis_f64, NetworkModel};
    use crayfish_tensor::Tensor;

    fn make_ctx(mp: usize, overheads: OverheadModel) -> (ProcessorContext, RayProcessor) {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 8).unwrap();
        broker.create_topic("out", 8).unwrap();
        let ctx = ProcessorContext {
            broker,
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp,
        };
        let proc = RayProcessor::with_options(RayOptions {
            overheads,
            ..Default::default()
        });
        (ctx, proc)
    }

    fn feed(broker: &Broker, n: u64) {
        for id in 0..n {
            let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
            let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
                .encode()
                .unwrap();
            broker
                .append("in", (id % 8) as u32, vec![(payload, 0.0)])
                .unwrap();
        }
    }

    fn wait_for(broker: &Broker, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while broker.total_records("out").unwrap() < n && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn actor_chains_score_everything_exactly_once() {
        let (ctx, proc) = make_ctx(2, OverheadModel::zero());
        let broker = ctx.broker.clone();
        let job = proc.start(ctx).unwrap();
        feed(&broker, 60);
        wait_for(&broker, 60);
        let mut ids = Vec::new();
        for p in 0..8u32 {
            for r in broker.read("out", p, 0, 10_000, usize::MAX).unwrap() {
                ids.push(ScoredBatch::decode(&r.value).unwrap().id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 60);
        job.stop();
    }

    #[test]
    fn dispatch_cost_slows_the_pipeline() {
        // With the calibrated dispatch cost, two hops per record must show
        // up as end-to-end time.
        let (ctx, proc) = make_ctx(1, OverheadModel::calibrated());
        let broker = ctx.broker.clone();
        let job = proc.start(ctx).unwrap();
        let sw = crayfish_sim::Stopwatch::start();
        feed(&broker, 1);
        wait_for(&broker, 1);
        // Two dispatches at >= 180 µs each, plus pipeline time.
        assert!(sw.elapsed_millis() >= 0.36, "{} ms", sw.elapsed_millis());
        job.stop();
    }

    #[test]
    fn stop_terminates_all_actors() {
        let (ctx, proc) = make_ctx(3, OverheadModel::zero());
        let broker = ctx.broker.clone();
        let job = proc.start(ctx).unwrap();
        feed(&broker, 10);
        wait_for(&broker, 10);
        job.stop();
        feed(&broker, 5);
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(broker.total_records("out").unwrap(), 10);
    }
}
