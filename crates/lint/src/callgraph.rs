//! Project-wide call graph over the extracted items.
//!
//! Calls are resolved *intra-crate* by name/receiver heuristics:
//!
//! * `self.name(..)` prefers methods of the enclosing `impl` owner, then
//!   any same-crate method of that name (all of them, when ambiguous —
//!   an over-approximation, which keeps the reachability analyses sound).
//! * `recv.name(..)` resolves to every same-crate method of that name.
//! * `name(..)` resolves to free fns: same module first, then crate-wide.
//! * `Type::name(..)` / `Self::name(..)` resolve through the owner index;
//!   longer paths (`a::b::name(..)`) match fns whose module path ends
//!   with the written segments.
//!
//! Every call site that matches no project item is *recorded* as an
//! unresolved edge (std/external calls land here too) — never silently
//! dropped — so the JSON report can account for the analyses' blind spots.

use std::collections::HashMap;

use crate::items::FnItem;

/// How a call site resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Resolution {
    /// Resolved to exactly one project fn.
    Unique(usize),
    /// Name matched several candidates; the edge fans out to all of them.
    Ambiguous(Vec<usize>),
    /// No project fn matched (std, external crate, closure, macro-hidden).
    Unresolved,
}

/// One textual call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Byte offset of the callee name in cleaned text (file-absolute).
    pub pos: usize,
    /// The callee path as written, `::`-joined (`self.` receivers reduced
    /// to the method name; `a::b::f` kept whole).
    pub path: String,
    /// True for `recv.name(..)` method syntax.
    pub is_method: bool,
    pub resolution: Resolution,
}

/// The graph: per-fn call sites plus resolution accounting.
pub struct CallGraph {
    pub fns: Vec<FnItem>,
    /// `calls[i]` — call sites found in `fns[i]`'s body.
    pub calls: Vec<Vec<CallSite>>,
    pub resolved_edges: usize,
    pub ambiguous_edges: usize,
    pub unresolved_edges: usize,
}

impl CallGraph {
    /// Indices of every callee `site` may reach.
    pub fn targets<'a>(&self, site: &'a CallSite) -> &'a [usize] {
        match &site.resolution {
            Resolution::Unique(id) => std::slice::from_ref(id),
            Resolution::Ambiguous(ids) => ids,
            Resolution::Unresolved => &[],
        }
    }

    /// Fn ids whose item satisfies `pred`.
    pub fn find(&self, pred: impl Fn(&FnItem) -> bool) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| pred(&self.fns[i]))
            .collect()
    }

    /// Breadth-first reachability from `entries` through resolved edges.
    /// Returns `parent[i] = Some(caller)` for every reached fn (entries
    /// map to themselves), usable to reconstruct a call chain.
    pub fn reach(&self, entries: &[usize]) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &e in entries {
            if parent.insert(e, e).is_none() {
                queue.push(e);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let cur = queue[head];
            head += 1;
            for site in &self.calls[cur] {
                for &t in self.targets(site) {
                    // First discovery wins: re-inserting would repoint the
                    // parent of an already-visited node and could knot the
                    // parent map into a cycle (mutual recursion), which
                    // `chain` would then follow forever.
                    if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(t) {
                        e.insert(cur);
                        queue.push(t);
                    }
                }
            }
        }
        parent
    }

    /// `entry->..->target` qualified-name chain from a `reach` parent map.
    pub fn chain(&self, parent: &HashMap<usize, usize>, target: usize) -> String {
        let mut ids = vec![target];
        let mut cur = target;
        while let Some(&p) = parent.get(&cur) {
            if p == cur {
                break;
            }
            ids.push(p);
            cur = p;
        }
        ids.reverse();
        ids.iter()
            .map(|&i| self.fns[i].qualified())
            .collect::<Vec<_>>()
            .join("->")
    }
}

const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "let", "in", "as", "move", "ref",
    "mut", "where", "unsafe", "dyn", "impl", "pub", "use", "mod", "type", "struct", "enum",
    "trait", "const", "static", "break", "continue", "fn", "await", "async", "crate", "super",
];

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan one fn body (cleaned text slice) for call sites. `base` is the
/// slice's offset within the file, so positions come out file-absolute.
pub fn call_sites_in(body: &str, base: usize) -> Vec<RawCall> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if !is_ident(bytes[i]) || bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_ident(bytes[i]) {
            i += 1;
        }
        let name = &body[start..i];
        // Opening paren (allowing whitespace), with no `!` (macro) and no
        // `::<..>` turbofish — handle the turbofish by skipping it.
        let mut j = i;
        if body[j..].starts_with("::<") {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < bytes.len() {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        if j >= bytes.len() || bytes[j] != b'(' {
            continue;
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Declaration, not a call: `fn name(`.
        let before_name = body[..start].trim_end();
        if before_name.ends_with("fn")
            && !before_name.as_bytes()[..before_name.len() - 2]
                .last()
                .copied()
                .is_some_and(is_ident)
        {
            continue;
        }
        // Walk the prefix: `.` makes it a method call; `::` chains build a
        // path. `a.b.c(` reduces to method `c`; `a::b::c(` keeps the path.
        let mut segments = vec![name.to_string()];
        let mut is_method = false;
        let mut p = start;
        loop {
            if p >= 2 && &body[p - 2..p] == "::" {
                let seg_end = p - 2;
                let mut s = seg_end;
                while s > 0 && is_ident(bytes[s - 1]) {
                    s -= 1;
                }
                if s == seg_end {
                    break; // `<T>::name(` or similar — stop at the gap.
                }
                segments.insert(0, body[s..seg_end].to_string());
                p = s;
            } else if p >= 1 && bytes[p - 1] == b'.' {
                is_method = true;
                break;
            } else {
                break;
            }
        }
        out.push(RawCall {
            pos: base + start,
            segments,
            is_method,
        });
    }
    out
}

/// A call site before resolution.
#[derive(Debug)]
pub struct RawCall {
    pub pos: usize,
    pub segments: Vec<String>,
    pub is_method: bool,
}

/// `self.` receiver root of a method call at `pos` (absolute), if the
/// dotted chain starts at `self`.
fn receiver_is_self(clean: &str, name_start: usize) -> bool {
    let bytes = clean.as_bytes();
    let mut p = name_start;
    // Walk back over `.field`, `[..]`, `(..)` groups to the chain root.
    loop {
        if p >= 1 && bytes[p - 1] == b'.' {
            p -= 1;
            let c = if p > 0 { bytes[p - 1] } else { b' ' };
            if c == b']' || c == b')' {
                let open = if c == b']' { b'[' } else { b'(' };
                let close = c;
                let mut depth = 0usize;
                while p > 0 {
                    let d = bytes[p - 1];
                    p -= 1;
                    if d == close {
                        depth += 1;
                    } else if d == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
            } else if is_ident(c) {
                let end = p;
                while p > 0 && is_ident(bytes[p - 1]) {
                    p -= 1;
                }
                if &clean[p..end] == "self" {
                    return true;
                }
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
}

/// Build the call graph for a set of items over their files' cleaned text.
/// `texts[rel]` must hold the cleaned text of every file items came from.
/// Method names shared with the std collections/iterator/sync vocabulary.
/// On a non-`self` receiver these stay unresolved rather than fanning out
/// to every same-named project method (self-receivers still resolve, and
/// `Type::name(..)` paths are unaffected).
const STD_METHOD_NAMES: &[&str] = &[
    "append",
    "insert",
    "remove",
    "get",
    "get_mut",
    "push",
    "pop",
    "drain",
    "clear",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "next",
    "read",
    "write",
    "lock",
    "send",
    "recv",
    "take",
    "clone",
    "extend",
    "retain",
    "contains",
    "contains_key",
    "entry",
    "keys",
    "values",
    "join",
    "wait",
    "get_or_insert_with",
    "split_off",
    "map",
    "and_then",
    "unwrap_or",
    "unwrap_or_else",
    "ok",
    "err",
    "into",
    "from",
    "new",
    "flush",
    "start",
    "finish",
    "shutdown",
];

pub fn build(fns: Vec<FnItem>, texts: &HashMap<String, String>) -> CallGraph {
    // Per-crate indices.
    struct Index {
        methods: HashMap<String, Vec<usize>>,
        owner_methods: HashMap<(String, String), Vec<usize>>,
        free: HashMap<String, Vec<usize>>,
    }
    let mut by_crate: HashMap<String, Index> = HashMap::new();
    for (id, f) in fns.iter().enumerate() {
        let idx = by_crate
            .entry(f.crate_name.clone())
            .or_insert_with(|| Index {
                methods: HashMap::new(),
                owner_methods: HashMap::new(),
                free: HashMap::new(),
            });
        match &f.owner {
            Some(t) => {
                idx.methods.entry(f.name.clone()).or_default().push(id);
                idx.owner_methods
                    .entry((t.clone(), f.name.clone()))
                    .or_default()
                    .push(id);
            }
            None => idx.free.entry(f.name.clone()).or_default().push(id),
        }
    }

    let mut calls: Vec<Vec<CallSite>> = Vec::with_capacity(fns.len());
    let (mut resolved, mut ambiguous, mut unresolved) = (0usize, 0usize, 0usize);
    for f in &fns {
        let Some(clean) = texts.get(&f.rel) else {
            calls.push(Vec::new());
            continue;
        };
        let (open, close) = f.body;
        let raw = call_sites_in(&clean[open..=close], open);
        let idx = &by_crate[&f.crate_name];
        let mut sites = Vec::with_capacity(raw.len());
        for rc in raw {
            let name = rc.segments.last().cloned().unwrap_or_default();
            // Exclude self-recursion-only resolution noise: a call site
            // inside fn X matching only X itself is still a real edge.
            let candidates: Vec<usize> = if rc.is_method {
                let self_recv = receiver_is_self(clean, rc.pos);
                let owned = f
                    .owner
                    .as_ref()
                    .and_then(|t| idx.owner_methods.get(&(t.clone(), name.clone())));
                match (self_recv, owned) {
                    (true, Some(ids)) => ids.clone(),
                    // A method on a non-`self` receiver whose name
                    // collides with the std collection/sync vocabulary
                    // (`v.append(..)`, `map.insert(..)`) is far more
                    // likely std than project code: fanning out to every
                    // same-named project method would flood the graph
                    // with false edges. Recorded as unresolved instead.
                    (false, _) if STD_METHOD_NAMES.contains(&name.as_str()) => Vec::new(),
                    _ => idx.methods.get(&name).cloned().unwrap_or_default(),
                }
            } else if rc.segments.len() >= 2 {
                let qualifier = &rc.segments[rc.segments.len() - 2];
                let is_type =
                    qualifier.chars().next().is_some_and(char::is_uppercase) || qualifier == "Self";
                if is_type {
                    let owner = if qualifier == "Self" {
                        f.owner.clone().unwrap_or_default()
                    } else {
                        qualifier.clone()
                    };
                    idx.owner_methods
                        .get(&(owner, name.clone()))
                        .cloned()
                        .unwrap_or_default()
                } else {
                    // Module path: match free fns whose module path ends
                    // with the written prefix (ignoring crate/self/super).
                    let prefix: Vec<&String> = rc.segments[..rc.segments.len() - 1]
                        .iter()
                        .filter(|s| !matches!(s.as_str(), "crate" | "self" | "super"))
                        .collect();
                    idx.free
                        .get(&name)
                        .map(|ids| {
                            ids.iter()
                                .copied()
                                .filter(|&id| {
                                    let m = &fns[id].module;
                                    m.len() >= prefix.len()
                                        && m[m.len() - prefix.len()..]
                                            .iter()
                                            .zip(&prefix)
                                            .all(|(a, b)| a == *b)
                                })
                                .collect()
                        })
                        .unwrap_or_default()
                }
            } else {
                // Bare `name(` — free fns, same module preferred.
                match idx.free.get(&name) {
                    Some(ids) => {
                        let same_module: Vec<usize> = ids
                            .iter()
                            .copied()
                            .filter(|&id| fns[id].module == f.module)
                            .collect();
                        if same_module.is_empty() {
                            ids.clone()
                        } else {
                            same_module
                        }
                    }
                    None => Vec::new(),
                }
            };
            let resolution = match candidates.len() {
                0 => {
                    unresolved += 1;
                    Resolution::Unresolved
                }
                1 => {
                    resolved += 1;
                    Resolution::Unique(candidates[0])
                }
                _ => {
                    ambiguous += 1;
                    Resolution::Ambiguous(candidates)
                }
            };
            sites.push(CallSite {
                pos: rc.pos,
                path: rc.segments.join("::"),
                is_method: rc.is_method,
                resolution,
            });
        }
        calls.push(sites);
    }
    CallGraph {
        fns,
        calls,
        resolved_edges: resolved,
        ambiguous_edges: ambiguous,
        unresolved_edges: unresolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::file_fns;
    use crate::source::SourceFile;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(rel, code)| SourceFile::synthetic(rel, code))
            .collect();
        let mut fns = Vec::new();
        let mut texts = HashMap::new();
        for s in &sources {
            fns.extend(file_fns(s));
            texts.insert(s.rel.clone(), s.clean.clone());
        }
        build(fns, &texts)
    }

    fn id(g: &CallGraph, q: &str) -> usize {
        g.find(|f| f.qualified() == q)
            .first()
            .copied()
            .unwrap_or_else(|| panic!("no fn {q}"))
    }

    fn callees(g: &CallGraph, q: &str) -> Vec<String> {
        let i = id(g, q);
        let mut out = Vec::new();
        for site in &g.calls[i] {
            for &t in g.targets(site) {
                out.push(g.fns[t].qualified());
            }
        }
        out.sort();
        out
    }

    #[test]
    fn free_fn_call_resolves_in_same_file() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn caller() { helper(); }\nfn helper() {}\n",
        )]);
        assert_eq!(callees(&g, "a::caller"), vec!["a::helper"]);
        assert_eq!(g.resolved_edges, 1);
    }

    #[test]
    fn shadowed_names_prefer_the_same_module() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "pub fn helper() {}\nfn caller() { helper(); }\n",
            ),
            ("crates/a/src/y.rs", "pub fn helper() {}\n"),
        ]);
        // Bare call in x resolves to x::helper only, not y::helper.
        assert_eq!(callees(&g, "a::x::caller"), vec!["a::x::helper"]);
    }

    #[test]
    fn cross_module_path_call_resolves_by_suffix() {
        let g = graph(&[
            (
                "crates/a/src/x.rs",
                "fn caller() { crate::y::helper(); y::helper(); }\n",
            ),
            ("crates/a/src/y.rs", "pub fn helper() {}\n"),
        ]);
        assert_eq!(
            callees(&g, "a::x::caller"),
            vec!["a::y::helper", "a::y::helper"]
        );
    }

    #[test]
    fn method_call_on_self_prefers_the_owner_impl() {
        let code = "struct A;\nstruct B;\n\
            impl A { fn go(&self) { self.step(); }\n fn step(&self) {} }\n\
            impl B { fn step(&self) {} }\n";
        let g = graph(&[("crates/a/src/m.rs", code)]);
        assert_eq!(callees(&g, "a::m::A::go"), vec!["a::m::A::step"]);
        assert_eq!(g.ambiguous_edges, 0);
    }

    #[test]
    fn method_call_on_other_receiver_fans_out_to_all_candidates() {
        let code = "struct A;\nstruct B;\n\
            fn free(x: &A) { x.step(); }\n\
            impl A { fn step(&self) {} }\n\
            impl B { fn step(&self) {} }\n";
        let g = graph(&[("crates/a/src/m.rs", code)]);
        assert_eq!(
            callees(&g, "a::m::free"),
            vec!["a::m::A::step", "a::m::B::step"]
        );
        assert_eq!(g.ambiguous_edges, 1);
    }

    #[test]
    fn associated_fn_path_resolves_via_owner() {
        let code = "struct A;\nimpl A { fn new() -> A { A }\n fn fresh() -> A { Self::new() } }\n\
                    fn make() -> A { A::new() }\n";
        let g = graph(&[("crates/a/src/m.rs", code)]);
        assert_eq!(callees(&g, "a::m::make"), vec!["a::m::A::new"]);
        assert_eq!(callees(&g, "a::m::A::fresh"), vec!["a::m::A::new"]);
    }

    #[test]
    fn method_vs_free_fn_with_same_name_do_not_cross() {
        let code = "struct A;\nimpl A { fn run(&self) {} }\n\
                    fn run() {}\nfn caller(a: &A) { run(); a.run(); }\n";
        let g = graph(&[("crates/a/src/m.rs", code)]);
        let i = id(&g, "a::m::caller");
        let resolved: Vec<(bool, Vec<String>)> = g.calls[i]
            .iter()
            .map(|s| {
                (
                    s.is_method,
                    g.targets(s).iter().map(|&t| g.fns[t].qualified()).collect(),
                )
            })
            .collect();
        assert_eq!(
            resolved,
            vec![
                (false, vec!["a::m::run".to_string()]),
                (true, vec!["a::m::A::run".to_string()]),
            ]
        );
    }

    #[test]
    fn external_calls_are_recorded_as_unresolved() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn f() { std::thread::sleep(d); x.len(); Vec::new(); }\n",
        )]);
        assert_eq!(g.unresolved_edges, 3);
        assert_eq!(g.resolved_edges, 0);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn f() { if (a) { panic!(\"x\"); } while (b) {} vec![1]; }\n",
        )]);
        assert_eq!(g.unresolved_edges, 0);
        assert!(g.calls[id(&g, "a::f")].is_empty());
    }

    #[test]
    fn calls_across_crates_stay_unresolved() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn helper() {}\n"),
            ("crates/b/src/lib.rs", "fn caller() { helper(); }\n"),
        ]);
        assert_eq!(g.unresolved_edges, 1);
        assert!(callees(&g, "b::caller").is_empty());
    }

    #[test]
    fn reach_and_chain_reconstruct_paths() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\n",
        )]);
        let e = id(&g, "a::entry");
        let l = id(&g, "a::leaf");
        let parents = g.reach(&[e]);
        assert!(parents.contains_key(&l));
        assert_eq!(g.chain(&parents, l), "a::entry->a::mid->a::leaf");
    }

    #[test]
    fn turbofish_calls_still_parse() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn f() { helper::<u32>(); }\nfn helper<T>() {}\n",
        )]);
        assert_eq!(callees(&g, "a::f"), vec!["a::helper"]);
    }
}
