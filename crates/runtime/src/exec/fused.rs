//! The graph-optimised executor (ONNX-Runtime-style).
//!
//! At load time the graph is compiled into a plan:
//!
//! * **Conv + BatchNorm folding** — a batch-norm that solely consumes a
//!   convolution is folded into the convolution's weights and bias, removing
//!   an entire pass over the activation.
//! * **ReLU fusion** — a ReLU that solely consumes a conv/dense/add/bn step
//!   is applied in that step's output loop instead of a separate pass.
//! * **Weight pre-packing** — conv and dense weight matrices are packed
//!   into the blocked GEMM's strip layout once, here, so steady-state
//!   inference performs zero weight packing (conv weights as [`PackedA`],
//!   dense weights as [`PackedB`]; batch-norm folding rescales the packed
//!   panels in place).
//! * **Arena reuse** — per-step output buffers, the `im2col` scratch, and
//!   the GEMM packing scratch are allocated once and reused across calls,
//!   so the steady-state hot path does not touch the allocator.
//!
//! These are the real optimisations ONNX Runtime's graph optimiser performs,
//! and they are why the paper measures ONNX as the fastest embedded option.

use crayfish_tensor::kernels::conv::{conv2d_prepacked_into, Conv2dParams};
use crayfish_tensor::kernels::gemm::{gemm_ipj, gemm_prepacked_b};
use crayfish_tensor::kernels::microkernel::MR;
use crayfish_tensor::kernels::{activation, add_inplace, pool};
use crayfish_tensor::{GemmScratch, NnGraph, Op, PackedA, PackedB, Shape, Tensor};

use crate::error::RuntimeError;
use crate::exec::check_batched_input;
use crate::Result;

/// A compiled step's operation.
#[derive(Debug, Clone)]
enum FusedOp {
    Input,
    Conv {
        /// `[out_c, in_c*k*k]` weight, packed at plan-compile time.
        w: PackedA,
        bias: Vec<f32>,
        params: Conv2dParams,
        relu: bool,
    },
    Dense {
        /// Raw `[inf, outf]` weight, kept for the skinny-batch path where
        /// packing the activation rows would waste most of each panel.
        w: Vec<f32>,
        /// The same weight packed at plan-compile time for `batch >= MR`.
        pw: PackedB,
        bias: Vec<f32>,
        inf: usize,
        outf: usize,
        relu: bool,
    },
    BatchNorm {
        scale: Vec<f32>,
        shift: Vec<f32>,
        relu: bool,
    },
    MaxPool {
        k: usize,
        s: usize,
        pad: usize,
    },
    Gap,
    Add {
        relu: bool,
    },
    Flatten,
    Relu,
    Softmax,
}

impl FusedOp {
    /// Whether this step launches a compute kernel (used by the GPU model).
    fn is_kernel(&self) -> bool {
        !matches!(self, FusedOp::Input | FusedOp::Flatten)
    }
}

#[derive(Debug, Clone)]
struct Step {
    name: String,
    op: FusedOp,
    inputs: Vec<usize>,
    /// Per-item output shape (batch dimension stripped).
    item_shape: Shape,
}

/// The compiled, arena-backed executor.
#[derive(Debug)]
pub struct FusedExec {
    steps: Vec<Step>,
    output_step: usize,
    input_shape: Shape,
    per_item_flops: u64,
    buffers: Vec<Vec<f32>>,
    col_scratch: Vec<f32>,
    gemm_scratch: GemmScratch,
}

impl FusedExec {
    /// Compile `graph` into a fused plan.
    pub fn new(graph: &NnGraph) -> Result<Self> {
        let shapes = graph.infer_shapes(1)?;
        let input_shape = graph.input_shape()?;
        let per_item_flops = graph.flops(1)?;

        // How many nodes consume each node's output (the graph output
        // counts as one extra consumer so it is never fused away invisibly).
        let mut consumers = vec![0usize; graph.nodes().len()];
        for node in graph.nodes() {
            for &i in &node.inputs {
                consumers[i] += 1;
            }
        }
        consumers[graph.output()] += 1;

        let mut steps: Vec<Step> = Vec::with_capacity(graph.nodes().len());
        // node id -> step id
        let mut map: Vec<usize> = Vec::with_capacity(graph.nodes().len());

        for node in graph.nodes() {
            let step_inputs: Vec<usize> = node.inputs.iter().map(|&i| map[i]).collect();
            let item_shape = shapes[node.id].per_item();
            match &node.op {
                Op::Input { .. } => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Input,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Conv2d { w, b, params } => {
                    let bias = b.as_ref().map(|t| t.data().to_vec()).unwrap_or_default();
                    let krows = params.in_c * params.kernel * params.kernel;
                    let op = FusedOp::Conv {
                        w: PackedA::pack(w.data(), params.out_c, krows),
                        bias,
                        params: *params,
                        relu: false,
                    };
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        op,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Dense { w, b } => {
                    let (inf, outf) = (w.shape().dim(0), w.shape().dim(1));
                    let op = FusedOp::Dense {
                        w: w.data().to_vec(),
                        pw: PackedB::pack(w.data(), inf, outf),
                        bias: b.data().to_vec(),
                        inf,
                        outf,
                        relu: false,
                    };
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        op,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::BatchNorm { params } => {
                    let (scale, shift) = params.fold();
                    let producer = node.inputs[0];
                    let target = map[producer];
                    let foldable = consumers[producer] == 1
                        && matches!(steps[target].op, FusedOp::Conv { .. });
                    if foldable {
                        // Fold into the convolution's weights and bias.
                        if let FusedOp::Conv { w, bias, .. } = &mut steps[target].op {
                            // Each output channel is one row of the GEMM's
                            // A operand; rescale it inside the packed panels.
                            for (oc, &s) in scale.iter().enumerate() {
                                w.scale_row(oc, s);
                            }
                            if bias.is_empty() {
                                *bias = shift.clone();
                            } else {
                                for (bv, (&s, &t)) in bias.iter_mut().zip(scale.iter().zip(&shift))
                                {
                                    *bv = *bv * s + t;
                                }
                            }
                        }
                        map.push(target);
                    } else {
                        let op = FusedOp::BatchNorm {
                            scale,
                            shift,
                            relu: false,
                        };
                        map.push(push(
                            &mut steps,
                            node.name.clone(),
                            op,
                            step_inputs,
                            item_shape,
                        ));
                    }
                }
                Op::Relu => {
                    let producer = node.inputs[0];
                    let target = map[producer];
                    let fusable = consumers[producer] == 1
                        && match &steps[target].op {
                            FusedOp::Conv { relu, .. }
                            | FusedOp::Dense { relu, .. }
                            | FusedOp::BatchNorm { relu, .. }
                            | FusedOp::Add { relu } => !relu,
                            _ => false,
                        };
                    if fusable {
                        match &mut steps[target].op {
                            FusedOp::Conv { relu, .. }
                            | FusedOp::Dense { relu, .. }
                            | FusedOp::BatchNorm { relu, .. }
                            | FusedOp::Add { relu } => *relu = true,
                            _ => unreachable!("fusable checked above"),
                        }
                        map.push(target);
                    } else {
                        map.push(push(
                            &mut steps,
                            node.name.clone(),
                            FusedOp::Relu,
                            step_inputs,
                            item_shape,
                        ));
                    }
                }
                Op::MaxPool { k, s, pad } => {
                    let op = FusedOp::MaxPool {
                        k: *k,
                        s: *s,
                        pad: *pad,
                    };
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        op,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::GlobalAvgPool => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Gap,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Add => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Add { relu: false },
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Flatten => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Flatten,
                        step_inputs,
                        item_shape,
                    ));
                }
                Op::Softmax => {
                    map.push(push(
                        &mut steps,
                        node.name.clone(),
                        FusedOp::Softmax,
                        step_inputs,
                        item_shape,
                    ));
                }
            }
        }

        let output_step = map[graph.output()];
        let n = steps.len();
        Ok(FusedExec {
            steps,
            output_step,
            input_shape,
            per_item_flops,
            buffers: (0..n).map(|_| Vec::new()).collect(),
            col_scratch: Vec::new(),
            gemm_scratch: GemmScratch::new(),
        })
    }

    /// `(ptr, capacity)` of every arena buffer and scratch — lets tests
    /// assert that steady-state inference reuses the arena instead of
    /// reallocating.
    #[doc(hidden)]
    pub fn arena_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp: Vec<(usize, usize)> = self
            .buffers
            .iter()
            .map(|b| (b.as_ptr() as usize, b.capacity()))
            .collect();
        fp.push((
            self.col_scratch.as_ptr() as usize,
            self.col_scratch.capacity(),
        ));
        fp.extend(self.gemm_scratch.fingerprint());
        fp
    }

    /// Number of compiled steps (after fusion).
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }

    /// Number of compute-kernel steps — the launches a GPU would perform.
    pub fn kernel_count(&self) -> usize {
        self.steps.iter().filter(|s| s.op.is_kernel()).count()
    }

    /// Forward FLOPs per batch item.
    pub fn per_item_flops(&self) -> u64 {
        self.per_item_flops
    }

    /// The model's per-item input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The model's per-item output shape.
    pub fn output_item_shape(&self) -> &Shape {
        &self.steps[self.output_step].item_shape
    }

    /// Run a forward pass over a `[batch, ..input]` tensor.
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor> {
        let batch = check_batched_input(input, &self.input_shape)?;
        for si in 0..self.steps.len() {
            let (before, rest) = self.buffers.split_at_mut(si);
            let out = &mut rest[0];
            // Clone step metadata borrows: split the steps slice the same way.
            let (steps_before, steps_rest) = self.steps.split_at(si);
            let step = &steps_rest[0];
            let in_buf = |i: usize| -> &[f32] { &before[step.inputs[i]] };
            let in_item = |i: usize| -> &Shape { &steps_before[step.inputs[i]].item_shape };
            let out_numel = batch * step.item_shape.numel();

            match &step.op {
                FusedOp::Input => {
                    out.clear();
                    out.extend_from_slice(input.data());
                }
                FusedOp::Conv {
                    w,
                    bias,
                    params,
                    relu,
                } => {
                    let s = in_item(0);
                    let (h, wd) = (s.dim(1), s.dim(2));
                    out.resize(out_numel, 0.0);
                    conv2d_prepacked_into(
                        in_buf(0),
                        batch,
                        h,
                        wd,
                        w,
                        bias,
                        params,
                        &mut self.col_scratch,
                        out,
                        &mut self.gemm_scratch,
                    );
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::Dense {
                    w,
                    pw,
                    bias,
                    inf,
                    outf,
                    relu,
                } => {
                    out.resize(batch * outf, 0.0);
                    for row in out.chunks_exact_mut(*outf) {
                        row.copy_from_slice(bias);
                    }
                    if batch < MR {
                        // Skinny batch: the streaming kernel reads the raw
                        // weight once; packing activations would waste most
                        // of each MR-row panel.
                        gemm_ipj(in_buf(0), w, out, batch, *inf, *outf);
                    } else {
                        gemm_prepacked_b(in_buf(0), pw, out, batch, &mut self.gemm_scratch);
                    }
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::BatchNorm { scale, shift, relu } => {
                    let s = in_item(0);
                    let c = s.dim(0);
                    let plane: usize = s.dims()[1..].iter().product();
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    for b in 0..batch {
                        for ch in 0..c {
                            let start = (b * c + ch) * plane;
                            let (sc, sh) = (scale[ch], shift[ch]);
                            for v in &mut out[start..start + plane] {
                                *v = sc * *v + sh;
                            }
                        }
                    }
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::MaxPool { k, s, pad } => {
                    let sh = in_item(0);
                    out.resize(out_numel, 0.0);
                    pool::maxpool2d_into(
                        in_buf(0),
                        batch,
                        sh.dim(0),
                        sh.dim(1),
                        sh.dim(2),
                        *k,
                        *s,
                        *pad,
                        out,
                    );
                }
                FusedOp::Gap => {
                    let s = in_item(0);
                    out.resize(out_numel, 0.0);
                    pool::avgpool_global_into(in_buf(0), batch, s.dim(0), s.dim(1), s.dim(2), out);
                }
                FusedOp::Add { relu } => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    add_inplace(out, in_buf(1));
                    if *relu {
                        activation::relu_inplace(out);
                    }
                }
                FusedOp::Flatten => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                }
                FusedOp::Relu => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    activation::relu_inplace(out);
                }
                FusedOp::Softmax => {
                    let cols = step.item_shape.numel();
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    activation::softmax_rows(out, batch, cols);
                }
            }
            debug_assert_eq!(out.len(), out_numel, "step {} output size", step.name);
        }

        let out_step = &self.steps[self.output_step];
        let shape = out_step.item_shape.clone();
        let mut dims = vec![batch];
        dims.extend_from_slice(shape.dims());
        Tensor::from_vec(Shape::new(dims), self.buffers[self.output_step].clone())
            .map_err(RuntimeError::from)
    }
}

fn push(
    steps: &mut Vec<Step>,
    name: String,
    op: FusedOp,
    inputs: Vec<usize>,
    item_shape: Shape,
) -> usize {
    steps.push(Step {
        name,
        op,
        inputs,
        item_shape,
    });
    steps.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::unfused::UnfusedExec;
    use crayfish_models::{ffnn, tiny};

    #[test]
    fn fusion_reduces_step_count() {
        let g = tiny::tiny_cnn(4);
        let exec = FusedExec::new(&g).unwrap();
        // conv1+bn1+relu1 fuse to 1 step; conv2 stays (its output feeds the
        // add); residual add fuses relu2.
        assert!(
            exec.step_count() < g.nodes().len(),
            "{} steps",
            exec.step_count()
        );
    }

    #[test]
    fn fused_matches_unfused_cnn() {
        let g = tiny::tiny_cnn(4);
        let mut fused = FusedExec::new(&g).unwrap();
        let mut plain = UnfusedExec::new(g, true, None).unwrap();
        for batch in [1usize, 3] {
            let input = Tensor::seeded_uniform([batch, 3, 8, 8], batch as u64, -1.0, 1.0);
            let a = fused.run(&input).unwrap();
            let b = plain.run(&input).unwrap();
            assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
        }
    }

    #[test]
    fn fused_matches_unfused_ffnn() {
        let g = ffnn::build(6);
        let mut fused = FusedExec::new(&g).unwrap();
        let mut plain = UnfusedExec::new(g, true, None).unwrap();
        let input = Tensor::seeded_uniform([4, 28, 28], 3, 0.0, 1.0);
        let a = fused.run(&input).unwrap();
        let b = plain.run(&input).unwrap();
        assert_eq!(a.shape().dims(), &[4, 10]);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn repeated_calls_reuse_buffers_and_stay_correct() {
        let g = tiny::tiny_cnn(1);
        let mut fused = FusedExec::new(&g).unwrap();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, -1.0, 1.0);
        let first = fused.run(&input).unwrap();
        for _ in 0..5 {
            let again = fused.run(&input).unwrap();
            assert_eq!(first, again);
        }
        // Changing batch size mid-stream must also work.
        let big = Tensor::seeded_uniform([5, 3, 8, 8], 2, -1.0, 1.0);
        assert_eq!(fused.run(&big).unwrap().shape().dims(), &[5, 4]);
    }

    #[test]
    fn kernel_count_excludes_data_movement() {
        let g = tiny::tiny_mlp(1);
        let exec = FusedExec::new(&g).unwrap();
        assert!(exec.kernel_count() < exec.step_count());
        assert!(exec.kernel_count() >= 2, "at least the two dense layers");
    }

    #[test]
    fn exposes_shapes_and_flops() {
        let g = ffnn::build(2);
        let exec = FusedExec::new(&g).unwrap();
        assert_eq!(exec.input_shape().dims(), &[28, 28]);
        assert_eq!(exec.output_item_shape().dims(), &[10]);
        assert_eq!(exec.per_item_flops(), g.flops(1).unwrap());
    }
}
