//! Crash-and-restore server lifecycle for chaos drills.
//!
//! A [`RestartableServer`] wraps any of the three external servers so a
//! fault plan can kill it mid-run and bring it back **on the same
//! address** — clients holding the endpoint reconnect once it returns,
//! which is exactly what the resilient client's retry/breaker path is
//! built to ride out.

use std::net::SocketAddr;
use std::sync::Arc;

use parking_lot::Mutex;

use crayfish_tensor::NnGraph;

use crate::server::{ServerHandle, ServingConfig};
use crate::{ExternalKind, Result};

/// A server that can be crashed and restored on a stable address.
pub struct RestartableServer {
    kind: ExternalKind,
    graph: NnGraph,
    config: ServingConfig,
    addr: SocketAddr,
    handle: Mutex<Option<ServerHandle>>,
}

impl RestartableServer {
    /// Start the server on an ephemeral port and remember everything needed
    /// to rebuild it there. Returned in an `Arc` so injector callbacks and
    /// the test driver can share it.
    pub fn start(
        kind: ExternalKind,
        graph: &NnGraph,
        config: ServingConfig,
    ) -> Result<Arc<RestartableServer>> {
        let handle = kind.start(graph, config.clone())?;
        let addr = handle.addr();
        Ok(Arc::new(RestartableServer {
            kind,
            graph: graph.clone(),
            config,
            addr,
            handle: Mutex::new(Some(handle)),
        }))
    }

    /// The stable address clients should hold across crashes.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether the server is currently up.
    pub fn is_up(&self) -> bool {
        self.handle.lock().is_some()
    }

    /// Crash the server: sever live connections (clients observe EOF) and
    /// free the port. Idempotent.
    pub fn crash(&self) {
        let handle = self.handle.lock().take();
        if let Some(h) = handle {
            h.shutdown();
        }
    }

    /// Restore a crashed server on its original address. Idempotent.
    pub fn restore(&self) -> Result<()> {
        let mut guard = self.handle.lock();
        if guard.is_none() {
            *guard = Some(
                self.kind
                    .start_at(&self.graph, self.config.clone(), self.addr)?,
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{GrpcClient, ScoringClient};
    use crayfish_models::tiny;
    use crayfish_sim::NetworkModel;
    use crayfish_tensor::Tensor;
    use std::net::TcpStream;

    #[test]
    fn crash_then_restore_keeps_the_address() {
        let srv = RestartableServer::start(
            ExternalKind::TfServing,
            &tiny::tiny_mlp(1),
            ServingConfig::default(),
        )
        .unwrap();
        let addr = srv.addr();
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        let mut c = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
        c.infer(&input).unwrap();

        srv.crash();
        srv.crash(); // idempotent
        assert!(!srv.is_up());
        assert!(TcpStream::connect(addr).is_err(), "port still bound");

        srv.restore().unwrap();
        srv.restore().unwrap(); // idempotent
        assert!(srv.is_up());
        let mut c2 = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
        c2.infer(&input).unwrap();
        srv.crash();
    }

    #[test]
    fn works_for_every_external_kind() {
        for kind in ExternalKind::ALL {
            let srv = RestartableServer::start(kind, &tiny::tiny_mlp(1), ServingConfig::default())
                .unwrap();
            let addr = srv.addr();
            srv.crash();
            srv.restore().unwrap();
            let mut c = kind.connect(addr, NetworkModel::zero()).unwrap();
            c.infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
                .unwrap();
            srv.crash();
        }
    }
}
