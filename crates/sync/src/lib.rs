//! Synchronisation shim for the Crayfish workspace.
//!
//! Every concurrency-bearing crate imports its primitives from here rather
//! than from `std`/`parking_lot` directly. In a normal build the types are
//! thin wrappers over `parking_lot` (locks) and `std` (atomics, threads), so
//! the shim costs nothing. Under `RUSTFLAGS="--cfg loom"` the same names
//! resolve to [loom](https://docs.rs/loom)'s model-checked primitives, which
//! lets the `tests/loom.rs` suites exhaustively explore thread interleavings
//! of the broker long-poll, the flink exchange buffer, the chaos circuit
//! breaker, and the worker crash/restart handoff.
//!
//! Design constraints the API encodes:
//!
//! - **Consuming condvar style.** loom's `Condvar::wait` takes the guard by
//!   value; `parking_lot`'s takes `&mut guard`. The shim standardises on the
//!   consuming style (`wait(guard) -> guard`) because the by-value form can
//!   wrap the by-ref form but not vice versa.
//! - **No timeouts under loom.** loom has no notion of wall-clock time, so
//!   [`Condvar::wait_timeout`] degrades to a plain `wait` that reports "not
//!   timed out". Callers must therefore treat the timeout as a liveness
//!   bound, never as the sole wakeup mechanism — which is exactly the
//!   lost-wakeup discipline the loom models verify.
//! - **`sleep` yields under loom.** Backoff sleeps become `yield_now` so
//!   models stay finite.

#![forbid(unsafe_code)]

#[cfg(not(loom))]
mod imp {
    use std::time::Duration;

    /// Mutual exclusion (parking_lot-backed; no poisoning).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(parking_lot::Mutex<T>);

    /// Guard type returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = parking_lot::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub const fn new(value: T) -> Self {
            Mutex(parking_lot::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock()
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            self.0.try_lock()
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    /// Condition variable with the consuming-guard API described in the
    /// crate docs.
    #[derive(Debug, Default)]
    pub struct Condvar(parking_lot::Condvar);

    impl Condvar {
        pub const fn new() -> Self {
            Condvar(parking_lot::Condvar::new())
        }

        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(&mut guard);
            guard
        }

        /// Wait until notified or `timeout` elapses. The boolean is `true`
        /// when the wait timed out. Under loom this never times out.
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let timed_out = self.0.wait_for(&mut guard, timeout).timed_out();
            (guard, timed_out)
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Reader-writer lock (parking_lot-backed; no poisoning).
    #[derive(Debug, Default)]
    pub struct RwLock<T>(parking_lot::RwLock<T>);

    /// Guard returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = parking_lot::RwLockReadGuard<'a, T>;
    /// Guard returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = parking_lot::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        pub const fn new(value: T) -> Self {
            RwLock(parking_lot::RwLock::new(value))
        }

        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read()
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write()
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }
    }

    pub use std::sync::atomic;
    pub use std::sync::Arc;

    pub mod thread {
        use std::io;
        use std::time::Duration;

        pub use std::thread::JoinHandle;

        pub fn spawn<F, T>(f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            std::thread::spawn(f)
        }

        /// Spawn a named OS thread, propagating spawn failure instead of
        /// panicking. Under loom the name is ignored and spawning is
        /// infallible.
        pub fn spawn_named<F, T>(name: &str, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            std::thread::Builder::new().name(name.to_string()).spawn(f)
        }

        pub fn yield_now() {
            std::thread::yield_now();
        }

        /// Sleep for `dur` (a loom model replaces this with a yield).
        pub fn sleep(dur: Duration) {
            std::thread::sleep(dur);
        }
    }

    /// Run `f` once. The loom build replaces this with `loom::model`, which
    /// re-runs `f` under every feasible interleaving; keeping the same entry
    /// point lets a loom test double as a plain smoke test.
    pub fn model<F: Fn() + Sync + Send + 'static>(f: F) {
        f();
    }
}

#[cfg(loom)]
mod imp {
    use std::time::Duration;

    /// Mutual exclusion (loom-backed under `--cfg loom`).
    #[derive(Debug, Default)]
    pub struct Mutex<T>(loom::sync::Mutex<T>);

    /// Guard type returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = loom::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Mutex(loom::sync::Mutex::new(value))
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.0.lock().expect("loom mutex poisoned")
        }

        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            self.0.try_lock().ok()
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner().expect("loom mutex poisoned")
        }
    }

    /// Condition variable (loom-backed under `--cfg loom`).
    #[derive(Debug, Default)]
    pub struct Condvar(loom::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(loom::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            self.0.wait(guard).expect("loom condvar poisoned")
        }

        /// loom has no time: waits until notified and reports "not timed
        /// out". Models relying on the timeout as their only wakeup path
        /// will (correctly) deadlock and fail the model check.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            _timeout: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            (self.0.wait(guard).expect("loom condvar poisoned"), false)
        }

        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Reader-writer lock (loom-backed under `--cfg loom`).
    #[derive(Debug, Default)]
    pub struct RwLock<T>(loom::sync::RwLock<T>);

    /// Guard returned by [`RwLock::read`].
    pub type RwLockReadGuard<'a, T> = loom::sync::RwLockReadGuard<'a, T>;
    /// Guard returned by [`RwLock::write`].
    pub type RwLockWriteGuard<'a, T> = loom::sync::RwLockWriteGuard<'a, T>;

    impl<T> RwLock<T> {
        pub fn new(value: T) -> Self {
            RwLock(loom::sync::RwLock::new(value))
        }

        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            self.0.read().expect("loom rwlock poisoned")
        }

        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            self.0.write().expect("loom rwlock poisoned")
        }

        pub fn into_inner(self) -> T {
            self.0.into_inner().expect("loom rwlock poisoned")
        }
    }

    pub use loom::sync::atomic;
    pub use loom::sync::Arc;

    pub mod thread {
        use std::io;
        use std::time::Duration;

        pub use loom::thread::JoinHandle;

        pub fn spawn<F, T>(f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            loom::thread::spawn(f)
        }

        /// loom threads are unnamed and spawning never fails.
        pub fn spawn_named<F, T>(_name: &str, f: F) -> io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            Ok(loom::thread::spawn(f))
        }

        pub fn yield_now() {
            loom::thread::yield_now();
        }

        /// Time does not pass in a loom model; sleeping is a scheduling
        /// hint, so it lowers to a yield.
        pub fn sleep(_dur: Duration) {
            loom::thread::yield_now();
        }
    }

    /// Explore every feasible interleaving of `f`.
    pub fn model<F: Fn() + Sync + Send + 'static>(f: F) {
        loom::model(f);
    }
}

pub use imp::{
    atomic, model, thread, Arc, Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn condvar_consuming_wait_roundtrips() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, c) = &*p2;
            *m.lock() = true;
            c.notify_all();
        });
        let (m, c) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let (guard, timed_out) = c.wait_timeout(ready, Duration::from_secs(5));
            ready = guard;
            assert!(!timed_out, "notify lost");
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn wait_timeout_reports_expiry() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let (_g, timed_out) = c.wait_timeout(m.lock(), Duration::from_millis(5));
        assert!(timed_out);
    }

    #[test]
    fn rwlock_and_model_smoke() {
        let l = Arc::new(RwLock::new(0u64));
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
        model(|| {
            let m = Mutex::new(7);
            assert_eq!(*m.lock(), 7);
        });
    }

    #[test]
    fn spawn_named_names_the_thread() {
        let h = thread::spawn_named("sync-probe", || {
            std::thread::current().name().map(str::to_string)
        })
        .unwrap();
        assert_eq!(h.join().unwrap().as_deref(), Some("sync-probe"));
    }
}
