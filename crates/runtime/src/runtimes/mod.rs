//! The embedded serving runtimes and the paper's two-method interface.
//!
//! §3.2 of the paper: "Crayfish expects libraries to provide the
//! implementation of two methods: `load`, which specifies how the
//! pre-trained model is to be loaded into memory, and `apply`, which obtains
//! a prediction, given a CrayfishDataBatch object and a model."
//! [`EmbeddedRuntime::load_graph`] (plus its `load_bytes` convenience) and
//! [`LoadedModel::apply`] are that interface.

pub mod dl4j;
pub mod onnx;
pub mod saved_model;
pub mod torch;

pub use dl4j::Dl4jRuntime;
pub use onnx::OnnxRuntime;
pub use saved_model::SavedModelRuntime;
pub use torch::TorchRuntime;

use serde::{Deserialize, Serialize};

use crayfish_models::{formats, ModelFormat};
use crayfish_tensor::{NnGraph, Tensor};

use crate::device::Device;
use crate::error::RuntimeError;
use crate::exec::{FusedExec, GpuExec, UnfusedExec};
use crate::Result;

/// A model loaded by an [`EmbeddedRuntime`], ready to score batches.
///
/// `apply` takes `&mut self` because runtimes keep scratch arenas; each
/// worker owns its instance, matching the paper's setup where every parallel
/// scoring task loads the model independently.
pub trait LoadedModel: Send {
    /// Runtime name this model was loaded with.
    fn runtime_name(&self) -> &'static str;
    /// Score one batch: input `[batch, ..model input]` → output
    /// `[batch, classes]`.
    fn apply(&mut self, input: &Tensor) -> Result<Tensor>;
}

/// An embedded interoperability library (the paper's `CrayfishModel`
/// provider).
pub trait EmbeddedRuntime: Send + Sync {
    /// Library name as used in configurations ("onnx", "saved_model", "dl4j").
    fn name(&self) -> &'static str;
    /// The serialized format a real deployment of this library consumes.
    fn expected_format(&self) -> ModelFormat;
    /// Load an in-memory graph onto a device.
    fn load_graph(&self, graph: &NnGraph, device: Device) -> Result<Box<dyn LoadedModel>>;
    /// Load a serialized model (any of the four formats) onto a device.
    fn load_bytes(&self, bytes: &[u8], device: Device) -> Result<Box<dyn LoadedModel>> {
        let graph = formats::decode(bytes)?;
        self.load_graph(&graph, device)
    }
}

/// Enumeration of the shipped embedded libraries, for configs and sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EmbeddedLib {
    /// DeepLearning4j analog.
    Dl4j,
    /// ONNX Runtime analog.
    Onnx,
    /// TensorFlow SavedModel analog.
    SavedModel,
}

impl EmbeddedLib {
    /// All embedded libraries, in the paper's Table 4 order.
    pub const ALL: [EmbeddedLib; 3] = [
        EmbeddedLib::Dl4j,
        EmbeddedLib::Onnx,
        EmbeddedLib::SavedModel,
    ];

    /// Configuration name.
    pub fn name(&self) -> &'static str {
        match self {
            EmbeddedLib::Dl4j => "dl4j",
            EmbeddedLib::Onnx => "onnx",
            EmbeddedLib::SavedModel => "saved_model",
        }
    }

    /// Instantiate the runtime.
    pub fn runtime(&self) -> Box<dyn EmbeddedRuntime> {
        match self {
            EmbeddedLib::Dl4j => Box::new(Dl4jRuntime::new()),
            EmbeddedLib::Onnx => Box::new(OnnxRuntime::new()),
            EmbeddedLib::SavedModel => Box::new(SavedModelRuntime::new()),
        }
    }
}

/// Look up an embedded library by configuration name.
pub fn embedded_by_name(name: &str) -> Result<EmbeddedLib> {
    EmbeddedLib::ALL
        .into_iter()
        .find(|l| l.name() == name)
        .ok_or_else(|| RuntimeError::Unsupported(format!("unknown embedded library: {name}")))
}

/// [`LoadedModel`] backed by the fused executor.
pub(crate) struct FusedModel {
    pub(crate) name: &'static str,
    pub(crate) exec: FusedExec,
}

impl LoadedModel for FusedModel {
    fn runtime_name(&self) -> &'static str {
        self.name
    }
    fn apply(&mut self, input: &Tensor) -> Result<Tensor> {
        self.exec.run(input)
    }
}

/// [`LoadedModel`] backed by the direct executor.
pub(crate) struct UnfusedModel {
    pub(crate) name: &'static str,
    pub(crate) exec: UnfusedExec,
}

impl LoadedModel for UnfusedModel {
    fn runtime_name(&self) -> &'static str {
        self.name
    }
    fn apply(&mut self, input: &Tensor) -> Result<Tensor> {
        self.exec.run(input)
    }
}

/// [`LoadedModel`] backed by the simulated GPU.
pub(crate) struct GpuModel {
    pub(crate) name: &'static str,
    pub(crate) exec: GpuExec,
}

impl LoadedModel for GpuModel {
    fn runtime_name(&self) -> &'static str {
        self.name
    }
    fn apply(&mut self, input: &Tensor) -> Result<Tensor> {
        self.exec.run(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;

    #[test]
    fn lookup_by_name() {
        for lib in EmbeddedLib::ALL {
            assert_eq!(embedded_by_name(lib.name()).unwrap(), lib);
        }
        assert!(embedded_by_name("tensorrt").is_err());
    }

    #[test]
    fn all_runtimes_load_and_apply() {
        let g = tiny::tiny_cnn(5);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, 0.0, 1.0);
        for lib in EmbeddedLib::ALL {
            let rt = lib.runtime();
            assert_eq!(rt.name(), lib.name());
            let mut model = rt.load_graph(&g, Device::Cpu).unwrap();
            let out = model.apply(&input).unwrap();
            assert_eq!(out.shape().dims(), &[2, 4], "{}", lib.name());
            assert_eq!(model.runtime_name(), lib.name());
        }
    }

    #[test]
    fn runtimes_agree_numerically_on_cpu() {
        let g = tiny::tiny_cnn(5);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 2, -1.0, 1.0);
        let mut outputs = Vec::new();
        for lib in EmbeddedLib::ALL {
            let mut model = lib.runtime().load_graph(&g, Device::Cpu).unwrap();
            outputs.push(model.apply(&input).unwrap());
        }
        for pair in outputs.windows(2) {
            assert!(pair[0].max_abs_diff(&pair[1]).unwrap() < 1e-4);
        }
    }

    #[test]
    fn load_bytes_roundtrips_through_each_library_format() {
        let g = tiny::tiny_mlp(5);
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        for lib in EmbeddedLib::ALL {
            let rt = lib.runtime();
            let bytes = formats::encode(&g, rt.expected_format()).unwrap();
            let mut model = rt.load_bytes(&bytes, Device::Cpu).unwrap();
            let out = model.apply(&input).unwrap();
            assert_eq!(out.shape().dims(), &[1, 4]);
        }
    }

    #[test]
    fn runtimes_agree_at_reduced_precision() {
        use crate::precision::Precision;
        let g = tiny::tiny_cnn(5);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 2, -1.0, 1.0);
        let mut oracle = OnnxRuntime::new().load_graph(&g, Device::Cpu).unwrap();
        let f32_out = oracle.apply(&input).unwrap();
        for precision in [Precision::Int8, Precision::F16] {
            let mut fused = OnnxRuntime::with_precision(precision)
                .load_graph(&g, Device::Cpu)
                .unwrap();
            let mut unfused = SavedModelRuntime::with_precision(precision)
                .load_graph(&g, Device::Cpu)
                .unwrap();
            let a = fused.apply(&input).unwrap();
            let b = unfused.apply(&input).unwrap();
            // The two executors quantize different weights (fused folds BN
            // first) but both must stay near the f32 oracle.
            assert!(a.max_abs_diff(&f32_out).unwrap() < 0.05, "{precision:?}");
            assert!(b.max_abs_diff(&f32_out).unwrap() < 0.05, "{precision:?}");
        }
    }

    #[test]
    fn gpu_device_loads_everywhere() {
        let g = tiny::tiny_mlp(5);
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        for lib in EmbeddedLib::ALL {
            let mut model = lib.runtime().load_graph(&g, Device::gpu()).unwrap();
            let out = model.apply(&input).unwrap();
            assert_eq!(out.shape().dims(), &[1, 4]);
        }
    }
}
