//! Error type for tensor and graph operations.

use std::fmt;

use crate::shape::Shape;

/// Errors produced by tensor construction, kernels, and graph execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorError {
    /// The number of elements does not match the requested shape.
    LengthMismatch {
        /// Elements provided.
        len: usize,
        /// Shape requested.
        shape: Shape,
    },
    /// Two shapes that must agree do not.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Left/expected shape.
        expected: Shape,
        /// Right/actual shape.
        actual: Shape,
    },
    /// A tensor had the wrong rank for an operation.
    RankMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Required rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// Graph validation or execution failure.
    Graph(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::LengthMismatch { len, shape } => {
                write!(f, "{len} elements cannot fill shape {shape}")
            }
            TensorError::ShapeMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: shape mismatch, expected {expected}, got {actual}"),
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => write!(
                f,
                "{op}: rank mismatch, expected rank {expected}, got {actual}"
            ),
            TensorError::Graph(msg) => write!(f, "graph error: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TensorError::LengthMismatch {
            len: 3,
            shape: Shape::new(vec![2, 2]),
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains("[2, 2]"), "{msg}");
    }
}
