//! # crayfish-sparkss
//!
//! A micro-batch stream processing engine in the style of Spark Structured
//! Streaming (§3.4.1 of the paper), implementing the Crayfish
//! `DataProcessor` interface.
//!
//! Mechanisms reproduced:
//!
//! * **Micro-batch triggers**: a driver loop repeatedly (a) resolves the
//!   available input offsets, (b) pays the calibrated per-batch planning/
//!   scheduling cost (`microbatch_schedule` in
//!   [`crayfish_sim::calibration`]), (c) splits the batch into `mp` tasks
//!   executed by an executor pool, (d) waits for the barrier, and
//!   (e) commits. The paper sets the trigger interval to the minimum, so a
//!   new batch starts as soon as the previous one finishes.
//! * **Throughput over latency**: per-event overheads amortise across the
//!   whole micro-batch (the paper's Table 5 Spark SS throughput win), while
//!   every event waits for batch accumulation + scheduling (its Fig. 10
//!   latency loss).
//! * **External-server saturation**: the `mp` tasks of one micro-batch
//!   issue their blocking scoring calls concurrently, which is what keeps
//!   an external server busy (§5.3.3, §7.1 "Micro-batching Support").

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};

use crayfish_broker::{PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::chaos::{supervise, RetryPolicy, SupervisorConfig, WorkerExit};
use crayfish_core::scoring::score_payload_obs;
use crayfish_core::{CoreError, DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_sim::{calibration, precise_sleep, Cost, OverheadModel};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct SparkOptions {
    /// Extra delay between micro-batches. The paper uses the minimum
    /// (zero): trigger as soon as the previous batch commits.
    pub trigger_interval: Duration,
    /// Concurrent task slots of the executor. The paper's executor has 60
    /// cores (Table 3) regardless of `mp`, which is why Spark SS saturates
    /// external servers even at low `mp` and why its throughput barely
    /// moves when scaling `mp` (§5.3.3, Fig. 11).
    pub executor_cores: usize,
    /// Cap on records pulled into one micro-batch (Spark's
    /// `maxOffsetsPerTrigger`).
    pub max_records_per_batch: usize,
    /// Calibrated overheads (driver scheduling cost).
    pub overheads: OverheadModel,
    /// Calibrated per-record framework cost inside a task, charged as one
    /// aggregate sleep per chunk — Spark's whole-stage codegen amortises it
    /// (see [`calibration::RECORD_OVERHEAD_SPARK`]).
    pub record_overhead: Cost,
}

impl Default for SparkOptions {
    fn default() -> Self {
        SparkOptions {
            trigger_interval: Duration::ZERO,
            executor_cores: 24,
            max_records_per_batch: 10_000,
            overheads: OverheadModel::calibrated(),
            record_overhead: calibration::RECORD_OVERHEAD_SPARK,
        }
    }
}

/// The Spark-Structured-Streaming-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SparkProcessor {
    /// Engine options.
    pub options: SparkOptions,
}

impl SparkProcessor {
    /// Engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: SparkOptions) -> Self {
        SparkProcessor { options }
    }
}

/// One task of a micro-batch: a chunk of records to score and write.
struct Task {
    records: Vec<Bytes>,
    done: Sender<usize>,
}

struct SparkJob {
    stop: Arc<AtomicBool>,
    driver: Option<JoinHandle<()>>,
    executors: Vec<JoinHandle<()>>,
}

impl RunningJob for SparkJob {
    fn stop(mut self: Box<Self>) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.driver.take() {
            let _ = h.join();
        }
        // Driver exit drops the task channel; executors drain and stop.
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

impl DataProcessor for SparkProcessor {
    fn name(&self) -> &'static str {
        "sparkss"
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        ctx.validate()?;
        let stop = Arc::new(AtomicBool::new(false));
        let options = self.options;
        let partitions = ctx.broker.partitions(&ctx.input_topic)?;

        // Executor pool: `executor_cores` task slots run concurrently, each
        // owning a scorer and a producer (Spark tasks write to the sink
        // themselves). Slot count is a property of the executor, not of
        // `mp` — matching the paper's deployment.
        let slots = options.executor_cores.max(1);
        let (task_tx, task_rx) = unbounded::<Task>();
        let mut executors = Vec::with_capacity(slots);
        for i in 0..slots {
            let rx: Receiver<Task> = task_rx.clone();
            let mut scorer = ctx.scorer.build()?;
            let mut producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let obs = ctx.obs().clone();
            executors.push(
                std::thread::Builder::new()
                    .name(format!("spark-executor-{i}"))
                    .spawn(move || {
                        let batches_scored = obs.counter("batches_scored");
                        let records_out = obs.counter("records_out");
                        let score_errors = obs.counter("score_errors");
                        let retries = obs.counter("retries");
                        // Tasks are past the driver's commit scope, so
                        // transient scoring failures retry in place rather
                        // than dropping the record.
                        let retry = RetryPolicy::patient();
                        // Runs until the driver drops the channel.
                        while let Ok(task) = rx.recv() {
                            // Vectorised framework cost for the whole chunk —
                            // one `ingest` span covers the whole amortised
                            // sleep (Spark charges it per chunk, not per
                            // record).
                            let span = obs.timer(crayfish_core::Stage::Ingest);
                            let bytes: usize = task.records.iter().map(|r| r.len()).sum();
                            let per_chunk: Duration = options
                                .record_overhead
                                .duration(bytes / task.records.len().max(1))
                                .mul_f64(task.records.len() as f64);
                            precise_sleep(per_chunk);
                            span.stop();
                            let mut written = 0usize;
                            for rec in &task.records {
                                let outcome = retry.run(
                                    CoreError::is_transient,
                                    |_| retries.inc(),
                                    || score_payload_obs(scorer.as_mut(), rec, &obs),
                                );
                                match outcome {
                                    Ok(out) => {
                                        batches_scored.inc();
                                        let span = obs.timer(crayfish_core::Stage::Emit);
                                        let sent = producer.send(None, out);
                                        span.stop();
                                        if sent.is_ok() {
                                            written += 1;
                                            records_out.inc();
                                        }
                                    }
                                    Err(_) => score_errors.inc(),
                                }
                            }
                            producer.flush();
                            let _ = task.done.send(written);
                        }
                    })
                    .map_err(|e| CoreError::Config(format!("spawn spark executor: {e}")))?,
            );
        }
        drop(task_rx);

        // Driver loop. Supervised: a transient fabric failure or an
        // injected crash ends the incarnation before the batch commits; the
        // restarted driver rebuilds its consumer at the committed offsets
        // and replans the batch (at-least-once, duplicates bounded by one
        // uncommitted micro-batch). The executor pool survives restarts —
        // the task channel lives inside the driver closure.
        let source = PartitionConsumer::new(
            ctx.broker.clone(),
            &ctx.input_topic,
            &ctx.group,
            (0..partitions).collect(),
        )?;
        let mut slot = Some(source);
        let flag = stop.clone();
        let obs = ctx.obs().clone();
        let chaos = ctx.chaos().clone();
        let broker = ctx.broker.clone();
        let input_topic = ctx.input_topic.clone();
        let group = ctx.group.clone();
        let driver = supervise(
            "spark-driver".into(),
            stop.clone(),
            obs.clone(),
            chaos.clone(),
            SupervisorConfig::default(),
            move |_incarnation| {
                let mut source = match slot.take() {
                    Some(s) => s,
                    None => match PartitionConsumer::new(
                        broker.clone(),
                        &input_topic,
                        &group,
                        (0..partitions).collect(),
                    ) {
                        Ok(s) => s,
                        Err(e) if e.is_transient() => {
                            return WorkerExit::Failed(format!("rebuild driver source: {e}"))
                        }
                        Err(_) => return WorkerExit::Stopped,
                    },
                };
                source.max_poll_records = options.max_records_per_batch;
                let schedule_ns = obs.histogram_ns("spark_schedule");
                while !flag.load(Ordering::SeqCst) {
                    if chaos.take_worker_crash() {
                        return WorkerExit::Failed("injected driver crash".into());
                    }
                    // (a) Resolve available offsets / pull the micro-batch.
                    let records = match source.poll(Duration::from_millis(50)) {
                        Ok(r) => r,
                        Err(e) if e.is_transient() => {
                            return WorkerExit::Failed(format!("poll: {e}"))
                        }
                        Err(_) => return WorkerExit::Stopped,
                    };
                    if records.is_empty() {
                        continue;
                    }
                    // (b) Planning and task scheduling for this batch.
                    let sched = schedule_ns.start();
                    options.overheads.microbatch_schedule.spend(0);
                    schedule_ns.observe_since(sched);
                    // (c) One task per source partition with data, as Spark
                    // plans Kafka micro-batches.
                    let mut chunks: Vec<(u32, Vec<Bytes>)> = Vec::new();
                    for rec in records {
                        match chunks.iter_mut().find(|(p, _)| *p == rec.partition) {
                            Some((_, c)) => c.push(rec.value),
                            None => chunks.push((rec.partition, vec![rec.value])),
                        }
                    }
                    let chunks: Vec<Vec<Bytes>> = chunks.into_iter().map(|(_, c)| c).collect();
                    let (done_tx, done_rx) = unbounded();
                    let mut dispatched = 0usize;
                    for records in chunks.into_iter().filter(|c| !c.is_empty()) {
                        dispatched += 1;
                        if task_tx
                            .send(Task {
                                records,
                                done: done_tx.clone(),
                            })
                            .is_err()
                        {
                            return WorkerExit::Stopped;
                        }
                    }
                    drop(done_tx);
                    // (d) Barrier: the batch commits only when every task
                    // has finished.
                    for _ in 0..dispatched {
                        if done_rx.recv().is_err() {
                            return WorkerExit::Stopped;
                        }
                    }
                    // (e) Commit and trigger the next batch.
                    source.commit();
                    if !options.trigger_interval.is_zero() {
                        crayfish_sim::precise_sleep(options.trigger_interval);
                    }
                }
                WorkerExit::Stopped
            },
        );

        Ok(Box::new(SparkJob {
            stop,
            driver: Some(driver),
            executors,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_broker::Broker;
    use crayfish_core::batch::{CrayfishDataBatch, ScoredBatch};
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::{now_millis_f64, NetworkModel};
    use crayfish_tensor::Tensor;

    fn make_ctx(mp: usize) -> ProcessorContext {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 8).unwrap();
        broker.create_topic("out", 8).unwrap();
        ProcessorContext {
            broker,
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp,
        }
    }

    fn feed(broker: &Broker, n: u64) {
        for id in 0..n {
            let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
            let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
                .encode()
                .unwrap();
            broker
                .append("in", (id % 8) as u32, vec![(payload, 0.0)])
                .unwrap();
        }
    }

    fn wait_for(broker: &Broker, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while broker.total_records("out").unwrap() < n && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Fast options for tests: no modelled driver cost.
    fn quick() -> SparkProcessor {
        SparkProcessor::with_options(SparkOptions {
            overheads: OverheadModel::zero(),
            record_overhead: Cost::ZERO,
            ..Default::default()
        })
    }

    #[test]
    fn micro_batches_score_everything_exactly_once() {
        let ctx = make_ctx(4);
        let broker = ctx.broker.clone();
        let job = quick().start(ctx).unwrap();
        feed(&broker, 100);
        wait_for(&broker, 100);
        let mut ids = Vec::new();
        for p in 0..8u32 {
            for r in broker.read("out", p, 0, 10_000, usize::MAX).unwrap() {
                ids.push(ScoredBatch::decode(&r.value).unwrap().id);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100);
        job.stop();
    }

    #[test]
    fn driver_cost_adds_latency_floor() {
        // With the calibrated 10 ms scheduling cost, a single event's
        // end-to-end time through the engine must exceed 10 ms.
        let ctx = make_ctx(1);
        let broker = ctx.broker.clone();
        let job = SparkProcessor::new().start(ctx).unwrap();
        let start = std::time::Instant::now();
        feed(&broker, 1);
        wait_for(&broker, 1);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(ms >= 10.0, "micro-batch completed in {ms} ms");
        job.stop();
    }

    #[test]
    fn commits_offsets_per_batch() {
        let ctx = make_ctx(2);
        let broker = ctx.broker.clone();
        let job = quick().start(ctx).unwrap();
        feed(&broker, 30);
        wait_for(&broker, 30);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(broker.group_lag("sut", "in").unwrap(), 0);
        job.stop();
    }

    #[test]
    fn stop_terminates_driver_and_executors() {
        let ctx = make_ctx(3);
        let broker = ctx.broker.clone();
        let job = quick().start(ctx).unwrap();
        feed(&broker, 10);
        wait_for(&broker, 10);
        job.stop();
        feed(&broker, 10);
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(broker.total_records("out").unwrap(), 10);
    }
}
