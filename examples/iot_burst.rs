//! IoT bursts: how does the pipeline behave when sensors flood in?
//!
//! Reproduces the paper's periodic-burst scenario (§5.1.4) at example
//! scale: a baseline stream with short overload bursts, a latency timeline
//! bucketed per second, and the measured recovery time after each burst.
//!
//! ```sh
//! cargo run --release --example iot_burst
//! ```

use std::time::Duration;

use crayfish::framework::metrics::{bucketize, recovery_time_s};
use crayfish::prelude::*;

fn main() {
    let base = 150.0;
    let burst = 900.0;
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyCnn,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
    );
    spec.workload = Workload::Bursty {
        base,
        burst,
        burst_secs: 2.0,
        between_secs: 4.0,
    };
    spec.duration = Duration::from_secs(14);
    spec.warmup_fraction = 0.0;
    spec.mp = 1;

    println!("IoT burst scenario: {base} ev/s baseline, {burst} ev/s bursts of 2 s every 4 s");
    let result = run_experiment(&FlinkProcessor::new(), &spec).expect("experiment failed");

    let buckets = bucketize(&result.samples, 1000.0);
    println!("\n  t(s)   events/s   mean latency   max latency");
    for b in &buckets {
        println!(
            "  {:>4.0}   {:>8.0}   {:>9.2} ms   {:>8.2} ms",
            b.start_ms / 1000.0,
            b.throughput_eps,
            b.mean_latency_ms,
            b.max_latency_ms
        );
    }

    // Baseline latency: median of the quiet first seconds.
    let baseline: Vec<f64> = result
        .samples
        .iter()
        .take(100)
        .map(|s| s.latency_ms)
        .collect();
    let baseline = crayfish::framework::metrics::summarize(&baseline).p50;
    // First burst ends 6 s into the cycle pattern (4 s quiet + 2 s burst).
    let t0 = result.samples.first().map(|s| s.end_ms).unwrap_or(0.0);
    let burst_end = result
        .samples
        .iter()
        .map(|s| s.end_ms - t0)
        .find(|&t| t >= 6_000.0)
        .unwrap_or(6_000.0);
    // A 2.5x band over the quiet-period median: sub-millisecond baselines
    // flutter, and "recovered" means back in the quiet regime, not equal to
    // its exact median.
    match recovery_time_s(&buckets, burst_end, baseline, 2.5, 2) {
        Some(rec) => {
            println!("\nrecovered {rec:.1} s after the first burst (baseline p50 {baseline:.2} ms)")
        }
        None => println!("\ndid not recover within the run (baseline p50 {baseline:.2} ms)"),
    }
}
