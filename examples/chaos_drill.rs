//! Chaos drill: crash the fabric on purpose and read the recovery report.
//!
//! Runs one experiment with the full resilience layer on — a replicated
//! 3-node broker cluster, restartable external serving behind the
//! resilient client, idempotent producer, supervised engine workers —
//! while a seeded fault plan injects a broker partition outage, a serving
//! crash/restart, a network-degradation window, a worker crash, a leader
//! kill (forcing per-partition failover), and a partition isolation. The
//! run must finish and the report must show every incident recovered.
//!
//! ```sh
//! cargo run --release --example chaos_drill [seed]
//! ```
//!
//! The same seed always produces the same fault schedule, so a drill that
//! surfaced a bug can be replayed bit-for-bit.

use std::time::Duration;

use crayfish::prelude::*;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let duration = Duration::from_secs(4);
    let kinds = [
        FaultKind::PartitionOutage,
        FaultKind::ServingCrash,
        FaultKind::NetworkDegrade,
        FaultKind::WorkerCrash,
        FaultKind::LeaderKill,
        FaultKind::PartitionIsolate,
    ];

    let obs = ObsHandle::enabled();
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyMlp,
        ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::Cpu,
        },
    );
    spec.workload = Workload::Constant { rate: 200.0 };
    spec.duration = duration;
    spec.mp = 2;
    spec.obs = obs.clone();
    spec.chaos = ChaosHandle::enabled();
    spec.chaos_plan = FaultPlan::generate(seed, duration.mul_f64(0.8), &kinds);
    // Node-level faults need somewhere to fail over to.
    spec.cluster = ClusterConfig::replicated();

    println!(
        "chaos drill: seed {seed}, {} fault windows over {duration:?}",
        kinds.len()
    );
    for w in &spec.chaos_plan.windows {
        println!(
            "  {:17} at {:>5} ms for {:>4} ms",
            w.kind.name(),
            w.start.as_millis(),
            w.duration.as_millis()
        );
    }
    println!();

    let result = run_experiment(&FlinkProcessor::new(), &spec).expect("drill failed");
    let report = result.recovery.expect("chaos run carries a report");

    println!("{report}");
    println!(
        "traffic: {} produced, {} scored, {:.0} ev/s, p50 {:.2} ms, p99 {:.2} ms",
        result.produced,
        result.consumed,
        result.throughput_eps,
        result.latency.p50,
        result.latency.p99
    );
    println!(
        "resilience: {} retries, {} worker restart(s), {} duplicate re-send(s) dropped by broker dedup",
        obs.counter("retries").get(),
        obs.counter("worker_restarts").get(),
        report.duplicates_dropped
    );
    if report.unrecovered > 0 {
        println!(
            "!! {} incident(s) never recovered — investigate",
            report.unrecovered
        );
        std::process::exit(1);
    }
}
