//! The batching producer client.
//!
//! Reproduces the behaviour of Kafka's producer that matters for the
//! paper's measurements: `send` never blocks on the network; a dedicated
//! sender thread ships *everything that accumulated while the previous
//! request was in flight* as one request, paying one modelled network hop
//! per request. Under load this batches aggressively (high throughput); at
//! low rates each record ships almost immediately (low latency) — exactly
//! the adaptive behaviour of `linger.ms = 0` Kafka.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use bytes::Bytes;
use crayfish_sync::thread::{self, JoinHandle};
use crayfish_sync::{Arc, Condvar, Mutex};

use crayfish_chaos::RetryPolicy;
use crayfish_sim::{now_millis_f64, precise_sleep};

use crate::api::BrokerApi;
use crate::error::BrokerError;
use crate::Result;

/// Producer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ProducerConfig {
    /// Extra time the sender waits after waking to accumulate a batch
    /// (Kafka's `linger.ms`). Zero ships as fast as the network allows.
    pub linger: Duration,
    /// Maximum records per request.
    pub max_batch_records: usize,
    /// Maximum request payload (the paper raises Kafka's to 50 MB).
    pub max_request_bytes: usize,
    /// Retry schedule for transient append failures (partition outages,
    /// lost acks). Sequence-number dedup on the broker keeps the retries
    /// at-least-once *without duplicates*; once the budget is exhausted the
    /// batch is dropped and counted in `producer_records_dropped`.
    pub retry: RetryPolicy,
}

impl Default for ProducerConfig {
    fn default() -> Self {
        ProducerConfig {
            linger: Duration::ZERO,
            max_batch_records: 10_000,
            max_request_bytes: 50 * 1024 * 1024,
            retry: RetryPolicy::default(),
        }
    }
}

/// Source of unique producer ids for the broker's idempotence windows.
static NEXT_PRODUCER_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Debug, Default)]
struct AccState {
    queue: Vec<(u32, Bytes, f64)>,
    queued_bytes: usize,
    in_flight: bool,
    closed: bool,
}

#[derive(Debug)]
struct Inner {
    broker: Arc<dyn BrokerApi>,
    topic: String,
    partitions: u32,
    config: ProducerConfig,
    producer_id: u64,
    state: Mutex<AccState>,
    wake: Condvar,
    drained: Condvar,
}

/// A producer bound to one topic.
#[derive(Debug)]
pub struct Producer {
    inner: Arc<Inner>,
    sender: Option<JoinHandle<()>>,
    rr: u32,
}

impl Producer {
    /// Create a producer for `topic`, spawning its sender thread. The
    /// broker may be in-process or remote ([`crate::rpc::RemoteBroker`]);
    /// the batching, retry, and dedup behaviour is identical either way.
    pub fn new(
        broker: Arc<dyn BrokerApi>,
        topic: &str,
        config: ProducerConfig,
    ) -> Result<Producer> {
        let partitions = broker.partitions(topic)?;
        let inner = Arc::new(Inner {
            broker,
            topic: topic.to_string(),
            partitions,
            config,
            producer_id: NEXT_PRODUCER_ID.fetch_add(1, Ordering::Relaxed),
            state: Mutex::new(AccState::default()),
            wake: Condvar::new(),
            drained: Condvar::new(),
        });
        let sender_inner = inner.clone();
        let sender = thread::spawn_named(&format!("producer-{topic}"), move || {
            sender_loop(&sender_inner)
        })
        .map_err(|e| BrokerError::Fabric(format!("spawn producer sender thread: {e}")))?;
        Ok(Producer {
            inner,
            sender: Some(sender),
            rr: 0,
        })
    }

    /// Queue one record. `partition = None` round-robins across partitions.
    /// The record's produce timestamp is taken now.
    pub fn send(&mut self, partition: Option<u32>, value: Bytes) -> Result<()> {
        let partition = match partition {
            Some(p) if p < self.inner.partitions => p,
            Some(p) => {
                return Err(BrokerError::UnknownPartition {
                    topic: self.inner.topic.clone(),
                    partition: p,
                })
            }
            None => {
                let p = self.rr % self.inner.partitions;
                self.rr = self.rr.wrapping_add(1);
                p
            }
        };
        let mut state = self.inner.state.lock();
        if state.closed {
            return Err(BrokerError::ProducerClosed);
        }
        state.queued_bytes += value.len();
        state.queue.push((partition, value, now_millis_f64()));
        self.inner.wake.notify_one();
        Ok(())
    }

    /// Block until everything queued so far has been appended to the broker.
    pub fn flush(&self) {
        let mut state = self.inner.state.lock();
        while !state.queue.is_empty() || state.in_flight {
            state = self.inner.drained.wait(state);
        }
    }

    /// Flush and shut the sender thread down. Called automatically on drop
    /// (where a failure is ignored); call explicitly to observe a sender
    /// thread that died with queued records.
    pub fn close(&mut self) -> Result<()> {
        {
            let mut state = self.inner.state.lock();
            if state.closed {
                return Ok(());
            }
            state.closed = true;
            self.inner.wake.notify_all();
        }
        if let Some(h) = self.sender.take() {
            h.join()
                .map_err(|_| BrokerError::Fabric("producer sender thread panicked".into()))?;
        }
        Ok(())
    }
}

impl Drop for Producer {
    fn drop(&mut self) {
        let _ = self.close();
    }
}

fn sender_loop(inner: &Inner) {
    let obs = inner.broker.obs().clone();
    let requests = obs.counter("broker_append_requests");
    let retries = obs.counter("retries");
    let append_errors = obs.counter_with("errors", "stage", "broker_append");
    let records_dropped = obs.counter("producer_records_dropped");
    // Per-partition sequence numbers for the broker's idempotence window.
    let mut next_seqs: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    loop {
        let batch = {
            let mut state = inner.state.lock();
            while state.queue.is_empty() && !state.closed {
                state = inner.wake.wait(state);
            }
            if state.queue.is_empty() && state.closed {
                return;
            }
            if !inner.config.linger.is_zero() {
                // Release the lock while lingering so senders can continue
                // to accumulate.
                drop(state);
                precise_sleep(inner.config.linger);
                state = inner.state.lock();
            }
            let take = state.queue.len().min(inner.config.max_batch_records).max(1);
            // Respect the request size cap (always ship at least one).
            let mut bytes = 0usize;
            let mut n = 0usize;
            for (_, v, _) in state.queue.iter().take(take) {
                if n > 0 && bytes + v.len() > inner.config.max_request_bytes {
                    break;
                }
                bytes += v.len();
                n += 1;
            }
            let batch: Vec<(u32, Bytes, f64)> = state.queue.drain(..n).collect();
            state.queued_bytes = state.queued_bytes.saturating_sub(bytes);
            state.in_flight = true;
            batch
        };

        // One request on the wire: client → broker hop for the whole batch.
        // The span covers the modelled transfer plus the log append — the
        // full client-side cost of the produce request.
        let span = obs.timer(crayfish_obs::Stage::BrokerAppend);
        requests.inc();
        let total_bytes: usize = batch.iter().map(|(_, v, _)| v.len()).sum();
        inner.broker.network().transfer(total_bytes);

        // Group by partition, preserving per-partition order.
        let mut groups: Vec<(u32, Vec<(Bytes, f64)>)> = Vec::new();
        for (p, v, ts) in batch {
            match groups.iter_mut().find(|(gp, _)| *gp == p) {
                Some((_, g)) => g.push((v, ts)),
                None => groups.push((p, vec![(v, ts)])),
            }
        }
        for (p, values) in groups {
            let first_seq = next_seqs.get(&p).copied().unwrap_or(0);
            let n = values.len() as u64;
            // Transient failures (outage windows, lost acks) are retried
            // with backoff; the sequence numbers let the broker drop any
            // records a lost-ack attempt already appended. Terminal
            // failures (the topic can be deleted mid-run in failure tests)
            // drop the batch like a real producer whose delivery fails
            // terminally.
            let outcome = inner.config.retry.run(
                BrokerError::is_transient,
                |_| retries.inc(),
                || {
                    inner.broker.append_dedup(
                        &inner.topic,
                        p,
                        inner.producer_id,
                        first_seq,
                        values.clone(),
                    )
                },
            );
            if outcome.is_err() {
                append_errors.inc();
                records_dropped.add(n);
            }
            // The sequence window advances even over dropped batches so a
            // later batch is never mistaken for a retry of this one.
            next_seqs.insert(p, first_seq + n);
        }
        span.stop();

        let mut state = inner.state.lock();
        state.in_flight = false;
        inner.drained.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::Broker;
    use crayfish_sim::NetworkModel;

    fn setup(partitions: u32) -> (Arc<Broker>, Producer) {
        let b = Broker::new(NetworkModel::zero());
        b.create_topic("t", partitions).unwrap();
        let p = Producer::new(b.clone(), "t", ProducerConfig::default()).unwrap();
        (b, p)
    }

    #[test]
    fn sends_reach_the_log() {
        let (b, mut p) = setup(1);
        for i in 0..10u8 {
            p.send(Some(0), Bytes::from(vec![i])).unwrap();
        }
        p.flush();
        assert_eq!(b.end_offset("t", 0).unwrap(), 10);
        let recs = b.read("t", 0, 0, 100, usize::MAX).unwrap();
        assert_eq!(recs[3].value[0], 3);
    }

    #[test]
    fn round_robin_spreads_partitions() {
        let (b, mut p) = setup(4);
        for _ in 0..8 {
            p.send(None, Bytes::from_static(b"x")).unwrap();
        }
        p.flush();
        for part in 0..4 {
            assert_eq!(b.end_offset("t", part).unwrap(), 2, "partition {part}");
        }
    }

    #[test]
    fn per_partition_order_is_preserved() {
        let (b, mut p) = setup(2);
        for i in 0..100u8 {
            p.send(Some((i % 2) as u32), Bytes::from(vec![i])).unwrap();
        }
        p.flush();
        let recs = b.read("t", 0, 0, 100, usize::MAX).unwrap();
        let vals: Vec<u8> = recs.iter().map(|r| r.value[0]).collect();
        let expect: Vec<u8> = (0..100).filter(|i| i % 2 == 0).collect();
        assert_eq!(vals, expect);
    }

    #[test]
    fn send_after_close_fails() {
        let (_b, mut p) = setup(1);
        p.close().unwrap();
        assert!(matches!(
            p.send(Some(0), Bytes::from_static(b"x")),
            Err(BrokerError::ProducerClosed)
        ));
    }

    #[test]
    fn rejects_out_of_range_partition() {
        let (_b, mut p) = setup(2);
        assert!(p.send(Some(7), Bytes::from_static(b"x")).is_err());
    }

    #[test]
    fn network_cost_is_paid_per_request_not_per_record() {
        // With a 2 ms/request network, 100 records must ship in far less
        // than 100 * 2 ms thanks to in-flight batching.
        let b = Broker::new(NetworkModel {
            base_latency_s: 0.002,
            bandwidth_bytes_per_s: f64::INFINITY,
        });
        b.create_topic("t", 1).unwrap();
        let mut p = Producer::new(b.clone(), "t", ProducerConfig::default()).unwrap();
        let sw = crayfish_sim::Stopwatch::start();
        for _ in 0..100 {
            p.send(Some(0), Bytes::from_static(b"x")).unwrap();
        }
        p.flush();
        let ms = sw.elapsed_millis();
        assert_eq!(b.end_offset("t", 0).unwrap(), 100);
        assert!(ms < 100.0, "took {ms} ms; batching broken");
        assert!(ms >= 2.0, "took {ms} ms; network model not applied");
    }

    #[test]
    fn drop_flushes_pending_records() {
        let b = Broker::new(NetworkModel::zero());
        b.create_topic("t", 1).unwrap();
        {
            let mut p = Producer::new(b.clone(), "t", ProducerConfig::default()).unwrap();
            for _ in 0..5 {
                p.send(Some(0), Bytes::from_static(b"x")).unwrap();
            }
        } // dropped here
        assert_eq!(b.end_offset("t", 0).unwrap(), 5);
    }

    #[test]
    fn surviving_topic_deletion() {
        let (b, mut p) = setup(1);
        p.send(Some(0), Bytes::from_static(b"x")).unwrap();
        p.flush();
        b.delete_topic("t").unwrap();
        // Further sends are accepted and silently dropped at delivery, like
        // a real producer with terminal delivery errors.
        p.send(Some(0), Bytes::from_static(b"y")).unwrap();
        p.flush();
    }

    fn chaos_setup() -> (Arc<Broker>, Producer, crayfish_chaos::ChaosHandle) {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let b = Broker::with_parts(
            NetworkModel::zero(),
            crayfish_obs::ObsHandle::disabled(),
            chaos.clone(),
        );
        b.create_topic("t", 1).unwrap();
        let p = Producer::new(
            b.clone(),
            "t",
            ProducerConfig {
                retry: RetryPolicy::patient(),
                ..Default::default()
            },
        )
        .unwrap();
        (b, p, chaos)
    }

    #[test]
    fn retries_ride_out_an_outage_window() {
        let (b, mut p, chaos) = chaos_setup();
        chaos.set_topic_outage("t", true);
        p.send(Some(0), Bytes::from_static(b"x")).unwrap();
        let c2 = chaos.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            c2.set_topic_outage("t", false);
        });
        p.flush();
        assert_eq!(b.end_offset("t", 0).unwrap(), 1, "record lost to outage");
    }

    #[test]
    fn lost_acks_do_not_duplicate_records() {
        let (b, mut p, chaos) = chaos_setup();
        // Every second append loses its ack: the records land but the
        // producer retries, and the broker's sequence window must swallow
        // every resend.
        chaos.set_net_degrade(Duration::ZERO, 0, 2);
        for i in 0..6u8 {
            p.send(Some(0), Bytes::from(vec![i])).unwrap();
            p.flush();
        }
        chaos.clear_net_degrade();
        assert_eq!(b.end_offset("t", 0).unwrap(), 6, "dedup window broken");
        assert!(chaos.duplicates_dropped() > 0, "no ack was ever lost");
    }
}
