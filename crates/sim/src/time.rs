//! Precise sleeping and wall-clock helpers.
//!
//! Modelled costs in Crayfish are often in the tens-of-microseconds range,
//! far below the granularity an OS sleep can honour. [`precise_sleep`]
//! combines a coarse [`std::thread::sleep`] for the bulk of the wait with a
//! spin loop for the final stretch so that modelled delays land within a few
//! microseconds of the target.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Below this threshold the entire wait is spun; above it we sleep for
/// `remaining - SPIN_WINDOW` and spin the rest.
const SPIN_WINDOW: Duration = Duration::from_micros(200);

/// At or above this duration the wait is a single OS sleep with no spin at
/// all. Modelled costs are mostly in this range; spinning them would burn
/// CPU that the benchmark's *real* work needs (the evaluation host may have
/// a single core), and their calibration tolerance (tens of microseconds)
/// comfortably absorbs OS sleep overshoot.
const PURE_SLEEP_THRESHOLD: Duration = Duration::from_micros(100);

/// Busy-wait for exactly `dur`, consuming the CPU the whole time. This is
/// the primitive behind [`crate::Cost::spend_spinning`]: it models foreign
/// work that is genuinely CPU-bound (JNI marshalling, JVM allocation/GC),
/// which must contend for cores with the benchmark's real work instead of
/// overlapping with it the way off-CPU waits do.
pub fn spin_exact(dur: Duration) {
    if dur.is_zero() {
        return;
    }
    let deadline = Instant::now() + dur;
    while Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Sleep for `dur` with microsecond-level precision for short waits.
///
/// A zero duration returns immediately. Waits of at least 100 µs are plain
/// OS sleeps (zero CPU burn, slight overshoot); shorter waits spin for the
/// final stretch to land within a few microseconds of the target.
pub fn precise_sleep(dur: Duration) {
    if dur.is_zero() {
        return;
    }
    if dur >= PURE_SLEEP_THRESHOLD {
        std::thread::sleep(dur);
        return;
    }
    let deadline = Instant::now() + dur;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let remaining = deadline - now;
        if remaining > SPIN_WINDOW {
            std::thread::sleep(remaining - SPIN_WINDOW);
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Spend `dur` as modelled work. Alias of [`precise_sleep`] used at call
/// sites where the intent is "this represents computation we are modelling"
/// rather than "wait for an event".
pub fn spend(dur: Duration) {
    precise_sleep(dur);
}

/// The workspace's monotonic clock authority.
///
/// Pipeline crates are forbidden (by `crayfish-lint`'s clock-authority rule)
/// from calling `Instant::now()` directly: every monotonic reading funnels
/// through here so that deterministic-replay work only ever has one call
/// site to virtualise, and so chaos replays cannot accidentally mix clock
/// sources.
pub fn now() -> Instant {
    Instant::now()
}

/// Current UNIX time in milliseconds as a float (sub-millisecond precision).
///
/// Crayfish timestamps (batch creation time, broker `LogAppendTime`) use this
/// representation because the paper reports latencies in milliseconds.
pub fn now_millis_f64() -> f64 {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("system clock before UNIX epoch");
    now.as_secs_f64() * 1e3
}

/// A simple stopwatch around [`Instant`].
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start a new stopwatch.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in milliseconds as a float.
    pub fn elapsed_millis(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }

    /// Reset the stopwatch to now.
    pub fn reset(&mut self) {
        self.start = Instant::now();
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precise_sleep_zero_returns_immediately() {
        let sw = Stopwatch::start();
        precise_sleep(Duration::ZERO);
        assert!(sw.elapsed() < Duration::from_millis(1));
    }

    #[test]
    fn precise_sleep_hits_target_within_tolerance() {
        for target_us in [50u64, 300, 1500] {
            let target = Duration::from_micros(target_us);
            let sw = Stopwatch::start();
            precise_sleep(target);
            let elapsed = sw.elapsed();
            assert!(elapsed >= target, "slept {elapsed:?} < target {target:?}");
            // Generous upper bound: CI schedulers can add noise, but we
            // should be nowhere near millisecond-level overshoot on average.
            assert!(
                elapsed < target + Duration::from_millis(5),
                "slept {elapsed:?}, target {target:?}"
            );
        }
    }

    #[test]
    fn now_millis_is_monotonic_enough() {
        let a = now_millis_f64();
        precise_sleep(Duration::from_millis(2));
        let b = now_millis_f64();
        assert!(b > a, "clock went backwards: {a} -> {b}");
        assert!(b - a >= 1.5, "elapsed {b} - {a} too small");
    }

    #[test]
    fn stopwatch_measures_elapsed() {
        let mut sw = Stopwatch::start();
        precise_sleep(Duration::from_millis(3));
        assert!(sw.elapsed_millis() >= 2.5);
        sw.reset();
        assert!(sw.elapsed_millis() < 2.5);
    }
}
