//! # crayfish-core
//!
//! The Crayfish benchmarking framework itself (§3 of the paper): the
//! measurement fabric around any system under test.
//!
//! * [`batch`] — the `CrayfishDataBatch` unit of computation and its JSON
//!   wire form (the paper uses JSON serialization throughout).
//! * [`workload`] — the input producer: constant-rate and periodic-burst
//!   generation (Table 1's `isz`/`bsz`/`ir`/`bd`/`tbb` parameters).
//! * [`consumer`] — the output consumer extracting end-to-end latencies
//!   from the broker's `LogAppendTime` (§3.3).
//! * [`metrics`] — summaries, percentiles, time series, sustainable
//!   throughput, and burst-recovery analysis.
//! * [`processor`] — the `DataProcessor` abstraction engines implement
//!   (input operator, scoring operator, output operator; §3.2).
//! * [`scoring`] — the serving-tool abstraction: embedded libraries and
//!   external serving clients behind one `Scorer` interface.
//! * [`runner`] — orchestrates one experiment end to end and produces an
//!   [`runner::ExperimentResult`]; also hosts the sustainable-throughput
//!   search.
//! * [`config`] — declarative JSON experiment configs resolving names into
//!   specs.
//! * [`dataset`] — file-backed real-dataset inputs for the producer.

#![forbid(unsafe_code)]

pub mod batch;
pub mod config;
pub mod consumer;
pub mod dataset;
pub mod deploy;
pub mod error;
pub mod metrics;
pub mod processor;
pub mod runner;
pub mod scoring;
pub mod workload;

/// Re-export of the observability crate so engines reach the recorder
/// through their existing `crayfish-core` dependency.
pub use crayfish_obs as obs;

/// Re-export of the chaos crate: fault plans, injectors, retry policies,
/// and the worker supervisor engines build their resilience on.
pub use crayfish_chaos as chaos;

/// Re-export of the synchronisation shim. Pipeline crates take their
/// locks, condvars, atomics, and thread helpers from here so the same code
/// runs under parking_lot/std normally and under loom's model checker with
/// `RUSTFLAGS="--cfg loom"`.
pub use crayfish_sync as sync;

pub use batch::{CrayfishDataBatch, ScoredBatch};
pub use config::ExperimentConfig;
pub use crayfish_broker::ClusterConfig;
pub use crayfish_obs::{ObsHandle, Stage};
pub use deploy::DeploymentTopology;
pub use error::CoreError;
pub use processor::{DataProcessor, ProcessorContext, RunningJob};
pub use runner::{run_experiment, ExperimentResult, ExperimentSpec, ServingChoice};
pub use scoring::{Scorer, ScorerSpec};
pub use workload::Workload;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
