//! # crayfish-sim
//!
//! Timing primitives and calibrated cost models shared by every Crayfish
//! substrate.
//!
//! The Crayfish reproduction executes everything it can for real (kernels,
//! JSON, TCP, threads). Two classes of cost cannot be reproduced natively in
//! Rust and are therefore *modelled*:
//!
//! * **Hardware we do not have** — the 1 Gbps LAN between the paper's GCP
//!   VMs and the NVIDIA T4 GPU. See [`NetworkModel`] and the GPU constants
//!   in [`calibration`].
//! * **Foreign runtimes** — JVM/JNI marshalling (DeepLearning4j) and the
//!   Python interpreter (TorchServe handlers, Ray actors). See
//!   [`OverheadModel`].
//!
//! Every constant lives in [`calibration`] with a comment citing its source,
//! and every modelled cost is *spent as wall-clock time* via
//! [`precise_sleep`], so end-to-end measurements taken by the framework
//! include them exactly as a real deployment would.

#![forbid(unsafe_code)]

pub mod calibration;
pub mod network;
pub mod overhead;
pub mod rate;
pub mod time;

pub use network::NetworkModel;
pub use overhead::{Cost, OverheadModel};
pub use rate::RatePacer;
pub use time::{now, now_millis_f64, precise_sleep, spend, spin_exact, Stopwatch};
