//! Serialized model formats.
//!
//! Table 2 of the paper stores each model in four formats — ONNX,
//! SavedModel, Torch, and Keras H5 — whose file sizes differ in a
//! characteristic way: ONNX is the most compact; Torch and H5 add small
//! per-tensor bookkeeping; SavedModel adds a large, *mostly fixed* overhead
//! (~0.4 MB of graph/function metadata: 508 KB vs 113 KB for the 110 KB
//! FFNN, yet only 101 MB vs 97 MB for ResNet50).
//!
//! This module implements four distinct binary containers with the same
//! relative behaviour. All four carry the full graph structure and the raw
//! `f32` weights, and decode back to an [`NnGraph`] that computes bit-for-bit
//! the same function — exactly like converting a real model between formats.

use std::io::Read;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crayfish_tensor::kernels::conv::Conv2dParams;
use crayfish_tensor::kernels::norm::BnParams;
use crayfish_tensor::{NnGraph, Op, Shape, Tensor};

use crate::error::ModelError;
use crate::Result;

/// One of the four on-disk model formats of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ModelFormat {
    /// Open Neural Network Exchange — the compact interchange format.
    Onnx,
    /// TensorFlow SavedModel — graph + function-library metadata.
    SavedModel,
    /// Native PyTorch serialization.
    Torch,
    /// Keras HDF5 checkpoint.
    H5,
}

impl ModelFormat {
    /// All formats, in Table 2 order.
    pub const ALL: [ModelFormat; 4] = [
        ModelFormat::Onnx,
        ModelFormat::SavedModel,
        ModelFormat::Torch,
        ModelFormat::H5,
    ];

    /// Canonical lowercase name.
    pub fn name(&self) -> &'static str {
        match self {
            ModelFormat::Onnx => "onnx",
            ModelFormat::SavedModel => "saved_model",
            ModelFormat::Torch => "torch",
            ModelFormat::H5 => "h5",
        }
    }

    /// Look a format up by its [`ModelFormat::name`].
    pub fn by_name(name: &str) -> Result<ModelFormat> {
        Self::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| ModelError::Unknown(name.to_string()))
    }

    fn magic(&self) -> &'static [u8; 8] {
        match self {
            ModelFormat::Onnx => b"CRFONNX1",
            ModelFormat::SavedModel => b"CRFSVMD1",
            ModelFormat::Torch => b"CRFTORC1",
            ModelFormat::H5 => b"CRFHDF51",
        }
    }
}

/// Serde mirror of a graph node's op, without weights.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
enum OpDef {
    Input {
        shape: Vec<usize>,
    },
    Dense {
        inf: usize,
        outf: usize,
    },
    Conv2d {
        in_c: usize,
        out_c: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        has_bias: bool,
    },
    BatchNorm {
        channels: usize,
        eps: f32,
    },
    Relu,
    MaxPool {
        k: usize,
        s: usize,
        pad: usize,
    },
    GlobalAvgPool,
    Add,
    Flatten,
    Softmax,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct NodeDef {
    name: String,
    inputs: Vec<usize>,
    op: OpDef,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct GraphDef {
    name: String,
    output: usize,
    nodes: Vec<NodeDef>,
}

/// Fixed metadata block sizes per format (see the module docs for the
/// rationale; tuned so Table 2's size relationships reproduce).
const SAVED_MODEL_ASSETS: usize = 384 * 1024;
const H5_SUPERBLOCK: usize = 16 * 1024;
const H5_DATASET_HEADER: usize = 512;
const TORCH_STORAGE_KEY: usize = 128;

fn to_defs(graph: &NnGraph) -> (GraphDef, Vec<f32>) {
    let mut weights: Vec<f32> = Vec::new();
    let mut nodes = Vec::with_capacity(graph.nodes().len());
    for node in graph.nodes() {
        let op = match &node.op {
            Op::Input { shape } => OpDef::Input {
                shape: shape.dims().to_vec(),
            },
            Op::Dense { w, b } => {
                weights.extend_from_slice(w.data());
                weights.extend_from_slice(b.data());
                OpDef::Dense {
                    inf: w.shape().dim(0),
                    outf: w.shape().dim(1),
                }
            }
            Op::Conv2d { w, b, params } => {
                weights.extend_from_slice(w.data());
                if let Some(b) = b {
                    weights.extend_from_slice(b.data());
                }
                OpDef::Conv2d {
                    in_c: params.in_c,
                    out_c: params.out_c,
                    kernel: params.kernel,
                    stride: params.stride,
                    pad: params.pad,
                    has_bias: b.is_some(),
                }
            }
            Op::BatchNorm { params } => {
                weights.extend_from_slice(&params.gamma);
                weights.extend_from_slice(&params.beta);
                weights.extend_from_slice(&params.mean);
                weights.extend_from_slice(&params.var);
                OpDef::BatchNorm {
                    channels: params.channels(),
                    eps: params.eps,
                }
            }
            Op::Relu => OpDef::Relu,
            Op::MaxPool { k, s, pad } => OpDef::MaxPool {
                k: *k,
                s: *s,
                pad: *pad,
            },
            Op::GlobalAvgPool => OpDef::GlobalAvgPool,
            Op::Add => OpDef::Add,
            Op::Flatten => OpDef::Flatten,
            Op::Softmax => OpDef::Softmax,
        };
        nodes.push(NodeDef {
            name: node.name.clone(),
            inputs: node.inputs.clone(),
            op,
        });
    }
    (
        GraphDef {
            name: graph.name().to_string(),
            output: graph.output(),
            nodes,
        },
        weights,
    )
}

struct WeightReader<'a> {
    data: &'a [f32],
    pos: usize,
}

impl<'a> WeightReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [f32]> {
        if self.pos + n > self.data.len() {
            return Err(ModelError::Format(format!(
                "weight blob exhausted: need {n} floats at offset {}, have {}",
                self.pos,
                self.data.len()
            )));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

fn from_defs(def: &GraphDef, weights: &[f32]) -> Result<NnGraph> {
    let mut g = NnGraph::new(def.name.clone());
    let mut r = WeightReader {
        data: weights,
        pos: 0,
    };
    for node in &def.nodes {
        for &i in &node.inputs {
            if i >= g.nodes().len() {
                return Err(ModelError::Format(format!(
                    "node {} references undefined input {i}",
                    node.name
                )));
            }
        }
        let op = match &node.op {
            OpDef::Input { shape } => Op::Input {
                shape: Shape::new(shape.clone()),
            },
            OpDef::Dense { inf, outf } => {
                let w = Tensor::from_vec([*inf, *outf], r.take(inf * outf)?.to_vec())?;
                let b = Tensor::from_vec([*outf], r.take(*outf)?.to_vec())?;
                Op::Dense {
                    w: Arc::new(w),
                    b: Arc::new(b),
                }
            }
            OpDef::Conv2d {
                in_c,
                out_c,
                kernel,
                stride,
                pad,
                has_bias,
            } => {
                let wlen = out_c * in_c * kernel * kernel;
                let w =
                    Tensor::from_vec([*out_c, *in_c, *kernel, *kernel], r.take(wlen)?.to_vec())?;
                let b = if *has_bias {
                    Some(Arc::new(Tensor::from_vec(
                        [*out_c],
                        r.take(*out_c)?.to_vec(),
                    )?))
                } else {
                    None
                };
                Op::Conv2d {
                    w: Arc::new(w),
                    b,
                    params: Conv2dParams {
                        in_c: *in_c,
                        out_c: *out_c,
                        kernel: *kernel,
                        stride: *stride,
                        pad: *pad,
                    },
                }
            }
            OpDef::BatchNorm { channels, eps } => Op::BatchNorm {
                params: Arc::new(BnParams {
                    gamma: r.take(*channels)?.to_vec(),
                    beta: r.take(*channels)?.to_vec(),
                    mean: r.take(*channels)?.to_vec(),
                    var: r.take(*channels)?.to_vec(),
                    eps: *eps,
                }),
            },
            OpDef::Relu => Op::Relu,
            OpDef::MaxPool { k, s, pad } => Op::MaxPool {
                k: *k,
                s: *s,
                pad: *pad,
            },
            OpDef::GlobalAvgPool => Op::GlobalAvgPool,
            OpDef::Add => Op::Add,
            OpDef::Flatten => Op::Flatten,
            OpDef::Softmax => Op::Softmax,
        };
        g.add(node.name.clone(), op, node.inputs.clone());
    }
    if def.output >= g.nodes().len() {
        return Err(ModelError::Format(format!(
            "output node {} out of range",
            def.output
        )));
    }
    if r.pos != weights.len() {
        return Err(ModelError::Format(format!(
            "trailing weight data: consumed {} of {} floats",
            r.pos,
            weights.len()
        )));
    }
    g.set_output(def.output);
    Ok(g)
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn weights_to_bytes(weights: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(weights.len() * 4);
    for w in weights {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn weights_from_bytes(bytes: &[u8]) -> Result<Vec<f32>> {
    if bytes.len() % 4 != 0 {
        return Err(ModelError::Format(
            "weight section not a multiple of 4 bytes".into(),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

/// Serialize `graph` into the chosen format's binary container.
pub fn encode(graph: &NnGraph, format: ModelFormat) -> Result<Vec<u8>> {
    let (def, weights) = to_defs(graph);
    let weight_bytes = weights_to_bytes(&weights);
    let mut out = Vec::with_capacity(weight_bytes.len() + 64 * 1024);
    out.extend_from_slice(format.magic());
    match format {
        ModelFormat::Onnx => {
            // Compact: minified JSON graph def + raw weights.
            let header = serde_json::to_vec(&def)
                .map_err(|e| ModelError::Format(format!("header encode: {e}")))?;
            put_u64(&mut out, header.len() as u64);
            put_u64(&mut out, weight_bytes.len() as u64);
            out.extend_from_slice(&header);
            out.extend_from_slice(&weight_bytes);
        }
        ModelFormat::Torch => {
            // Compact JSON + a pickle-style storage key per weight-bearing
            // node (fixed-size records, like `torch.save`'s zip entries).
            let header = serde_json::to_vec(&def)
                .map_err(|e| ModelError::Format(format!("header encode: {e}")))?;
            let keyed = def
                .nodes
                .iter()
                .filter(|n| {
                    matches!(
                        n.op,
                        OpDef::Dense { .. } | OpDef::Conv2d { .. } | OpDef::BatchNorm { .. }
                    )
                })
                .count();
            let mut keys = vec![0u8; keyed * TORCH_STORAGE_KEY];
            for (i, n) in def
                .nodes
                .iter()
                .filter(|n| {
                    matches!(
                        n.op,
                        OpDef::Dense { .. } | OpDef::Conv2d { .. } | OpDef::BatchNorm { .. }
                    )
                })
                .enumerate()
            {
                let label = format!("archive/data/{}", n.name);
                let rec = &mut keys[i * TORCH_STORAGE_KEY..];
                let len = label.len().min(TORCH_STORAGE_KEY);
                rec[..len].copy_from_slice(&label.as_bytes()[..len]);
            }
            put_u64(&mut out, header.len() as u64);
            put_u64(&mut out, keys.len() as u64);
            put_u64(&mut out, weight_bytes.len() as u64);
            out.extend_from_slice(&header);
            out.extend_from_slice(&keys);
            out.extend_from_slice(&weight_bytes);
        }
        ModelFormat::H5 => {
            // HDF5-style: a fixed superblock plus a 512-byte dataset header
            // per stored tensor group.
            let header = serde_json::to_vec(&def)
                .map_err(|e| ModelError::Format(format!("header encode: {e}")))?;
            let datasets = def.nodes.iter().filter(|n| n.op_has_weights()).count();
            put_u64(&mut out, header.len() as u64);
            put_u64(&mut out, weight_bytes.len() as u64);
            put_u64(&mut out, datasets as u64);
            out.extend_from_slice(&vec![0u8; H5_SUPERBLOCK]);
            out.extend_from_slice(&header);
            out.extend_from_slice(&vec![0u8; datasets * H5_DATASET_HEADER]);
            out.extend_from_slice(&weight_bytes);
        }
        ModelFormat::SavedModel => {
            // SavedModel: pretty-printed graph def stored twice (GraphDef +
            // MetaGraph, as `saved_model.pb` effectively does) plus a large
            // fixed function-library/assets block.
            let pretty = serde_json::to_vec_pretty(&def)
                .map_err(|e| ModelError::Format(format!("header encode: {e}")))?;
            put_u64(&mut out, pretty.len() as u64);
            put_u64(&mut out, weight_bytes.len() as u64);
            out.extend_from_slice(&pretty);
            out.extend_from_slice(&pretty);
            out.extend_from_slice(&vec![0u8; SAVED_MODEL_ASSETS]);
            out.extend_from_slice(&weight_bytes);
        }
    }
    Ok(out)
}

impl NodeDef {
    fn op_has_weights(&self) -> bool {
        matches!(
            self.op,
            OpDef::Dense { .. } | OpDef::Conv2d { .. } | OpDef::BatchNorm { .. }
        )
    }
}

fn get_u64(bytes: &[u8], pos: &mut usize) -> Result<u64> {
    let end = *pos + 8;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| ModelError::Format("truncated header".into()))?;
    *pos = end;
    Ok(u64::from_le_bytes(slice.try_into().expect("8-byte slice")))
}

fn get_section<'a>(bytes: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8]> {
    let end = pos
        .checked_add(len)
        .ok_or_else(|| ModelError::Format("section length overflow".into()))?;
    let slice = bytes
        .get(*pos..end)
        .ok_or_else(|| ModelError::Format("truncated section".into()))?;
    *pos = end;
    Ok(slice)
}

/// Identify the format of a serialized model from its magic bytes.
pub fn sniff(bytes: &[u8]) -> Result<ModelFormat> {
    let magic: &[u8] = bytes
        .get(..8)
        .ok_or_else(|| ModelError::Format("too short".into()))?;
    ModelFormat::ALL
        .into_iter()
        .find(|f| f.magic() == magic)
        .ok_or_else(|| ModelError::Format("unrecognised model magic".into()))
}

/// Deserialize a model previously produced by [`encode`] in any format.
pub fn decode(bytes: &[u8]) -> Result<NnGraph> {
    let format = sniff(bytes)?;
    let mut pos = 8usize;
    let (header, weight_bytes) = match format {
        ModelFormat::Onnx => {
            let hlen = get_u64(bytes, &mut pos)? as usize;
            let wlen = get_u64(bytes, &mut pos)? as usize;
            let header = get_section(bytes, &mut pos, hlen)?;
            let weights = get_section(bytes, &mut pos, wlen)?;
            (header, weights)
        }
        ModelFormat::Torch => {
            let hlen = get_u64(bytes, &mut pos)? as usize;
            let klen = get_u64(bytes, &mut pos)? as usize;
            let wlen = get_u64(bytes, &mut pos)? as usize;
            let header = get_section(bytes, &mut pos, hlen)?;
            let _keys = get_section(bytes, &mut pos, klen)?;
            let weights = get_section(bytes, &mut pos, wlen)?;
            (header, weights)
        }
        ModelFormat::H5 => {
            let hlen = get_u64(bytes, &mut pos)? as usize;
            let wlen = get_u64(bytes, &mut pos)? as usize;
            let datasets = get_u64(bytes, &mut pos)? as usize;
            let _super = get_section(bytes, &mut pos, H5_SUPERBLOCK)?;
            let header = get_section(bytes, &mut pos, hlen)?;
            let _dsh = get_section(bytes, &mut pos, datasets * H5_DATASET_HEADER)?;
            let weights = get_section(bytes, &mut pos, wlen)?;
            (header, weights)
        }
        ModelFormat::SavedModel => {
            let hlen = get_u64(bytes, &mut pos)? as usize;
            let wlen = get_u64(bytes, &mut pos)? as usize;
            let header = get_section(bytes, &mut pos, hlen)?;
            let _meta = get_section(bytes, &mut pos, hlen)?;
            let _assets = get_section(bytes, &mut pos, SAVED_MODEL_ASSETS)?;
            let weights = get_section(bytes, &mut pos, wlen)?;
            (header, weights)
        }
    };
    let def: GraphDef = serde_json::from_slice(header)
        .map_err(|e| ModelError::Format(format!("header decode: {e}")))?;
    let weights = weights_from_bytes(weight_bytes)?;
    from_defs(&def, &weights)
}

/// Serialize a model to a file in the given format.
pub fn save(graph: &NnGraph, format: ModelFormat, path: &std::path::Path) -> Result<()> {
    let bytes = encode(graph, format)?;
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Load a model file in any of the four formats (auto-detected).
pub fn load(path: &std::path::Path) -> Result<NnGraph> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tiny;

    fn graphs_equal(a: &NnGraph, b: &NnGraph) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.nodes().len(), b.nodes().len());
        assert_eq!(a.param_count(), b.param_count());
        for (na, nb) in a.nodes().iter().zip(b.nodes()) {
            assert_eq!(na.name, nb.name);
            assert_eq!(na.inputs, nb.inputs);
            assert_eq!(na.op.kind(), nb.op.kind());
            if let (Op::Dense { w: wa, .. }, Op::Dense { w: wb, .. }) = (&na.op, &nb.op) {
                assert_eq!(wa.data(), wb.data());
            }
        }
    }

    #[test]
    fn roundtrip_all_formats_mlp() {
        let g = tiny::tiny_mlp(5);
        for format in ModelFormat::ALL {
            let bytes = encode(&g, format).unwrap();
            assert_eq!(sniff(&bytes).unwrap(), format);
            let back = decode(&bytes).unwrap();
            graphs_equal(&g, &back);
        }
    }

    #[test]
    fn roundtrip_all_formats_cnn() {
        let g = tiny::tiny_cnn(5);
        for format in ModelFormat::ALL {
            let bytes = encode(&g, format).unwrap();
            let back = decode(&bytes).unwrap();
            graphs_equal(&g, &back);
            // The decoded model must still validate.
            back.infer_shapes(2).unwrap();
        }
    }

    #[test]
    fn size_relationships_match_table2() {
        let g = crate::ffnn::build(9);
        let onnx = encode(&g, ModelFormat::Onnx).unwrap().len();
        let saved = encode(&g, ModelFormat::SavedModel).unwrap().len();
        let torch = encode(&g, ModelFormat::Torch).unwrap().len();
        let h5 = encode(&g, ModelFormat::H5).unwrap().len();
        // Table 2 (FFNN): onnx 113 KB < torch 115 KB < h5 133 KB << saved 508 KB.
        assert!(onnx < torch, "onnx {onnx} < torch {torch}");
        assert!(torch < h5, "torch {torch} < h5 {h5}");
        assert!(h5 < saved, "h5 {h5} < saved {saved}");
        // SavedModel's overhead is fixed-ish, roughly 0.4 MB.
        assert!(saved - onnx > 300 * 1024 && saved - onnx < 500 * 1024);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode(b"not a model").is_err());
        assert!(decode(b"").is_err());
        // Correct magic, truncated body.
        let mut bytes = b"CRFONNX1".to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn decode_rejects_corrupted_lengths() {
        let g = tiny::tiny_mlp(1);
        let mut bytes = encode(&g, ModelFormat::Onnx).unwrap();
        // Corrupt the weight-section length.
        bytes[16] ^= 0xff;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn by_name_resolves_all() {
        for f in ModelFormat::ALL {
            assert_eq!(ModelFormat::by_name(f.name()).unwrap(), f);
        }
        assert!(ModelFormat::by_name("protobuf").is_err());
    }

    #[test]
    fn save_load_file_roundtrip() {
        let g = tiny::tiny_mlp(3);
        let dir = std::env::temp_dir().join("crayfish-fmt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.onnx");
        save(&g, ModelFormat::Onnx, &path).unwrap();
        let back = load(&path).unwrap();
        graphs_equal(&g, &back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decoded_model_computes_same_function() {
        // Structural equality is not enough: run shape inference and verify
        // weights on a conv model survive the trip.
        let g = tiny::tiny_cnn(8);
        let bytes = encode(&g, ModelFormat::SavedModel).unwrap();
        let back = decode(&bytes).unwrap();
        for (na, nb) in g.nodes().iter().zip(back.nodes()) {
            if let (Op::Conv2d { w: wa, .. }, Op::Conv2d { w: wb, .. }) = (&na.op, &nb.op) {
                assert_eq!(wa.data(), wb.data());
            }
            if let (Op::BatchNorm { params: pa }, Op::BatchNorm { params: pb }) = (&na.op, &nb.op) {
                assert_eq!(pa.gamma, pb.gamma);
                assert_eq!(pa.var, pb.var);
            }
        }
    }
}
