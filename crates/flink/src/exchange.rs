//! Network-buffer exchanges between unchained operators.
//!
//! Flink serializes records into fixed-size network buffers (32 KB by
//! default) that are shipped downstream when full or when the *buffer
//! timeout* expires (100 ms by default in the Flink 1.13 line the paper
//! uses). Records larger than a buffer ship immediately. Channels are
//! bounded, so a full downstream exerts backpressure on the producer —
//! both effects shape the paper's Flink results.
//!
//! The channel itself is a counted MPSC queue built on [`crayfish_sync`]
//! primitives (one mutex, two condvars) rather than an external channel
//! crate: that keeps every blocking edge of the exchange visible to the
//! loom model in `tests/loom.rs`, which exhaustively checks the
//! send/recv/disconnect handshakes for lost wakeups.

use std::collections::VecDeque;
use std::time::Duration;

use bytes::Bytes;
use crayfish_core::obs::Counter;
use crayfish_sync::{Arc, Condvar, Mutex};

/// A shipped network buffer: a group of serialized records.
pub type NetBuffer = Vec<Bytes>;

/// The channel's payload could not be delivered: every receiver is gone.
/// Carries the rejected value back to the caller, like `std`'s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a channel with no receivers")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

/// Why a non-blocking receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is currently empty but senders remain.
    Empty,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

/// Why a bounded-wait receive returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the queue still empty.
    Timeout,
    /// The queue is empty and every sender is gone.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signalled when the queue loses an element or the receivers go away.
    not_full: Condvar,
    /// Signalled when the queue gains an element or the senders go away.
    not_empty: Condvar,
}

/// Create one bounded channel edge of an exchange. `capacity` is clamped to
/// at least 1 buffer in flight.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_full: Condvar::new(),
        not_empty: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// The producing half of a channel edge.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Deliver one value, blocking while the queue is at capacity
    /// (backpressure). Errors — returning the value — once every receiver
    /// is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            if state.queue.len() < state.capacity {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state);
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock();
            state.senders -= 1;
            state.senders
        };
        if remaining == 0 {
            // Blocked receivers must observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The consuming half of a channel edge.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Take the next value without waiting.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock();
        if let Some(v) = state.queue.pop_front() {
            drop(state);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if state.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Drain whatever is immediately available.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// Wait up to `timeout` for the next value.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = crayfish_sim::now() + timeout;
        let mut state = self.shared.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(crayfish_sim::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, timed_out) = self.shared.not_empty.wait_timeout(state, remaining);
            state = guard;
            if timed_out && state.queue.is_empty() && state.senders > 0 {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Wait indefinitely for the next value; errors once every sender is
    /// gone and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvTimeoutError> {
        let mut state = self.shared.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            state = self.shared.not_empty.wait(state);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let remaining = {
            let mut state = self.shared.state.lock();
            state.receivers -= 1;
            state.receivers
        };
        if remaining == 0 {
            // Blocked senders must observe the disconnect instead of
            // waiting forever for queue space.
            self.shared.not_full.notify_all();
        }
    }
}

/// Build an exchange from one upstream task to `downstream` tasks.
/// Returns the per-task receivers; each upstream task creates its own
/// [`ExchangeSender`] over clones of the senders.
pub fn channels(
    downstream: usize,
    capacity: usize,
) -> (Vec<Sender<NetBuffer>>, Vec<Receiver<NetBuffer>>) {
    let mut txs = Vec::with_capacity(downstream);
    let mut rxs = Vec::with_capacity(downstream);
    for _ in 0..downstream {
        let (tx, rx) = bounded(capacity);
        txs.push(tx);
        rxs.push(rx);
    }
    (txs, rxs)
}

/// The upstream half of an exchange for one producing task: accumulates
/// records into a buffer and rebalances full buffers round-robin across
/// downstream tasks.
pub struct ExchangeSender {
    outputs: Vec<Sender<NetBuffer>>,
    buffer: NetBuffer,
    buffered_bytes: usize,
    buffer_bytes: usize,
    timeout: Duration,
    since_flush: crayfish_sim::Stopwatch,
    rr: usize,
    shipped: Option<Counter>,
}

impl ExchangeSender {
    /// Create a sender over the downstream channels.
    pub fn new(outputs: Vec<Sender<NetBuffer>>, buffer_bytes: usize, timeout: Duration) -> Self {
        ExchangeSender {
            outputs,
            buffer: Vec::new(),
            buffered_bytes: 0,
            buffer_bytes: buffer_bytes.max(1),
            timeout,
            since_flush: crayfish_sim::Stopwatch::start(),
            rr: 0,
            shipped: None,
        }
    }

    /// Count every shipped buffer on `counter` (the job-level
    /// `flink_exchange_buffers` personality marker).
    pub fn with_counter(mut self, counter: Counter) -> Self {
        self.shipped = Some(counter);
        self
    }

    /// Push one record; ships the current buffer if it is full. Blocks on
    /// backpressure. Errors when every downstream task is gone.
    pub fn push(&mut self, record: Bytes) -> Result<(), SendError<NetBuffer>> {
        self.buffered_bytes += record.len();
        self.buffer.push(record);
        if self.buffered_bytes >= self.buffer_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship the buffer if the buffer timeout has expired. Call regularly
    /// from the task loop (Flink's output flusher thread).
    pub fn maybe_flush(&mut self) -> Result<(), SendError<NetBuffer>> {
        if !self.buffer.is_empty() && self.since_flush.elapsed() >= self.timeout {
            self.flush()?;
        }
        Ok(())
    }

    /// Ship whatever is buffered now.
    pub fn flush(&mut self) -> Result<(), SendError<NetBuffer>> {
        self.since_flush.reset();
        if self.buffer.is_empty() {
            return Ok(());
        }
        let buf = std::mem::take(&mut self.buffer);
        self.buffered_bytes = 0;
        let n = self.outputs.len();
        let target = &self.outputs[self.rr % n];
        self.rr = (self.rr + 1) % n;
        target.send(buf)?;
        if let Some(c) = &self.shipped {
            c.inc();
        }
        Ok(())
    }
}

/// All upstream tasks of an exchange have terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EndOfStream;

/// Receive the next buffer, waiting up to `timeout`. `Ok(None)` on timeout,
/// `Err(EndOfStream)` when all upstream tasks are gone.
pub fn recv_buffer(
    rx: &Receiver<NetBuffer>,
    timeout: Duration,
) -> Result<Option<NetBuffer>, EndOfStream> {
    match rx.recv_timeout(timeout) {
        Ok(buf) => Ok(Some(buf)),
        Err(RecvTimeoutError::Timeout) => Ok(None),
        Err(RecvTimeoutError::Disconnected) => Err(EndOfStream),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_records_accumulate_until_full() {
        let (txs, rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 100, Duration::from_secs(60));
        for _ in 0..9 {
            sender.push(Bytes::from(vec![0u8; 10])).unwrap();
        }
        // 90 bytes buffered, nothing shipped yet.
        assert!(rxs[0].try_recv().is_err());
        sender.push(Bytes::from(vec![0u8; 10])).unwrap();
        // 100 bytes -> shipped as one buffer of 10 records.
        let buf = rxs[0].try_recv().unwrap();
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn oversized_records_ship_immediately() {
        let (txs, rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 100, Duration::from_secs(60));
        sender.push(Bytes::from(vec![0u8; 5000])).unwrap();
        assert_eq!(rxs[0].try_recv().unwrap().len(), 1);
    }

    #[test]
    fn timeout_flushes_partial_buffers() {
        let (txs, rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 1 << 20, Duration::from_millis(20));
        sender.push(Bytes::from_static(b"x")).unwrap();
        sender.maybe_flush().unwrap();
        assert!(rxs[0].try_recv().is_err(), "flushed before timeout");
        std::thread::sleep(Duration::from_millis(25));
        sender.maybe_flush().unwrap();
        assert_eq!(rxs[0].try_recv().unwrap().len(), 1);
    }

    #[test]
    fn rebalances_round_robin() {
        let (txs, rxs) = channels(3, 4);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO);
        for _ in 0..6 {
            sender.push(Bytes::from_static(b"abc")).unwrap();
        }
        for rx in &rxs {
            assert_eq!(rx.try_iter().count(), 2);
        }
    }

    #[test]
    fn bounded_channels_backpressure() {
        let (txs, rxs) = channels(1, 1);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO);
        sender.push(Bytes::from_static(b"a")).unwrap();
        // Channel now full; the next push must block until we drain.
        let h = std::thread::spawn(move || {
            sender.push(Bytes::from_static(b"b")).unwrap();
            sender
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(!h.is_finished(), "no backpressure on full channel");
        rxs[0].recv().unwrap();
        h.join().unwrap();
    }

    #[test]
    fn send_fails_once_receiver_is_gone() {
        let (txs, rxs) = channels(1, 1);
        drop(rxs);
        assert_eq!(
            txs[0].send(vec![Bytes::from_static(b"a")]),
            Err(SendError(vec![Bytes::from_static(b"a")]))
        );
    }

    #[test]
    fn dropping_receiver_unblocks_a_backpressured_sender() {
        let (txs, rxs) = channels(1, 1);
        txs[0].send(vec![Bytes::from_static(b"a")]).unwrap();
        let tx = txs.into_iter().next().unwrap();
        let h = std::thread::spawn(move || tx.send(vec![Bytes::from_static(b"b")]));
        std::thread::sleep(Duration::from_millis(20));
        drop(rxs);
        assert!(h.join().unwrap().is_err(), "send must observe disconnect");
    }

    #[test]
    fn shipped_buffers_are_counted() {
        let obs = crayfish_core::obs::ObsHandle::enabled();
        let (txs, _rxs) = channels(1, 4);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO)
            .with_counter(obs.counter("flink_exchange_buffers"));
        sender.push(Bytes::from_static(b"abc")).unwrap();
        sender.push(Bytes::from_static(b"abc")).unwrap();
        assert_eq!(obs.counter("flink_exchange_buffers").get(), 2);
    }

    #[test]
    fn recv_buffer_distinguishes_timeout_and_eos() {
        let (txs, rxs) = channels(1, 1);
        assert_eq!(recv_buffer(&rxs[0], Duration::from_millis(10)), Ok(None));
        drop(txs);
        assert_eq!(
            recv_buffer(&rxs[0], Duration::from_millis(10)),
            Err(EndOfStream)
        );
    }
}
