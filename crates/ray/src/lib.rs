//! # crayfish-ray
//!
//! An actor-based distributed computing engine in the style of Ray
//! (§3.4.4 of the paper), implementing the Crayfish `DataProcessor`
//! interface as an [`EnginePersonality`] over the shared engine kernel.
//!
//! Mechanisms reproduced:
//!
//! * **Actor pipelines**: `mp` independent chains of input → scoring →
//!   output actors with a one-to-one mapping between stages, exactly the
//!   manual spawning scheme the paper uses to emulate data parallelism
//!   (§4.3 "Scaling up").
//! * **Object-store message passing**: every message between actors is
//!   copied (a Plasma put/get pair) and pays the calibrated Python actor
//!   dispatch cost — the per-message overhead behind Ray's lowest-of-all
//!   throughput in Table 5. Each copy increments the
//!   `ray_object_store_transfers` counter.
//! * **No interoperability penalty**: the scoring actor applies the model
//!   directly (Ray is Python-native), so embedded scoring here carries no
//!   JNI-style marshalling.
//! * **Bounded mailboxes** provide backpressure from scoring back to the
//!   input actors.
//!
//! Per chain, the input actor is a kernel [`source pump`] (supervised,
//! commit-owning, restarted at the committed offsets) feeding a bounded
//! mailbox; the scoring and output actors are kernel score/sink stages
//! behind the personality's object-store hops.
//!
//! [`source pump`]: crayfish_engine_kernel::source_pump

#![forbid(unsafe_code)]

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};

use crayfish_broker::{Broker, Producer, ProducerConfig};
use crayfish_core::{DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_engine_kernel::{
    ingest_span, source_pump, EnginePersonality, ProducerSink, PumpSettings, ScoreStage, WorkerSet,
};
use crayfish_sim::{Cost, OverheadModel};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct RayOptions {
    /// Mailbox capacity per actor (backpressure bound).
    pub mailbox_capacity: usize,
    /// Calibrated overheads (actor dispatch cost).
    pub overheads: OverheadModel,
}

impl Default for RayOptions {
    fn default() -> Self {
        RayOptions {
            mailbox_capacity: 128,
            overheads: OverheadModel::calibrated(),
        }
    }
}

/// The Ray-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RayProcessor {
    /// Engine options.
    pub options: RayOptions,
}

impl RayProcessor {
    /// Engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: RayOptions) -> Self {
        RayProcessor { options }
    }
}

/// An object-store transfer: the receiver gets its own copy of the payload
/// and pays the Python dispatch cost.
fn object_store_receive(msg: &Bytes, dispatch: Cost) -> Bytes {
    let copy = Bytes::from(msg.to_vec());
    dispatch.spend(copy.len());
    copy
}

impl EnginePersonality for RayProcessor {
    fn name(&self) -> &'static str {
        "ray"
    }

    fn deploy(&self, ctx: &ProcessorContext, set: &mut WorkerSet) -> Result<()> {
        let options = self.options;
        let dispatch = options.overheads.actor_dispatch;
        let partitions = ctx.broker.partitions(&ctx.input_topic)?;
        let assignment = Broker::range_assignment(partitions, ctx.mp);

        for (i, assigned) in assignment.into_iter().enumerate() {
            // One-to-one actor chain i: input -> scoring -> output, with
            // the stages registered upstream-first so shutdown drains the
            // mailboxes front to back.
            let (score_tx, score_rx): (Sender<Bytes>, Receiver<Bytes>) =
                bounded(options.mailbox_capacity.max(1));
            let (out_tx, out_rx): (Sender<Bytes>, Receiver<Bytes>) =
                bounded(options.mailbox_capacity.max(1));

            // Input actor: consumes from Kafka, puts into the object store.
            // Ray restarts dead actors — the mailbox survives across
            // incarnations, only the consumer is rebuilt. The object-store
            // get is paid by the *receiving* actor, so the pump charges no
            // ingest cost of its own.
            source_pump(
                set,
                ctx,
                format!("ray-input-{i}"),
                assigned,
                PumpSettings::default(),
                score_tx,
            )?;

            // Scoring actor: object-store get + dispatch is the engine's
            // per-record ingestion cost; transient scoring failures retry
            // in place (the message already left the input actor's commit
            // scope).
            let obs = ctx.obs().clone();
            let transfers = obs.counter("ray_object_store_transfers");
            let mut score = ScoreStage::in_place(ctx.scorer.build()?, &obs);
            set.task(format!("ray-score-{i}"), move || {
                while let Ok(msg) = score_rx.recv() {
                    let staged = ingest_span(&obs, || object_store_receive(&msg, dispatch));
                    transfers.inc();
                    if let Ok(Some(scored)) = score.score(&staged) {
                        if out_tx.send(scored).is_err() {
                            return;
                        }
                    }
                }
            })?;

            // Output actor: a second object-store hop, then the sink. The
            // dispatch cost is charged inside the sink's `emit` span.
            let obs = ctx.obs().clone();
            let transfers = obs.counter("ray_object_store_transfers");
            let producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let mut sink = ProducerSink::with_cost(producer, &obs, dispatch);
            set.task(format!("ray-output-{i}"), move || {
                while let Ok(msg) = out_rx.recv() {
                    let staged = Bytes::from(msg.to_vec());
                    transfers.inc();
                    if sink.emit(staged).is_err() {
                        return;
                    }
                }
            })?;
        }
        Ok(())
    }
}

impl DataProcessor for RayProcessor {
    fn name(&self) -> &'static str {
        EnginePersonality::name(self)
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        crayfish_engine_kernel::start(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crayfish_core::batch::testkit::{distinct_ids, drain_scored, feed, onnx_ctx};
    use crayfish_sim::NetworkModel;
    use std::time::Duration;

    fn make_ctx(mp: usize, overheads: OverheadModel) -> (ProcessorContext, RayProcessor) {
        let ctx = onnx_ctx(Broker::new(NetworkModel::zero()), 8, mp);
        let proc = RayProcessor::with_options(RayOptions {
            overheads,
            ..Default::default()
        });
        (ctx, proc)
    }

    #[test]
    fn actor_chains_score_everything_exactly_once() {
        let (ctx, proc) = make_ctx(2, OverheadModel::zero());
        let broker = ctx.broker.clone();
        let job = proc.start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 60);
        let scored = drain_scored(broker.as_ref(), "out", 8, 60, Duration::from_secs(10));
        assert_eq!(distinct_ids(&scored).len(), 60);
        job.stop();
    }

    #[test]
    fn dispatch_cost_slows_the_pipeline() {
        // With the calibrated dispatch cost, two hops per record must show
        // up as end-to-end time.
        let (ctx, proc) = make_ctx(1, OverheadModel::calibrated());
        let broker = ctx.broker.clone();
        let job = proc.start(ctx).unwrap();
        let sw = crayfish_sim::Stopwatch::start();
        feed(broker.as_ref(), "in", 8, 1);
        drain_scored(broker.as_ref(), "out", 8, 1, Duration::from_secs(10));
        // Two dispatches at >= 180 µs each, plus pipeline time.
        assert!(sw.elapsed_millis() >= 0.36, "{} ms", sw.elapsed_millis());
        job.stop();
    }

    #[test]
    fn stop_terminates_all_actors() {
        let (ctx, proc) = make_ctx(3, OverheadModel::zero());
        let broker = ctx.broker.clone();
        let job = proc.start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 10);
        drain_scored(broker.as_ref(), "out", 8, 10, Duration::from_secs(10));
        job.stop();
        feed(broker.as_ref(), "in", 8, 5);
        std::thread::sleep(Duration::from_millis(150));
        assert_eq!(broker.total_records("out").unwrap(), 10);
    }
}
