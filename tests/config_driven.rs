//! The declarative surface end to end: JSON config → registry lookup →
//! experiment → results, exactly what the `crayfish-run` binary does.

use crayfish::framework::runner::{find_sustainable_rate, StSearchOptions};
use crayfish::framework::{run_experiment, ExperimentConfig};
use crayfish::registry;

#[test]
fn json_config_runs_end_to_end() {
    let json = r#"{
        "processor": "kstreams",
        "model": "tiny-mlp",
        "serving": { "mode": "embedded", "library": "saved_model" },
        "workload": { "type": "constant", "rate": 300.0 },
        "mp": 2,
        "partitions": 4,
        "duration_secs": 1.5,
        "network": "zero"
    }"#;
    let config = ExperimentConfig::from_json(json).unwrap();
    let processor = registry::processor_by_name(&config.processor).expect("engine");
    let spec = config.to_spec().unwrap();
    let result = run_experiment(processor.as_ref(), &spec).unwrap();
    assert!(result.consumed > 30, "consumed {}", result.consumed);
    assert!(result.latency.mean > 0.0);
}

#[test]
fn config_file_roundtrip_through_disk() {
    let dir = std::env::temp_dir().join("crayfish-config-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("exp.json");
    let json = r#"{
        "processor": "ray",
        "model": "tiny-cnn",
        "serving": { "mode": "external", "server": "ray_serve" },
        "workload": { "type": "constant", "rate": 50.0 },
        "duration_secs": 2.0
    }"#;
    std::fs::write(&path, json).unwrap();
    let config = ExperimentConfig::from_file(&path).unwrap();
    assert_eq!(config.processor, "ray");
    assert!(config.to_spec().is_ok());
    std::fs::remove_file(&path).ok();
}

#[test]
fn sustainable_search_through_an_engine() {
    let json = r#"{
        "processor": "flink",
        "model": "tiny-mlp",
        "serving": { "mode": "embedded", "library": "onnx" },
        "workload": { "type": "constant", "rate": 1.0 },
        "partitions": 4,
        "duration_secs": 0.8,
        "network": "zero"
    }"#;
    let config = ExperimentConfig::from_json(json).unwrap();
    let processor = registry::processor_by_name(&config.processor).unwrap();
    let spec = config.to_spec().unwrap();
    let st = find_sustainable_rate(
        processor.as_ref(),
        &spec,
        StSearchOptions {
            probe: std::time::Duration::from_millis(800),
            iterations: 1,
            tolerance: 0.1,
        },
    )
    .unwrap();
    // The flink chain with the calibrated framework cost sustains on the
    // order of 1-2k tiny events/s per task; anything clearly positive and
    // bounded is a pass for the plumbing.
    assert!(st > 50.0 && st < 1_000_000.0, "st = {st}");
}
