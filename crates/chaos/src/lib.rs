//! # crayfish-chaos
//!
//! Deterministic fault injection and the resilience primitives that react
//! to it. Crayfish's evaluation (§4) stresses sustainability under load
//! bursts; this crate adds the other axis real deployments face —
//! component failure — and makes it *injectable, survivable, and
//! measurable*:
//!
//! * [`FaultPlan`] — a seeded, reproducible schedule of fault windows
//!   (partition outages, serving crashes, network degradation, consumer
//!   stalls, worker crashes). Same seed ⇒ identical schedule.
//! * [`FaultInjector`] — a scheduler thread that walks the plan in real
//!   time, flipping switches on a shared [`ChaosHandle`] that the broker,
//!   serving clients, and consumers consult at their injection points.
//! * [`RetryPolicy`] / [`CircuitBreaker`] — bounded retries with
//!   exponential backoff + deterministic jitter, and a circuit breaker
//!   with half-open probing, used by serving clients and the broker
//!   producer.
//! * [`supervise`] — worker supervision for the engines: a crashed worker
//!   incarnation is restarted and resumes from the last committed offset.
//! * [`RecoveryReport`] — per-run MTTR / duplicates / availability
//!   numbers, so chaos runs produce measurements, not just pass/fail.
//!
//! Like `ObsHandle`, a disabled [`ChaosHandle`] (the default everywhere)
//! answers every query through a single `Option` branch: with an empty
//! plan the whole subsystem is zero-cost on hot paths.

#![forbid(unsafe_code)]

pub mod breaker;
pub mod handle;
pub mod injector;
pub mod plan;
pub mod report;
pub mod retry;
pub mod rng;
pub mod supervisor;
pub mod testkit;

pub use breaker::{BreakerConfig, CircuitBreaker, CircuitState};
pub use handle::{ChaosHandle, Domain};
pub use injector::{ChaosActions, FaultInjector, InjectorConfig};
pub use plan::{FaultKind, FaultPlan, FaultWindow};
pub use report::{IncidentReport, RecoveryReport};
pub use retry::RetryPolicy;
pub use rng::DetRng;
pub use supervisor::{supervise, SupervisorConfig, WorkerExit};
pub use testkit::{poll_until, poll_until_every};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_stack_is_inert() {
        let chaos = ChaosHandle::disabled();
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        assert!(!chaos.topic_unavailable("anything"));
        assert_eq!(chaos.report().incidents.len(), 0);
    }

    #[test]
    fn replaying_a_seed_gives_the_same_schedule() {
        for seed in [7u64, 42, 1337] {
            let a = FaultPlan::generate(seed, Duration::from_secs(3), &FaultKind::ALL);
            let b = FaultPlan::generate(seed, Duration::from_secs(3), &FaultKind::ALL);
            assert_eq!(a, b, "seed {seed} must replay identically");
        }
    }
}
