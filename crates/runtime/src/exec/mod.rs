//! Graph execution strategies.
//!
//! * [`unfused`] — walks the graph node by node, one kernel per op. This is
//!   what a direct binding (SavedModel, DL4J) executes.
//! * [`fused`] — compiles the graph at load time: batch-norm folded into the
//!   preceding convolution, ReLU fused into producer kernels, buffers and
//!   `im2col` scratch reused across calls. This is the ONNX-Runtime-style
//!   optimised path (also used by the simulated TensorFlow Serving).
//! * [`gpu`] — the simulated accelerator: wall time follows the
//!   [`crate::device::GpuSpec`] cost model.

pub mod fused;
pub mod gpu;
pub mod unfused;

pub use fused::FusedExec;
pub use gpu::GpuExec;
pub use unfused::UnfusedExec;

use crayfish_tensor::{Shape, Tensor};

use crate::error::RuntimeError;
use crate::Result;

/// Validate that `input` is a batched instance of `expected` (i.e. its shape
/// is `[batch, ..expected]` for some `batch >= 1`) and return the batch size.
pub(crate) fn check_batched_input(input: &Tensor, expected: &Shape) -> Result<usize> {
    let shape = input.shape();
    if shape.rank() != expected.rank() + 1 || shape.per_item() != *expected {
        return Err(RuntimeError::BadInput(format!(
            "expected input of shape [batch{}{expected_inner}], got {shape}",
            if expected.rank() > 0 { ", " } else { "" },
            expected_inner = expected
                .dims()
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        )));
    }
    let batch = shape.dim(0);
    if batch == 0 {
        return Err(RuntimeError::BadInput("empty batch".into()));
    }
    Ok(batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_matching_batched_shape() {
        let input = Tensor::zeros([4, 3, 8, 8]);
        let expected = Shape::from([3, 8, 8]);
        assert_eq!(check_batched_input(&input, &expected).unwrap(), 4);
    }

    #[test]
    fn rejects_wrong_shape_and_empty_batch() {
        let expected = Shape::from([3, 8, 8]);
        assert!(check_batched_input(&Tensor::zeros([3, 8, 8]), &expected).is_err());
        assert!(check_batched_input(&Tensor::zeros([2, 3, 8, 4]), &expected).is_err());
        assert!(check_batched_input(&Tensor::zeros([0, 3, 8, 8]), &expected).is_err());
    }
}
