//! `quant_accuracy` — the accuracy side of the low-precision ledger: how
//! much prediction fidelity int8/f16 plans give up relative to the f32
//! plan, measured per model and per layer.
//!
//! For FFNN and ResNet50, the fused executor is compiled at `Precision::Int8`
//! and `Precision::F16` and scored on seeded synthetic inputs against the
//! f32 plan's output (the oracle — these are seeded random weights, so f32
//! *is* ground truth here, not a labelled test set). Reported per
//! (model, precision):
//!
//! * **top-1 agreement** — fraction of items whose argmax class matches the
//!   f32 plan's argmax (the metric that decides whether quantization is
//!   deployable);
//! * **max-abs-error** of the output scores vs the f32 plan;
//! * the per-layer calibration report from plan compilation: each layer's
//!   relative error and whether the calibration gate kept it quantized or
//!   sent it back to f32.
//!
//! ```sh
//! cargo run --release -p crayfish-bench --bin quant_accuracy            # full
//! cargo run --release -p crayfish-bench --bin quant_accuracy -- --quick # CI
//! ```
//!
//! Writes `bench_results/quant_accuracy.json` (full mode only; `--quick`
//! prints but never clobbers the committed run).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::Path;

use crayfish_models::zoo::ModelSpec;
use crayfish_runtime::exec::FusedExec;
use crayfish_runtime::{Precision, QuantConfig};
use crayfish_tensor::{Shape, Tensor};

/// Argmax of each `classes`-wide row.
fn top1(scores: &Tensor, classes: usize) -> Vec<usize> {
    scores
        .data()
        .chunks_exact(classes)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

fn max_abs_err(got: &[f32], want: &[f32]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() as f64)
        .fold(0.0, f64::max)
}

struct ModelResult {
    model: &'static str,
    precision: &'static str,
    items: usize,
    top1_agreement: f64,
    out_max_abs_err: f64,
    quantized_layers: usize,
    fallback_layers: usize,
    worst_layer_rel_err: f64,
    layers: Vec<(String, &'static str, &'static str, f64, f64)>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // ResNet50 forward passes are expensive on one core; quick mode keeps
    // CI latency bounded while still touching both models end to end.
    let (ffnn_items, resnet_items, batch) = if quick { (32, 2, 2) } else { (256, 16, 4) };

    let mut results: Vec<ModelResult> = Vec::new();
    for (spec, items) in [
        (ModelSpec::Ffnn, ffnn_items),
        (ModelSpec::Resnet50, resnet_items),
    ] {
        let graph = spec.build(42);
        let classes = spec.classes();
        let mut f32_exec = FusedExec::new(&graph).expect("f32 plan");

        for precision in [Precision::Int8, Precision::F16] {
            let cfg = QuantConfig::with_precision(precision);
            let mut exec = FusedExec::with_precision(&graph, cfg).expect("quantized plan");
            let report = exec.precision_report().clone();

            let mut agree = 0usize;
            let mut total = 0usize;
            let mut out_err = 0.0f64;
            let mut done = 0usize;
            let mut batch_idx = 0u64;
            while done < items {
                let this = batch.min(items - done);
                let mut dims = vec![this];
                dims.extend_from_slice(spec.input_shape().dims());
                let input =
                    Tensor::seeded_uniform(Shape::new(dims), 1000 + batch_idx, -1.0, 1.0);
                let oracle = f32_exec.run(&input).expect("f32 run");
                let got = exec.run(&input).expect("quantized run");
                out_err = out_err.max(max_abs_err(got.data(), oracle.data()));
                for (a, b) in top1(&got, classes).iter().zip(top1(&oracle, classes)) {
                    agree += usize::from(*a == b);
                    total += 1;
                }
                done += this;
                batch_idx += 1;
            }

            let layers: Vec<(String, &'static str, &'static str, f64, f64)> = report
                .layers
                .iter()
                .map(|l| {
                    (
                        l.name.clone(),
                        l.kind,
                        l.chosen,
                        l.rel_err as f64,
                        l.max_abs_err as f64,
                    )
                })
                .collect();
            let r = ModelResult {
                model: spec.name(),
                precision: precision.name(),
                items: total,
                top1_agreement: agree as f64 / total.max(1) as f64,
                out_max_abs_err: out_err,
                quantized_layers: report.quantized_count(),
                fallback_layers: report.fallback_count(),
                worst_layer_rel_err: report.worst_rel_err() as f64,
                layers,
            };
            println!(
                "{:<9} {:<5} top-1 agreement {:>6.2}% over {} items, out max-abs-err {:.3e}, \
                 {}/{} layers quantized (worst layer rel err {:.3e})",
                r.model,
                r.precision,
                r.top1_agreement * 100.0,
                r.items,
                r.out_max_abs_err,
                r.quantized_layers,
                r.quantized_layers + r.fallback_layers,
                r.worst_layer_rel_err,
            );
            results.push(r);
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"quant_accuracy\",\n");
    let _ = writeln!(json, "  \"quick\": {quick},");
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\n      \"model\": \"{}\", \"precision\": \"{}\", \"items\": {},",
            r.model, r.precision, r.items
        );
        let _ = writeln!(
            json,
            "      \"top1_agreement\": {:.4}, \"out_max_abs_err\": {:.4e},",
            r.top1_agreement, r.out_max_abs_err
        );
        let _ = writeln!(
            json,
            "      \"quantized_layers\": {}, \"fallback_layers\": {}, \"worst_layer_rel_err\": {:.4e},",
            r.quantized_layers, r.fallback_layers, r.worst_layer_rel_err
        );
        json.push_str("      \"layers\": [\n");
        for (j, (name, kind, chosen, rel, abs)) in r.layers.iter().enumerate() {
            let comma = if j + 1 == r.layers.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "        {{ \"name\": {name:?}, \"kind\": \"{kind}\", \"chosen\": \"{chosen}\", \
                 \"rel_err\": {rel:.4e}, \"max_abs_err\": {abs:.4e} }}{comma}"
            );
        }
        json.push_str("      ]\n");
        let comma = if i + 1 == results.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    // CI's quick run writes its own file so the committed full run is
    // never clobbered by a short smoke sweep.
    let path = dir.join(if quick {
        "quant_accuracy_quick.json"
    } else {
        "quant_accuracy.json"
    });
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    std::fs::write(&path, json).expect("write quant_accuracy report");
    println!("wrote {}", path.display());
}
