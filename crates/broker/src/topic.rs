//! Topics and partition logs.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use crayfish_sync::{Condvar, Mutex};

use crayfish_sim::now_millis_f64;

/// Default per-partition retention. Old records are evicted once a
/// partition exceeds this many bytes — the analog of Kafka's size-based log
/// retention, and what keeps hours of offered load from exhausting memory.
pub const DEFAULT_RETENTION_BYTES: usize = 32 * 1024 * 1024;

#[derive(Debug, Default)]
pub(crate) struct PartitionLog {
    /// Offset of the first retained record.
    base: u64,
    bytes: usize,
    records: VecDeque<StoredRecord>,
    /// Idempotent-producer dedup window: producer id → next expected
    /// sequence number. A re-sent batch whose sequences were already
    /// appended (a retry after a lost ack) is dropped here, under the
    /// partition lock — Kafka's `enable.idempotence` behaviour.
    next_seq: HashMap<u64, u64>,
}

/// One record as stored in a partition log.
#[derive(Debug, Clone)]
pub(crate) struct StoredRecord {
    pub value: Bytes,
    /// Client-side send time (informational).
    pub produce_time_ms: f64,
    /// Broker-side `LogAppendTime` — the paper's *end* timestamp authority.
    pub append_time_ms: f64,
}

/// One record as returned by a fetch.
#[derive(Debug, Clone)]
pub struct FetchedRecord {
    /// Partition the record came from.
    pub partition: u32,
    /// Offset within the partition.
    pub offset: u64,
    /// Record payload.
    pub value: Bytes,
    /// Client-side send time.
    pub produce_time_ms: f64,
    /// Broker-side `LogAppendTime`.
    pub append_time_ms: f64,
}

/// A topic: a fixed set of partition logs plus a notifier for long-polls.
#[derive(Debug)]
pub(crate) struct Topic {
    pub partitions: Vec<Mutex<PartitionLog>>,
    pub retention_bytes: usize,
    /// Bumped on every append; long-polling fetches wait on it.
    pub version: Mutex<u64>,
    pub data_cond: Condvar,
}

impl Topic {
    /// Default-retention constructor (test convenience; the broker always
    /// passes an explicit retention).
    #[cfg(test)]
    pub fn new(partitions: u32) -> Self {
        Self::with_retention(partitions, DEFAULT_RETENTION_BYTES)
    }

    pub fn with_retention(partitions: u32, retention_bytes: usize) -> Self {
        Topic {
            partitions: (0..partitions)
                .map(|_| Mutex::new(PartitionLog::default()))
                .collect(),
            retention_bytes: retention_bytes.max(1),
            version: Mutex::new(0),
            data_cond: Condvar::new(),
        }
    }

    /// Append records to one partition, stamping `LogAppendTime` under the
    /// partition lock. Returns the first assigned offset and the stamp.
    pub fn append(&self, partition: usize, values: Vec<(Bytes, f64)>) -> (u64, f64) {
        let (first_offset, append_time_ms, _) = self.append_internal(partition, None, values);
        (first_offset, append_time_ms)
    }

    /// Like [`append`](Self::append), but with idempotent-producer dedup:
    /// `first_seq` numbers the first record of `values` in the producer's
    /// per-partition sequence. Records whose sequences were already
    /// appended (a retry after a lost ack) are silently dropped; the third
    /// return value counts them.
    pub fn append_dedup(
        &self,
        partition: usize,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> (u64, f64, u64) {
        self.append_internal(partition, Some((producer_id, first_seq)), values)
    }

    fn append_internal(
        &self,
        partition: usize,
        dedup: Option<(u64, u64)>,
        mut values: Vec<(Bytes, f64)>,
    ) -> (u64, f64, u64) {
        let mut log = self.partitions[partition].lock();
        let mut duplicates = 0u64;
        if let Some((producer_id, first_seq)) = dedup {
            let expected = log.next_seq.get(&producer_id).copied().unwrap_or(0);
            let n = values.len() as u64;
            if first_seq < expected {
                // Leading records were already appended by an earlier
                // attempt whose ack was lost.
                duplicates = (expected - first_seq).min(n);
                values.drain(..duplicates as usize);
            }
            // A first_seq above `expected` means the producer gave up on an
            // earlier batch; accept the gap and move the window forward.
            log.next_seq
                .insert(producer_id, expected.max(first_seq + n));
        }
        let first_offset = log.base + log.records.len() as u64;
        let append_time_ms = now_millis_f64();
        for (value, produce_time_ms) in values {
            log.bytes += value.len();
            log.records.push_back(StoredRecord {
                value,
                produce_time_ms,
                append_time_ms,
            });
        }
        // Size-based retention: evict from the head, never the last record.
        while log.bytes > self.retention_bytes && log.records.len() > 1 {
            if let Some(evicted) = log.records.pop_front() {
                log.bytes -= evicted.value.len();
                log.base += 1;
            }
        }
        drop(log);
        // Wake long-polling fetchers.
        let mut v = self.version.lock();
        *v += 1;
        self.data_cond.notify_all();
        (first_offset, append_time_ms, duplicates)
    }

    /// Log-end offset of a partition.
    pub fn end_offset(&self, partition: usize) -> u64 {
        let log = self.partitions[partition].lock();
        log.base + log.records.len() as u64
    }

    /// Offset of the earliest retained record.
    pub fn start_offset(&self, partition: usize) -> u64 {
        self.partitions[partition].lock().base
    }

    /// Read up to `max_records`/`max_bytes` records from `partition`
    /// starting at `offset`. Returns an empty vector when nothing is
    /// available.
    pub fn read(
        &self,
        partition: usize,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Vec<FetchedRecord> {
        let log = self.partitions[partition].lock();
        // Offsets below the retention horizon resume at the earliest
        // retained record (Kafka's earliest-offset reset).
        let start = (offset.max(log.base) - log.base) as usize;
        if start >= log.records.len() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for (i, rec) in log.records.iter().skip(start).enumerate() {
            if out.len() >= max_records {
                break;
            }
            // Always deliver at least one record, as Kafka does even when a
            // single record exceeds the fetch size.
            if !out.is_empty() && bytes + rec.value.len() > max_bytes {
                break;
            }
            bytes += rec.value.len();
            out.push(FetchedRecord {
                partition: partition as u32,
                offset: log.base + (start + i) as u64,
                value: rec.value.clone(),
                produce_time_ms: rec.produce_time_ms,
                append_time_ms: rec.append_time_ms,
            });
        }
        out
    }

    /// Block until the topic's version exceeds `seen` or the deadline
    /// passes; returns the current version.
    ///
    /// The predicate is re-checked in a loop: a wakeup only counts once the
    /// version has actually moved past `seen`, so spurious wakeups and
    /// notifications for appends the caller already observed cannot end the
    /// long-poll early. The loom model in `tests/loom.rs` checks the
    /// append/wait handshake for lost wakeups.
    pub fn wait_for_data(&self, seen: u64, timeout: std::time::Duration) -> u64 {
        let deadline = crayfish_sim::now() + timeout;
        let mut v = self.version.lock();
        while *v <= seen {
            let remaining = deadline.saturating_duration_since(crayfish_sim::now());
            if remaining.is_zero() {
                break;
            }
            let (guard, timed_out) = self.data_cond.wait_timeout(v, remaining);
            v = guard;
            if timed_out {
                break;
            }
        }
        *v
    }

    /// Current version counter.
    pub fn current_version(&self) -> u64 {
        *self.version.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_assigns_contiguous_offsets() {
        let t = Topic::new(2);
        let (o1, _) = t.append(0, vec![(Bytes::from_static(b"a"), 1.0)]);
        let (o2, _) = t.append(
            0,
            vec![
                (Bytes::from_static(b"b"), 2.0),
                (Bytes::from_static(b"c"), 3.0),
            ],
        );
        assert_eq!(o1, 0);
        assert_eq!(o2, 1);
        assert_eq!(t.end_offset(0), 3);
        assert_eq!(t.end_offset(1), 0);
    }

    #[test]
    fn append_time_is_monotonic_per_partition() {
        let t = Topic::new(1);
        let (_, t1) = t.append(0, vec![(Bytes::from_static(b"a"), 0.0)]);
        let (_, t2) = t.append(0, vec![(Bytes::from_static(b"b"), 0.0)]);
        assert!(t2 >= t1);
    }

    #[test]
    fn read_respects_limits_but_always_progresses() {
        let t = Topic::new(1);
        let big = Bytes::from(vec![0u8; 1000]);
        t.append(0, vec![(big.clone(), 0.0), (big.clone(), 0.0), (big, 0.0)]);
        // max_bytes smaller than one record: still returns one.
        let r = t.read(0, 0, 10, 10);
        assert_eq!(r.len(), 1);
        // max_bytes fits two.
        let r = t.read(0, 0, 10, 2000);
        assert_eq!(r.len(), 2);
        // max_records caps.
        let r = t.read(0, 0, 1, usize::MAX);
        assert_eq!(r.len(), 1);
        // Reading past the end yields nothing.
        assert!(t.read(0, 3, 10, usize::MAX).is_empty());
    }

    #[test]
    fn offsets_in_fetched_records_are_correct() {
        let t = Topic::new(1);
        t.append(
            0,
            vec![
                (Bytes::from_static(b"a"), 0.0),
                (Bytes::from_static(b"b"), 0.0),
            ],
        );
        let r = t.read(0, 1, 10, usize::MAX);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].offset, 1);
        assert_eq!(&r[0].value[..], b"b");
    }

    #[test]
    fn wait_for_data_wakes_on_append() {
        use std::sync::Arc;
        let t = Arc::new(Topic::new(1));
        let seen = t.current_version();
        let t2 = t.clone();
        let h =
            std::thread::spawn(move || t2.wait_for_data(seen, std::time::Duration::from_secs(5)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        t.append(0, vec![(Bytes::from_static(b"x"), 0.0)]);
        let v = h.join().unwrap();
        assert!(v > seen);
    }

    #[test]
    fn retention_evicts_old_records_and_offsets_survive() {
        let t = Topic::with_retention(1, 2500);
        let rec = Bytes::from(vec![0u8; 1000]);
        for _ in 0..5 {
            t.append(0, vec![(rec.clone(), 0.0)]);
        }
        // Cap is 2500 bytes -> at most 2 retained records.
        assert_eq!(t.end_offset(0), 5);
        assert_eq!(t.start_offset(0), 3);
        // Reading from an evicted offset resumes at the horizon.
        let r = t.read(0, 0, 10, usize::MAX);
        assert_eq!(r.first().unwrap().offset, 3);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn retention_never_evicts_the_last_record() {
        let t = Topic::with_retention(1, 10);
        t.append(0, vec![(Bytes::from(vec![0u8; 1000]), 0.0)]);
        assert_eq!(t.end_offset(0), 1);
        assert_eq!(t.start_offset(0), 0);
        let r = t.read(0, 0, 10, usize::MAX);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn dedup_drops_resent_prefix() {
        let t = Topic::new(1);
        let batch = vec![
            (Bytes::from_static(b"a"), 0.0),
            (Bytes::from_static(b"b"), 0.0),
        ];
        let (o1, _, d1) = t.append_dedup(0, 7, 0, batch.clone());
        assert_eq!((o1, d1), (0, 0));
        // Full re-send (lost ack): everything is a duplicate.
        let (_, _, d2) = t.append_dedup(0, 7, 0, batch.clone());
        assert_eq!(d2, 2);
        assert_eq!(t.end_offset(0), 2);
        // Partial overlap: one duplicate, one new.
        let (_, _, d3) = t.append_dedup(
            0,
            7,
            1,
            vec![
                (Bytes::from_static(b"b"), 0.0),
                (Bytes::from_static(b"c"), 0.0),
            ],
        );
        assert_eq!(d3, 1);
        assert_eq!(t.end_offset(0), 3);
        let vals: Vec<u8> = t
            .read(0, 0, 10, usize::MAX)
            .iter()
            .map(|r| r.value[0])
            .collect();
        assert_eq!(vals, b"abc".to_vec());
    }

    #[test]
    fn dedup_windows_are_per_producer_and_partition() {
        let t = Topic::new(2);
        let rec = vec![(Bytes::from_static(b"x"), 0.0)];
        t.append_dedup(0, 1, 0, rec.clone());
        // Different producer, same sequence range: not a duplicate.
        let (_, _, d) = t.append_dedup(0, 2, 0, rec.clone());
        assert_eq!(d, 0);
        // Same producer, different partition: independent window.
        let (_, _, d) = t.append_dedup(1, 1, 0, rec.clone());
        assert_eq!(d, 0);
        assert_eq!(t.end_offset(0), 2);
        assert_eq!(t.end_offset(1), 1);
    }

    #[test]
    fn dedup_accepts_gaps_after_dropped_batches() {
        let t = Topic::new(1);
        let rec = vec![(Bytes::from_static(b"x"), 0.0)];
        t.append_dedup(0, 1, 0, rec.clone());
        // The producer dropped sequences 1..3 (retry budget exhausted) and
        // moved on; the gap is accepted.
        let (_, _, d) = t.append_dedup(0, 1, 3, rec.clone());
        assert_eq!(d, 0);
        assert_eq!(t.end_offset(0), 2);
        // Re-sending the gap region now IS a duplicate (window advanced).
        let (_, _, d) = t.append_dedup(0, 1, 2, rec.clone());
        assert_eq!(d, 1);
    }

    #[test]
    fn wait_for_data_times_out() {
        let t = Topic::new(1);
        let v0 = t.current_version();
        let sw = crayfish_sim::Stopwatch::start();
        let v = t.wait_for_data(v0, std::time::Duration::from_millis(30));
        assert_eq!(v, v0);
        assert!(sw.elapsed_millis() >= 25.0);
    }
}
