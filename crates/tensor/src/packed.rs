//! Owning buffers for the blocked GEMM: pre-packed weight operands and
//! reusable packing scratch.
//!
//! The kernels in [`crate::kernels`] are allocation-free (enforced by the
//! repo's `hot-path-alloc` lint rule); every buffer they pack into comes
//! from here. Two lifetimes exist:
//!
//! * **Weights** are packed once — at executor plan-compile time — into
//!   [`PackedA`] (convolution weights, the left GEMM operand) or
//!   [`PackedB`] (dense weights, the right operand). Steady-state inference
//!   performs zero weight packing.
//! * **Activations** change per call and are packed into a [`GemmScratch`]
//!   owned by the caller (the executors keep one in their arena), which
//!   reuses its buffers across calls.
//!
//! Buffers are `Arc<Vec<f32>>` so the worker pool ([`crate::par`]) can
//! share them with its threads without copying; between calls the `Arc` is
//! unique again and `Arc::make_mut` reuses the existing allocation.

use std::cell::RefCell;

use crayfish_sync::Arc;

use crate::kernels::microkernel::padded_qk;
use crate::kernels::pack::{
    pack_a16_into, pack_a_into, pack_b16_into, pack_b_into, packed_a_len, packed_b_len,
    quant_a_len, quant_b_len, quantize_a_into, quantize_b_into,
};

/// A left-hand GEMM operand (`m×k`) packed once into `MR`-row strips.
/// Executor plans store convolution weights in this form.
#[derive(Debug, Clone, Default)]
pub struct PackedA {
    data: Arc<Vec<f32>>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Pack a row-major `m×k` matrix.
    pub fn pack(a: &[f32], m: usize, k: usize) -> PackedA {
        let mut data = vec![0.0f32; packed_a_len(m, k)];
        pack_a_into(a, m, k, &mut data);
        PackedA {
            data: Arc::new(data),
            m,
            k,
        }
    }

    /// Rows of the original matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Columns of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The packed panels.
    pub(crate) fn data(&self) -> &Arc<Vec<f32>> {
        &self.data
    }

    /// Scale one original row by `s` in place (rows are interleaved inside
    /// strips, stride `MR`). This is how conv+batch-norm folding rescales
    /// already-packed convolution weights per output channel.
    pub fn scale_row(&mut self, row: usize, s: f32) {
        use crate::kernels::microkernel::MR;
        assert!(row < self.m, "scale_row: row {row} of {}", self.m);
        let k = self.k;
        let data = Arc::make_mut(&mut self.data);
        let strip = &mut data[(row / MR) * k * MR..(row / MR + 1) * k * MR];
        let lane = row % MR;
        for p in 0..k {
            strip[p * MR + lane] *= s;
        }
    }

    /// Unpack back to a row-major `m×k` matrix (test/debug aid).
    pub fn unpack(&self) -> Vec<f32> {
        use crate::kernels::microkernel::MR;
        let mut out = vec![0.0f32; self.m * self.k];
        for row in 0..self.m {
            let strip = &self.data[(row / MR) * self.k * MR..];
            for p in 0..self.k {
                out[row * self.k + p] = strip[p * MR + row % MR];
            }
        }
        out
    }
}

/// A right-hand GEMM operand (`k×n`) packed once into `NR`-column strips.
/// Executor plans store dense-layer weights in this form.
#[derive(Debug, Clone, Default)]
pub struct PackedB {
    data: Arc<Vec<f32>>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Pack a row-major `k×n` matrix.
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedB {
        let mut data = vec![0.0f32; packed_b_len(k, n)];
        pack_b_into(b, k, n, &mut data);
        PackedB {
            data: Arc::new(data),
            k,
            n,
        }
    }

    /// Rows of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed panels.
    pub(crate) fn data(&self) -> &Arc<Vec<f32>> {
        &self.data
    }

    /// Unpack back to a row-major `k×n` matrix (used when re-quantizing an
    /// already-packed — possibly BN-folded — weight at plan-compile time,
    /// and as a test/debug aid).
    pub fn unpack(&self) -> Vec<f32> {
        use crate::kernels::microkernel::NR;
        let mut out = vec![0.0f32; self.k * self.n];
        for s in 0..self.n.div_ceil(NR) {
            let cols = NR.min(self.n - s * NR);
            for p in 0..self.k {
                let src = &self.data[s * self.k * NR + p * NR..][..cols];
                out[p * self.n + s * NR..p * self.n + s * NR + cols].copy_from_slice(src);
            }
        }
        out
    }
}

/// An `m×k` left GEMM operand quantized to per-channel symmetric int8 at
/// plan-compile time (convolution weights, one scale per output channel).
/// Values are int8-range but stored as `i16` — see
/// [`crate::kernels::quant`] for why — in the full-K row layout the int8
/// microkernel consumes.
#[derive(Debug, Clone, Default)]
pub struct QuantizedA {
    data: Arc<Vec<i16>>,
    scales: Arc<Vec<f32>>,
    m: usize,
    k: usize,
}

impl QuantizedA {
    /// Quantize a row-major `m×k` matrix, one scale per row.
    pub fn from_f32(a: &[f32], m: usize, k: usize) -> QuantizedA {
        let mut data = vec![0i16; quant_a_len(m, k)];
        let mut scales = vec![0.0f32; m];
        quantize_a_into(a, m, k, &mut data, &mut scales);
        QuantizedA {
            data: Arc::new(data),
            scales: Arc::new(scales),
            m,
            k,
        }
    }

    /// Rows of the original matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Columns of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The K-padded row stride of the panel.
    pub fn kp(&self) -> usize {
        padded_qk(self.k)
    }

    /// The quantized panel.
    pub(crate) fn data(&self) -> &[i16] {
        &self.data
    }

    /// Per-row scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantize back to a row-major `m×k` matrix (test/calibration aid).
    pub fn dequantize(&self) -> Vec<f32> {
        let kp = self.kp();
        let mut out = vec![0.0f32; self.m * self.k];
        for r in 0..self.m {
            let s = self.scales[r];
            for p in 0..self.k {
                out[r * self.k + p] = self.data[r * kp + p] as f32 * s;
            }
        }
        out
    }
}

/// A `k×n` right GEMM operand quantized to per-channel symmetric int8 at
/// plan-compile time (dense weights, one scale per output feature), stored
/// column-major with K padding (see [`QuantizedA`]).
#[derive(Debug, Clone, Default)]
pub struct QuantizedB {
    data: Arc<Vec<i16>>,
    scales: Arc<Vec<f32>>,
    k: usize,
    n: usize,
}

impl QuantizedB {
    /// Quantize a row-major `k×n` matrix, one scale per column.
    pub fn from_f32(b: &[f32], k: usize, n: usize) -> QuantizedB {
        let mut data = vec![0i16; quant_b_len(k, n)];
        let mut scales = vec![0.0f32; n];
        quantize_b_into(b, k, n, &mut data, &mut scales);
        QuantizedB {
            data: Arc::new(data),
            scales: Arc::new(scales),
            k,
            n,
        }
    }

    /// Rows of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The K-padded column stride of the panel.
    pub fn kp(&self) -> usize {
        padded_qk(self.k)
    }

    /// The quantized panel.
    pub(crate) fn data(&self) -> &[i16] {
        &self.data
    }

    /// Per-column scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Dequantize back to a row-major `k×n` matrix (test/calibration aid).
    pub fn dequantize(&self) -> Vec<f32> {
        let kp = self.kp();
        let mut out = vec![0.0f32; self.k * self.n];
        for j in 0..self.n {
            let s = self.scales[j];
            for p in 0..self.k {
                out[p * self.n + j] = self.data[j * kp + p] as f32 * s;
            }
        }
        out
    }
}

/// [`PackedA`] with f16 storage: identical strip geometry, half the bytes.
/// Expanded back to f32 into the caller's scratch before the (unchanged)
/// f32 microkernel consumes it.
#[derive(Debug, Clone, Default)]
pub struct PackedA16 {
    data: Arc<Vec<u16>>,
    m: usize,
    k: usize,
}

impl PackedA16 {
    /// Pack a row-major `m×k` matrix as f16 bits.
    pub fn pack(a: &[f32], m: usize, k: usize) -> PackedA16 {
        let mut data = vec![0u16; packed_a_len(m, k)];
        pack_a16_into(a, m, k, &mut data);
        PackedA16 {
            data: Arc::new(data),
            m,
            k,
        }
    }

    /// Rows of the original matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Columns of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The packed f16 panels.
    pub(crate) fn data(&self) -> &[u16] {
        &self.data
    }
}

/// [`PackedB`] with f16 storage (see [`PackedA16`]).
#[derive(Debug, Clone, Default)]
pub struct PackedB16 {
    data: Arc<Vec<u16>>,
    k: usize,
    n: usize,
}

impl PackedB16 {
    /// Pack a row-major `k×n` matrix as f16 bits.
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedB16 {
        let mut data = vec![0u16; packed_b_len(k, n)];
        pack_b16_into(b, k, n, &mut data);
        PackedB16 {
            data: Arc::new(data),
            k,
            n,
        }
    }

    /// Rows of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed f16 panels.
    pub(crate) fn data(&self) -> &[u16] {
        &self.data
    }
}

/// A convolution weight operand at one of the supported precisions — the
/// payload of the precision-dispatched conv entry point
/// ([`crate::kernels::conv::conv2d_dispatch_into`]). Executor plans store
/// one per conv step.
#[derive(Debug, Clone)]
pub enum ConvWeights {
    /// Full precision: the packed-panel f32 layout.
    F32(PackedA),
    /// Per-output-channel symmetric int8.
    Int8(QuantizedA),
    /// f16 storage, f32 accumulate.
    F16(PackedA16),
}

impl ConvWeights {
    /// Output channels (GEMM rows).
    pub fn out_c(&self) -> usize {
        match self {
            ConvWeights::F32(w) => w.m(),
            ConvWeights::Int8(w) => w.m(),
            ConvWeights::F16(w) => w.m(),
        }
    }

    /// GEMM depth (`in_c · k · k`).
    pub fn krows(&self) -> usize {
        match self {
            ConvWeights::F32(w) => w.k(),
            ConvWeights::Int8(w) => w.k(),
            ConvWeights::F16(w) => w.k(),
        }
    }

    /// Short label for reports ("f32" / "int8" / "f16").
    pub fn precision_name(&self) -> &'static str {
        match self {
            ConvWeights::F32(_) => "f32",
            ConvWeights::Int8(_) => "int8",
            ConvWeights::F16(_) => "f16",
        }
    }
}

/// A dense-layer weight operand at one of the supported precisions — the
/// payload of the precision-dispatched dense entry point
/// ([`crate::kernels::gemm::dense_dispatch_into`]).
#[derive(Debug, Clone)]
pub enum DenseWeights {
    /// Full precision: the packed-panel f32 layout.
    F32(PackedB),
    /// Per-output-feature symmetric int8.
    Int8(QuantizedB),
    /// f16 storage, f32 accumulate.
    F16(PackedB16),
}

impl DenseWeights {
    /// Input features (GEMM depth).
    pub fn inf(&self) -> usize {
        match self {
            DenseWeights::F32(w) => w.k(),
            DenseWeights::Int8(w) => w.k(),
            DenseWeights::F16(w) => w.k(),
        }
    }

    /// Output features (GEMM columns).
    pub fn outf(&self) -> usize {
        match self {
            DenseWeights::F32(w) => w.n(),
            DenseWeights::Int8(w) => w.n(),
            DenseWeights::F16(w) => w.n(),
        }
    }

    /// Short label for reports ("f32" / "int8" / "f16").
    pub fn precision_name(&self) -> &'static str {
        match self {
            DenseWeights::F32(_) => "f32",
            DenseWeights::Int8(_) => "int8",
            DenseWeights::F16(_) => "f16",
        }
    }
}

/// Reusable packing scratch for the per-call GEMM operands (activations,
/// `im2col` matrices). Holds its buffers across calls so steady-state
/// inference does not allocate.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pa: Arc<Vec<f32>>,
    pb: Arc<Vec<f32>>,
    /// Quantized per-call operand (int8 path activations / patches).
    qa: Vec<i16>,
    /// Per-channel activation scales for the int8 path.
    qs: Vec<f32>,
}

impl GemmScratch {
    pub fn new() -> GemmScratch {
        GemmScratch::default()
    }

    /// Borrow the `A`-side buffer at exactly `len` elements, reusing the
    /// allocation when capacity suffices. Between GEMM calls the `Arc` is
    /// unique, so `make_mut` never clones on the steady-state path.
    pub(crate) fn pa_mut(&mut self, len: usize) -> &mut [f32] {
        let v = Arc::make_mut(&mut self.pa);
        v.resize(len, 0.0);
        &mut v[..]
    }

    /// Borrow the `B`-side buffer at exactly `len` elements (see
    /// [`GemmScratch::pa_mut`]).
    pub(crate) fn pb_mut(&mut self, len: usize) -> &mut [f32] {
        let v = Arc::make_mut(&mut self.pb);
        v.resize(len, 0.0);
        &mut v[..]
    }

    pub(crate) fn pa_arc(&self) -> &Arc<Vec<f32>> {
        &self.pa
    }

    pub(crate) fn pb_arc(&self) -> &Arc<Vec<f32>> {
        &self.pb
    }

    /// Borrow the quantized-operand buffer and its per-channel scale buffer
    /// together at exactly the requested lengths (one method so both halves
    /// can be mutably live at once). Reuses the allocations across calls.
    pub(crate) fn qa_qs_mut(&mut self, qa_len: usize, qs_len: usize) -> (&mut [i16], &mut [f32]) {
        self.qa.resize(qa_len, 0);
        self.qs.resize(qs_len, 0.0);
        (&mut self.qa[..], &mut self.qs[..])
    }

    /// The quantized per-call operand filled by [`GemmScratch::qa_qs_mut`].
    pub(crate) fn qa(&self) -> &[i16] {
        &self.qa
    }

    /// The per-channel activation scales filled by
    /// [`GemmScratch::qa_qs_mut`].
    pub(crate) fn qs(&self) -> &[f32] {
        &self.qs
    }

    /// `(ptr, capacity)` of each internal buffer — lets arena-reuse tests
    /// assert that steady-state calls touch no allocator.
    pub fn fingerprint(&self) -> [(usize, usize); 4] {
        [
            (self.pa.as_ptr() as usize, self.pa.capacity()),
            (self.pb.as_ptr() as usize, self.pb.capacity()),
            (self.qa.as_ptr() as usize, self.qa.capacity()),
            (self.qs.as_ptr() as usize, self.qs.capacity()),
        ]
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// Run `f` with this thread's shared [`GemmScratch`] — the compatibility
/// path for callers of the plain `gemm()` signature, which has nowhere to
/// thread a scratch through. Hot paths own their scratch instead.
pub fn with_tls_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::microkernel::MR;

    #[test]
    fn packed_a_roundtrips_and_scales_rows() {
        let m = MR + 2;
        let k = 5;
        let a: Vec<f32> = (0..m * k).map(|v| v as f32 + 1.0).collect();
        let mut pa = PackedA::pack(&a, m, k);
        assert_eq!(pa.unpack(), a);
        pa.scale_row(MR + 1, 2.0);
        let got = pa.unpack();
        for (i, (&x, &orig)) in got.iter().zip(&a).enumerate() {
            let row = i / k;
            let expect = if row == MR + 1 { orig * 2.0 } else { orig };
            assert_eq!(x, expect, "element {i}");
        }
    }

    #[test]
    fn scratch_reuses_its_allocation() {
        let mut s = GemmScratch::new();
        s.pa_mut(1024).fill(1.0);
        s.qa_qs_mut(2048, 64);
        let fp = s.fingerprint();
        s.pa_mut(512).fill(2.0);
        s.pa_mut(1024);
        s.qa_qs_mut(1024, 32);
        s.qa_qs_mut(2048, 64);
        assert_eq!(s.fingerprint(), fp, "scratch reallocated on shrink/grow");
    }

    #[test]
    fn packed_b_unpacks_to_original() {
        use crate::kernels::microkernel::NR;
        let k = 5;
        let n = NR + 3;
        let b: Vec<f32> = (0..k * n).map(|v| v as f32 * 0.5 - 7.0).collect();
        let pb = PackedB::pack(&b, k, n);
        assert_eq!(pb.unpack(), b);
    }

    #[test]
    fn quantized_a_dequantizes_within_half_step() {
        let m = 3;
        let k = 7;
        let a: Vec<f32> = (0..m * k).map(|v| (v as f32 - 10.0) * 0.37).collect();
        let qa = QuantizedA::from_f32(&a, m, k);
        assert_eq!((qa.m(), qa.k()), (m, k));
        let back = qa.dequantize();
        for r in 0..m {
            let s = qa.scales()[r];
            for p in 0..k {
                let err = (back[r * k + p] - a[r * k + p]).abs();
                assert!(err <= s * 0.5 + 1e-6, "row {r} col {p}: err {err}");
            }
        }
    }

    #[test]
    fn quantized_b_dequantizes_within_half_step() {
        let k = 5;
        let n = 6;
        let b: Vec<f32> = (0..k * n).map(|v| (v as f32 - 14.0) * 0.21).collect();
        let qb = QuantizedB::from_f32(&b, k, n);
        assert_eq!((qb.k(), qb.n()), (k, n));
        let back = qb.dequantize();
        for j in 0..n {
            let s = qb.scales()[j];
            for p in 0..k {
                let err = (back[p * n + j] - b[p * n + j]).abs();
                assert!(err <= s * 0.5 + 1e-6, "row {p} col {j}: err {err}");
            }
        }
    }

    #[test]
    fn packed16_preserves_f16_exact_values() {
        let m = MR + 1;
        let k = 4;
        // Small integers are exact in f16, so the half-width panels must
        // reproduce the f32 packing bit-for-bit after expansion.
        let a: Vec<f32> = (0..m * k).map(|v| v as f32 - 8.0).collect();
        let pa = PackedA::pack(&a, m, k);
        let pa16 = PackedA16::pack(&a, m, k);
        assert_eq!((pa16.m(), pa16.k()), (m, k));
        let expanded: Vec<f32> = pa16
            .data()
            .iter()
            .map(|&b| crate::kernels::quant::f16_bits_to_f32(b))
            .collect();
        assert_eq!(expanded[..], pa.data()[..]);

        let pb = PackedB::pack(&a, m, k);
        let pb16 = PackedB16::pack(&a, m, k);
        assert_eq!((pb16.k(), pb16.n()), (m, k));
        let expanded: Vec<f32> = pb16
            .data()
            .iter()
            .map(|&b| crate::kernels::quant::f16_bits_to_f32(b))
            .collect();
        assert_eq!(expanded[..], pb.data()[..]);
    }
}
