//! Prometheus text-exposition endpoint over localhost TCP.
//!
//! Mirrors the `crayfish-serving` listener pattern: a plain
//! `std::net::TcpListener` on a loopback port with a small accept loop —
//! enough HTTP/1.1 to satisfy `curl`, a Prometheus scraper, and
//! `crayfish-top`, with no framework dependency.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::ObsHandle;

/// Conventional fixed port used by examples so `crayfish-top` works with
/// no arguments; tests use an ephemeral port (`serve`) instead.
pub const DEFAULT_PORT: u16 = 9184;

/// A running exporter. Dropping it (or calling [`Exporter::stop`]) shuts
/// the listener down.
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl Exporter {
    /// The bound address, e.g. to hand to `crayfish-top --addr`.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Convenience `http://…/metrics` form of [`Exporter::addr`].
    pub fn url(&self) -> String {
        format!("http://{}/metrics", self.addr)
    }

    /// Stop accepting and join the listener thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.thread.take() {
            // Poke the listener so a blocking accept (if any) returns.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `obs` on an ephemeral loopback port.
pub fn serve(obs: &ObsHandle) -> std::io::Result<Exporter> {
    serve_on(obs, "127.0.0.1:0")
}

/// Serve `obs` on a specific address (e.g. `127.0.0.1:9184`).
pub fn serve_on(obs: &ObsHandle, addr: &str) -> std::io::Result<Exporter> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let obs = obs.clone();
    let thread = thread::Builder::new()
        .name("obs-exporter".into())
        .spawn(move || accept_loop(listener, obs, thread_stop))
        .expect("spawn exporter thread");
    Ok(Exporter {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn accept_loop(listener: TcpListener, obs: ObsHandle, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // Scrapes are rare and the render is cheap; serve inline.
                let _ = handle_scrape(stream, &obs);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(20));
            }
            Err(_) => break,
        }
    }
}

fn handle_scrape(mut stream: TcpStream, obs: &ObsHandle) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;

    // Read until the end of the request head. The request line/headers are
    // irrelevant: every path serves the metrics payload.
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
            break;
        }
    }

    let body = obs.render_prometheus();
    let response = format!(
        "HTTP/1.1 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Fetch and parse one scrape from a running exporter. Used by
/// `crayfish-top` and tests; kept here so both share the exact client.
pub fn scrape(addr: &str) -> Result<Vec<crate::text::Sample>, String> {
    let body = fetch_body(addr)?;
    crate::text::parse(&body)
}

/// Fetch the raw exposition body from `addr` (host:port).
pub fn fetch_body(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    let request = format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(format!(
            "unexpected status: {}",
            head.lines().next().unwrap_or("")
        )),
        None => Err("malformed HTTP response".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Stage;

    #[test]
    fn serves_parseable_metrics_over_tcp() {
        let obs = ObsHandle::enabled();
        obs.observe_stage_ns(Stage::Emit, 42_000);
        obs.counter("records_out").add(9);

        let exporter = serve(&obs).expect("bind exporter");
        let addr = exporter.addr().to_string();
        let samples = scrape(&addr).expect("scrape parses");
        assert!(samples
            .iter()
            .any(|s| s.name == "crayfish_records_out_total" && s.value == 9.0));
        let emit_count = samples
            .iter()
            .find(|s| {
                s.name == "crayfish_stage_latency_seconds_count" && s.label("stage") == Some("emit")
            })
            .expect("emit stage serialized");
        assert_eq!(emit_count.value, 1.0);

        // Metrics recorded after the exporter started appear on the next
        // scrape: the endpoint is live, not a snapshot.
        obs.counter("records_out").add(1);
        let again = scrape(&addr).expect("second scrape");
        assert!(again
            .iter()
            .any(|s| s.name == "crayfish_records_out_total" && s.value == 10.0));

        exporter.stop();
        assert!(
            scrape(&addr).is_err(),
            "stopped exporter no longer accepts scrapes"
        );
    }
}
