//! **Table 2** — pre-trained model statistics: input/output shapes,
//! parameter counts, and serialized size in each of the four formats.

use crayfish_bench::{save_json, Table};
use crayfish_models::{formats, ModelFormat, ModelSpec};

/// Paper-reported sizes in KB, per (model, format).
fn paper_size_kb(model: ModelSpec, format: ModelFormat) -> f64 {
    match (model, format) {
        (ModelSpec::Ffnn, ModelFormat::Onnx) => 113.0,
        (ModelSpec::Ffnn, ModelFormat::SavedModel) => 508.0,
        (ModelSpec::Ffnn, ModelFormat::Torch) => 115.0,
        (ModelSpec::Ffnn, ModelFormat::H5) => 133.0,
        (ModelSpec::Resnet50, ModelFormat::Onnx) => 97.0 * 1024.0,
        (ModelSpec::Resnet50, ModelFormat::SavedModel) => 101.0 * 1024.0,
        (ModelSpec::Resnet50, ModelFormat::Torch) => 98.0 * 1024.0,
        (ModelSpec::Resnet50, ModelFormat::H5) => 98.0 * 1024.0,
        _ => 0.0,
    }
}

fn fmt_kb(bytes: usize) -> String {
    let kb = bytes as f64 / 1024.0;
    if kb >= 1024.0 {
        format!("{:.1} MB", kb / 1024.0)
    } else {
        format!("{kb:.0} KB")
    }
}

fn main() {
    let mut table = Table::new(
        "Table 2: model statistics (paper value in parentheses)",
        &[
            "model", "input", "output", "params", "format", "size", "(paper)",
        ],
    );
    let mut dump = Vec::new();
    for model in [ModelSpec::Ffnn, ModelSpec::Resnet50] {
        eprintln!("building {} ...", model.name());
        let graph = model.build(42);
        let params = graph.param_count();
        for format in ModelFormat::ALL {
            let bytes = formats::encode(&graph, format).expect("encode").len();
            table.row(vec![
                model.name().to_string(),
                format!("{}", model.input_shape()),
                format!("{}x1", model.classes()),
                if params >= 1_000_000 {
                    format!("{:.1}M", params as f64 / 1e6)
                } else {
                    format!("{:.1}K", params as f64 / 1e3)
                },
                format.name().to_string(),
                fmt_kb(bytes),
                format!(
                    "({})",
                    fmt_kb((paper_size_kb(model, format) * 1024.0) as usize)
                ),
            ]);
            dump.push(serde_json::json!({
                "model": model.name(),
                "format": format.name(),
                "params": params,
                "bytes": bytes,
                "paper_kb": paper_size_kb(model, format),
            }));
        }
    }
    table.print();
    println!("\nPaper (Table 2): FFNN 28K params; ResNet50 23M params (canonical 25.6M);");
    println!("ONNX most compact, SavedModel carries a large fixed metadata overhead.");
    save_json("table2", &dump);
}
