//! **Figure 8** — periodic bursts: ONNX (embedded) vs TF-Serving
//! (external) on the Flink-style engine, FFNN, `bsz = 1`, `mp = 1`.
//!
//! Procedure follows §5.1.4: measure each configuration's sustainable
//! throughput (ST), then drive it at 110 % of ST during bursts and 70 %
//! otherwise, and report the time latency needs to restabilise after each
//! burst. The paper uses bd = 30 s / tbb = 120 s; the quick profile scales
//! the cycle down while keeping the 110 %/70 % ratios.

use crayfish::framework::metrics::{bucketize, recovery_time_s, summarize};
use crayfish::prelude::*;
use crayfish_bench::*;

fn main() {
    let flink = FlinkProcessor::new();
    let (bd, tbb, cycles) = match profile() {
        Profile::Quick => (3.0f64, 9.0f64, 3usize),
        Profile::Paper => (30.0, 120.0, 3),
    };
    let tools = [
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ];
    let mut table = Table::new(
        "Figure 8: burst recovery on Flink (FFNN, bsz=1, mp=1, 110%/70% of ST)",
        &[
            "serving tool",
            "ST (ev/s)",
            "burst",
            "recovery (s)",
            "paper avg (s)",
        ],
    );
    let mut dump = Vec::new();
    for (tool, serving) in tools {
        // Step 1: sustainable throughput.
        let mut st_spec = base_spec(ModelSpec::Ffnn, serving);
        st_spec.workload = Workload::Constant {
            rate: OVERLOAD_FFNN,
        };
        let st = run(&format!("fig8/{tool}/st"), &flink, &st_spec).throughput_eps;

        // Step 2: bursty run.
        let mut spec = base_spec(ModelSpec::Ffnn, serving);
        spec.workload = Workload::Bursty {
            base: 0.7 * st,
            burst: 1.1 * st,
            burst_secs: bd,
            between_secs: tbb,
        };
        spec.warmup_fraction = 0.0;
        spec.duration = std::time::Duration::from_secs_f64((bd + tbb) * cycles as f64 + 2.0);
        let result = run(&format!("fig8/{tool}/bursty"), &flink, &spec);
        let buckets = bucketize(&result.samples, 1_000.0);

        // Baseline latency over the first (quiet) half-cycle.
        let t0 = result.samples.first().map(|s| s.end_ms).unwrap_or(0.0);
        let baseline: Vec<f64> = result
            .samples
            .iter()
            .filter(|s| s.end_ms - t0 < tbb * 500.0)
            .map(|s| s.latency_ms)
            .collect();
        let baseline = summarize(&baseline).p50.max(0.1);

        let paper_avg = if tool.starts_with("onnx") {
            46.52
        } else {
            56.15
        };
        let mut recoveries = Vec::new();
        for cycle in 0..cycles {
            let burst_end_ms = (cycle as f64 * (bd + tbb) + tbb + bd) * 1_000.0;
            let rec = recovery_time_s(&buckets, burst_end_ms, baseline, 1.5, 2);
            let cell = match rec {
                Some(r) => {
                    recoveries.push(r);
                    format!("{r:.1}")
                }
                None => "n/a".into(),
            };
            table.row(vec![
                tool.into(),
                eps(st),
                format!("#{}", cycle + 1),
                cell,
                format!("{paper_avg:.1}"),
            ]);
        }
        let avg = if recoveries.is_empty() {
            f64::NAN
        } else {
            recoveries.iter().sum::<f64>() / recoveries.len() as f64
        };
        eprintln!(
            "  {tool}: avg recovery {avg:.2} s over {} bursts",
            recoveries.len()
        );
        dump.push(serde_json::json!({
            "tool": tool,
            "sustainable_eps": st,
            "baseline_p50_ms": baseline,
            "recoveries_s": recoveries,
            "paper_avg_s": paper_avg,
        }));
    }
    table.print();
    println!("\nPaper shape: TF-Serving recovers faster on its best burst but with higher");
    println!("variation between bursts; ONNX is slower but steadier. (Paper cycle is");
    println!("30 s/120 s; the quick profile scales the cycle, so absolute recovery");
    println!("times scale with it.)");
    save_json("fig8", &dump);
}
