//! `crayfish-node` — one broker node as a standalone process.
//!
//! Speaks the [`crayfish_broker::BrokerNode`] replication protocol on
//! `--listen`, replicating to every `--peer id=addr` before acking
//! client appends. Node 0 of a fresh cluster is started with `--leader`
//! (bootstrap leadership at epoch 0); later leaders are promoted by
//! failover-aware clients. The process runs until killed — the parent
//! experiment owns its lifetime.
//!
//! ```text
//! crayfish-node --id 0 --listen 127.0.0.1:4100 --min-isr 2 --leader \
//!               --peer 1=127.0.0.1:4101 --peer 2=127.0.0.1:4102
//! ```

#![forbid(unsafe_code)]

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use crayfish_broker::BrokerNode;
use crayfish_chaos::ChaosHandle;
use crayfish_obs::ObsHandle;

struct Args {
    id: u32,
    listen: SocketAddr,
    min_isr: u32,
    leader: bool,
    peers: Vec<(u32, SocketAddr)>,
}

fn usage() -> ! {
    eprintln!(
        "usage: crayfish-node --id N --listen ADDR [--min-isr N] [--leader] [--peer ID=ADDR]..."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut id = None;
    let mut listen = None;
    let mut min_isr = 1u32;
    let mut leader = false;
    let mut peers = Vec::new();
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("crayfish-node: {name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--id" => id = value("--id").parse().ok(),
            "--listen" => listen = value("--listen").parse().ok(),
            "--min-isr" => min_isr = value("--min-isr").parse().unwrap_or(1),
            "--leader" => leader = true,
            "--peer" => {
                let v = value("--peer");
                let Some((pid, paddr)) = v.split_once('=') else {
                    usage()
                };
                match (pid.parse(), paddr.parse()) {
                    (Ok(p), Ok(a)) => peers.push((p, a)),
                    _ => usage(),
                }
            }
            _ => usage(),
        }
    }
    let (Some(id), Some(listen)) = (id, listen) else {
        usage()
    };
    Args {
        id,
        listen,
        min_isr,
        leader,
        peers,
    }
}

fn main() {
    let args = parse_args();
    let chaos = ChaosHandle::disabled();
    let mut node = BrokerNode::new(args.id, args.min_isr, ObsHandle::disabled(), chaos.clone());
    for &(pid, paddr) in &args.peers {
        node.add_tcp_peer(pid, paddr, chaos.clone());
    }
    if args.leader {
        node.make_leader(0);
    }
    let node = Arc::new(node);
    // Long-polls park a worker per waiting client; size the pool for a
    // handful of producers/consumers plus replication traffic.
    let _server = match node.serve(args.listen, 16) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("crayfish-node {}: serve {}: {e}", args.id, args.listen);
            std::process::exit(1);
        }
    };
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
