//! Broker error type.

use std::fmt;

/// Errors returned by broker operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// The topic does not exist.
    UnknownTopic(String),
    /// The partition index is out of range for the topic.
    UnknownPartition {
        /// Topic name.
        topic: String,
        /// Requested partition.
        partition: u32,
    },
    /// A topic with this name already exists.
    TopicExists(String),
    /// The producer has been closed.
    ProducerClosed,
    /// A fetch referenced an offset beyond the log end (only possible with
    /// explicit seeks).
    OffsetOutOfRange {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Requested offset.
        offset: u64,
        /// Current log end.
        end: u64,
    },
    /// The topic's partitions are temporarily unavailable (fault injection:
    /// a partition-outage window, or a lost append ack). Transient — safe
    /// to retry.
    Unavailable {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
    },
    /// A client-side fabric failure: a producer sender thread could not be
    /// spawned or panicked. Terminal for the client that hit it.
    Fabric(String),
}

impl BrokerError {
    /// Whether retrying the operation can succeed. Producers retry
    /// transient errors with backoff; everything else is terminal.
    pub fn is_transient(&self) -> bool {
        matches!(self, BrokerError::Unavailable { .. })
    }
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            BrokerError::UnknownPartition { topic, partition } => {
                write!(f, "unknown partition {partition} of topic {topic}")
            }
            BrokerError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            BrokerError::ProducerClosed => write!(f, "producer closed"),
            BrokerError::OffsetOutOfRange {
                topic,
                partition,
                offset,
                end,
            } => write!(
                f,
                "offset {offset} out of range for {topic}/{partition} (log end {end})"
            ),
            BrokerError::Unavailable { topic, partition } => {
                write!(f, "partition {partition} of topic {topic} unavailable")
            }
            BrokerError::Fabric(msg) => write!(f, "client fabric failure: {msg}"),
        }
    }
}

impl std::error::Error for BrokerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_topic() {
        assert!(BrokerError::UnknownTopic("in".into())
            .to_string()
            .contains("in"));
    }

    #[test]
    fn only_unavailable_is_transient() {
        assert!(BrokerError::Unavailable {
            topic: "in".into(),
            partition: 0
        }
        .is_transient());
        assert!(!BrokerError::UnknownTopic("in".into()).is_transient());
        assert!(!BrokerError::ProducerClosed.is_transient());
    }
}
