//! Wire protocols for inference requests and responses.
//!
//! * **gRPC-like** — length-prefixed binary frames with a compact tensor
//!   encoding (dims + little-endian `f32` data), standing in for
//!   protobuf-over-HTTP/2. Used by the TF-Serving and TorchServe analogs,
//!   matching the paper's use of their gRPC APIs.
//! * **HTTP-like** — minimal HTTP/1.1 with a JSON body
//!   (`{"shape": [...], "data": [...]}`), standing in for Ray Serve's HTTP
//!   ingress. The JSON encode/decode on both sides is *real* work and one of
//!   the reasons the paper's Ray Serve numbers trail the gRPC servers.

use std::io::{BufRead, BufReader, Read, Write};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crayfish_tensor::Tensor;

use crate::error::ServingError;
use crate::Result;

pub use crayfish_net::MAX_FRAME_BYTES;

// ---------------------------------------------------------------------------
// gRPC-like binary frames
// ---------------------------------------------------------------------------

/// Encode a tensor into the compact binary payload.
pub fn encode_tensor_binary(t: &Tensor) -> Vec<u8> {
    let dims = t.shape().dims();
    let mut out = Vec::with_capacity(2 + dims.len() * 4 + t.numel() * 4);
    out.push(0u8); // status: ok
    out.push(dims.len() as u8);
    for &d in dims {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encode an error payload.
pub fn encode_error_binary(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(1u8); // status: error
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Status byte for an admission-control shed (gRPC-style RESOURCE_EXHAUSTED).
const OVERLOADED: u8 = 3;

/// Encode an overload payload: the request was shed at admission and may
/// be retried after `retry_after`. The hint travels as whole milliseconds
/// (u32 LE), saturating at ~49 days.
pub fn encode_overloaded_binary(retry_after: Duration) -> Vec<u8> {
    let ms = u32::try_from(retry_after.as_millis()).unwrap_or(u32::MAX);
    let mut out = Vec::with_capacity(5);
    out.push(OVERLOADED);
    out.extend_from_slice(&ms.to_le_bytes());
    out
}

/// Decode a binary payload into a tensor, or surface the remote error.
pub fn decode_tensor_binary(payload: &[u8]) -> Result<Tensor> {
    let (&status, rest) = payload
        .split_first()
        .ok_or_else(|| ServingError::Protocol("empty payload".into()))?;
    if status == 1 {
        return Err(ServingError::Remote(
            String::from_utf8_lossy(rest).into_owned(),
        ));
    }
    if status == OVERLOADED {
        let ms = rest
            .first_chunk::<4>()
            .map(|b| u32::from_le_bytes(*b))
            .ok_or_else(|| ServingError::Protocol("truncated overload hint".into()))?;
        return Err(ServingError::Overloaded {
            retry_after: Duration::from_millis(u64::from(ms)),
        });
    }
    if status != 0 {
        return Err(ServingError::Protocol(format!("bad status byte {status}")));
    }
    let (&ndim, mut rest) = rest
        .split_first()
        .ok_or_else(|| ServingError::Protocol("missing ndim".into()))?;
    let mut dims = Vec::with_capacity(ndim as usize);
    for _ in 0..ndim {
        let (head, tail) = rest
            .split_at_checked(4)
            .ok_or_else(|| ServingError::Protocol("truncated dims".into()))?;
        dims.push(u32::from_le_bytes([head[0], head[1], head[2], head[3]]) as usize);
        rest = tail;
    }
    let numel: usize = dims.iter().product();
    if rest.len() != numel * 4 {
        return Err(ServingError::Protocol(format!(
            "data length {} != {} elements",
            rest.len() / 4,
            numel
        )));
    }
    let data = rest
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Tensor::from_vec(dims, data).map_err(|e| ServingError::Protocol(format!("bad tensor: {e}")))
}

/// Marker byte for a named-model request (multi-model serving).
const NAMED_REQUEST: u8 = 2;

/// Encode a scoring request, optionally addressed to a named model of a
/// multi-model server. `None` targets the server's sole deployed model.
pub fn encode_request_binary(model: Option<&str>, t: &Tensor) -> Vec<u8> {
    match model {
        None => encode_tensor_binary(t),
        Some(name) => {
            let tensor = encode_tensor_binary(t);
            let name = name.as_bytes();
            let mut out = Vec::with_capacity(2 + name.len() + tensor.len());
            out.push(NAMED_REQUEST);
            out.push(name.len().min(255) as u8);
            out.extend_from_slice(&name[..name.len().min(255)]);
            out.extend_from_slice(&tensor);
            out
        }
    }
}

/// Decode a scoring request: either a bare tensor (single-model) or a
/// named-model request.
pub fn decode_request_binary(payload: &[u8]) -> Result<(Option<String>, Tensor)> {
    match payload.first() {
        Some(&NAMED_REQUEST) => {
            let rest = &payload[1..];
            let (&name_len, rest) = rest
                .split_first()
                .ok_or_else(|| ServingError::Protocol("missing model name length".into()))?;
            let (name, tensor_bytes) = rest
                .split_at_checked(name_len as usize)
                .ok_or_else(|| ServingError::Protocol("truncated model name".into()))?;
            let name = std::str::from_utf8(name)
                .map_err(|_| ServingError::Protocol("model name not utf-8".into()))?
                .to_string();
            Ok((Some(name), decode_tensor_binary(tensor_bytes)?))
        }
        _ => Ok((None, decode_tensor_binary(payload)?)),
    }
}

/// Write one length-prefixed frame. Delegates to the shared
/// `crayfish-net` codec; the error surfaces in serving's taxonomy.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    Ok(crayfish_net::write_frame(w, payload)?)
}

/// Build one length-prefixed frame as a byte vector — what `write_frame`
/// puts on the wire, for transports (the reactor) that queue response
/// bytes instead of writing them inline.
pub fn frame_bytes(payload: &[u8]) -> Result<Vec<u8>> {
    Ok(crayfish_net::frame_bytes(payload)?)
}

/// Read one length-prefixed frame. Returns `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    Ok(crayfish_net::read_frame(r)?)
}

// ---------------------------------------------------------------------------
// HTTP/1.1-like with JSON bodies
// ---------------------------------------------------------------------------

/// The JSON tensor body used by the HTTP protocol.
#[derive(Debug, Serialize, Deserialize)]
pub struct JsonTensor {
    /// Tensor dimensions.
    pub shape: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f32>,
}

impl JsonTensor {
    /// Convert a tensor to its JSON form.
    pub fn from_tensor(t: &Tensor) -> Self {
        JsonTensor {
            shape: t.shape().dims().to_vec(),
            data: t.data().to_vec(),
        }
    }

    /// Convert back to a tensor.
    pub fn into_tensor(self) -> Result<Tensor> {
        Tensor::from_vec(self.shape, self.data)
            .map_err(|e| ServingError::Protocol(format!("bad tensor: {e}")))
    }
}

/// Build the raw bytes of an HTTP request carrying a JSON tensor.
pub fn http_request_bytes(t: &Tensor) -> Result<Vec<u8>> {
    let body = serde_json::to_vec(&JsonTensor::from_tensor(t))
        .map_err(|e| ServingError::Protocol(format!("json encode: {e}")))?;
    let mut out = Vec::with_capacity(body.len() + 128);
    write!(
        out,
        "POST /infer HTTP/1.1\r\nHost: crayfish\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    out.extend_from_slice(&body);
    Ok(out)
}

/// Write an HTTP request carrying a JSON tensor.
pub fn write_http_request(w: &mut impl Write, t: &Tensor) -> Result<()> {
    w.write_all(&http_request_bytes(t)?)?;
    w.flush()?;
    Ok(())
}

/// Write an HTTP response. `Ok` bodies carry the tensor JSON; errors a 500
/// with the message.
pub fn write_http_response(
    w: &mut impl Write,
    result: std::result::Result<&Tensor, &str>,
) -> Result<()> {
    let (status, body) = match result {
        Ok(t) => (
            "200 OK",
            serde_json::to_vec(&JsonTensor::from_tensor(t))
                .map_err(|e| ServingError::Protocol(format!("json encode: {e}")))?,
        ),
        Err(msg) => ("500 Internal Server Error", msg.as_bytes().to_vec()),
    };
    write!(
        w,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Build the raw bytes of a `503 Service Unavailable` response for an
/// admission-control shed. Carries the drain-time hint twice: the
/// standard `Retry-After` header in whole seconds (rounded up, as the RFC
/// only allows integral seconds) and a `Retry-After-Ms` extension header
/// with millisecond precision, which our client prefers.
pub fn http_overloaded_bytes(retry_after: Duration) -> Vec<u8> {
    let ms = u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX);
    let secs = ms.div_ceil(1000);
    let body = b"overloaded";
    let mut out = Vec::with_capacity(160);
    // The Vec writer is infallible; an Err here is unreachable.
    let _ = write!(
        out,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: text/plain\r\nRetry-After: {secs}\r\nRetry-After-Ms: {ms}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    out.extend_from_slice(body);
    out
}

/// A parsed HTTP message: the start line and the raw body.
#[derive(Debug)]
pub struct HttpMessage {
    /// Request or status line.
    pub start_line: String,
    /// Message body.
    pub body: Vec<u8>,
    /// Parsed `Retry-After-Ms` (preferred) or `Retry-After` header, when
    /// present.
    pub retry_after: Option<Duration>,
}

impl HttpMessage {
    /// True for `2xx` status lines.
    pub fn is_ok_response(&self) -> bool {
        self.status_code()
            .map(|c| (200..300).contains(&c))
            .unwrap_or(false)
    }

    /// True for `503 Service Unavailable` — the admission-control shed.
    pub fn is_overloaded(&self) -> bool {
        self.status_code() == Some(503)
    }

    /// The numeric status code of a response line, if parseable.
    pub fn status_code(&self) -> Option<u16> {
        self.start_line
            .split_whitespace()
            .nth(1)
            .and_then(|code| code.parse().ok())
    }
}

/// Read one HTTP message (request or response) from a buffered reader.
/// Returns `None` on clean EOF before any bytes.
pub fn read_http_message(r: &mut BufReader<impl Read>) -> Result<Option<HttpMessage>> {
    let mut start_line = String::new();
    if r.read_line(&mut start_line)? == 0 {
        return Ok(None);
    }
    let start_line = start_line.trim_end().to_string();
    let mut content_length: Option<usize> = None;
    let mut retry_after_secs: Option<u64> = None;
    let mut retry_after_ms: Option<u64> = None;
    loop {
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Err(ServingError::Protocol("eof in headers".into()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((key, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if key.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .parse()
                    .map_err(|_| ServingError::Protocol(format!("bad content-length: {value}")))?,
            );
        } else if key.eq_ignore_ascii_case("retry-after") {
            retry_after_secs = value.parse().ok();
        } else if key.eq_ignore_ascii_case("retry-after-ms") {
            retry_after_ms = value.parse().ok();
        }
    }
    // Millisecond extension header wins over the coarse RFC seconds.
    let retry_after = retry_after_ms
        .map(Duration::from_millis)
        .or(retry_after_secs.map(Duration::from_secs));
    let len =
        content_length.ok_or_else(|| ServingError::Protocol("missing content-length".into()))?;
    if len > MAX_FRAME_BYTES {
        return Err(ServingError::Protocol(format!(
            "body of {len} bytes exceeds cap"
        )));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(HttpMessage {
        start_line,
        body,
        retry_after,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn binary_tensor_roundtrip() {
        let t = Tensor::seeded_uniform([2, 3, 4], 1, -5.0, 5.0);
        let enc = encode_tensor_binary(&t);
        let back = decode_tensor_binary(&enc).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn binary_error_roundtrip() {
        let enc = encode_error_binary("model exploded");
        match decode_tensor_binary(&enc) {
            Err(ServingError::Remote(msg)) => assert_eq!(msg, "model exploded"),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn binary_overloaded_roundtrip() {
        let enc = encode_overloaded_binary(Duration::from_millis(37));
        match decode_tensor_binary(&enc) {
            Err(ServingError::Overloaded { retry_after }) => {
                assert_eq!(retry_after, Duration::from_millis(37));
            }
            other => panic!("unexpected: {other:?}"),
        }
        // A truncated hint is a protocol error, not a silent zero.
        assert!(matches!(
            decode_tensor_binary(&enc[..3]),
            Err(ServingError::Protocol(_))
        ));
    }

    #[test]
    fn frame_bytes_matches_write_frame() {
        let mut written = Vec::new();
        write_frame(&mut written, b"payload").unwrap();
        assert_eq!(frame_bytes(b"payload").unwrap(), written);
        assert!(frame_bytes(&vec![0u8; MAX_FRAME_BYTES + 1]).is_err());
    }

    #[test]
    fn http_overloaded_parses_with_ms_precision() {
        let bytes = http_overloaded_bytes(Duration::from_millis(1500));
        let mut r = BufReader::new(std::io::Cursor::new(bytes));
        let msg = read_http_message(&mut r).unwrap().unwrap();
        assert!(msg.is_overloaded());
        assert!(!msg.is_ok_response());
        assert_eq!(msg.status_code(), Some(503));
        // Retry-After-Ms (1500) beats the rounded-up Retry-After (2 s).
        assert_eq!(msg.retry_after, Some(Duration::from_millis(1500)));
    }

    #[test]
    fn http_retry_after_seconds_fallback() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 3\r\nContent-Length: 0\r\n\r\n";
        let mut r = BufReader::new(std::io::Cursor::new(raw.to_vec()));
        let msg = read_http_message(&mut r).unwrap().unwrap();
        assert_eq!(msg.retry_after, Some(Duration::from_secs(3)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let t = Tensor::zeros([4]);
        let enc = encode_tensor_binary(&t);
        assert!(decode_tensor_binary(&enc[..enc.len() - 1]).is_err());
        assert!(decode_tensor_binary(&[]).is_err());
        assert!(decode_tensor_binary(&[7]).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }

    #[test]
    fn http_request_roundtrip() {
        let t = Tensor::seeded_uniform([1, 8], 2, 0.0, 1.0);
        let mut buf = Vec::new();
        write_http_request(&mut buf, &t).unwrap();
        let mut r = BufReader::new(std::io::Cursor::new(buf));
        let msg = read_http_message(&mut r).unwrap().unwrap();
        assert!(msg.start_line.starts_with("POST /infer"));
        let jt: JsonTensor = serde_json::from_slice(&msg.body).unwrap();
        assert_eq!(jt.into_tensor().unwrap(), t);
    }

    #[test]
    fn http_response_ok_and_error() {
        let t = Tensor::zeros([2]);
        let mut buf = Vec::new();
        write_http_response(&mut buf, Ok(&t)).unwrap();
        write_http_response(&mut buf, Err("boom")).unwrap();
        let mut r = BufReader::new(std::io::Cursor::new(buf));
        let ok = read_http_message(&mut r).unwrap().unwrap();
        assert!(ok.is_ok_response());
        let err = read_http_message(&mut r).unwrap().unwrap();
        assert!(!err.is_ok_response());
        assert_eq!(err.body, b"boom");
    }

    #[test]
    fn http_eof_returns_none() {
        let mut r = BufReader::new(std::io::Cursor::new(Vec::<u8>::new()));
        assert!(read_http_message(&mut r).unwrap().is_none());
    }

    #[test]
    fn named_request_roundtrip() {
        let t = Tensor::seeded_uniform([2, 4], 3, -1.0, 1.0);
        let enc = encode_request_binary(Some("fraud-v7"), &t);
        let (name, back) = decode_request_binary(&enc).unwrap();
        assert_eq!(name.as_deref(), Some("fraud-v7"));
        assert_eq!(back, t);
        // Unnamed requests stay backward compatible.
        let enc = encode_request_binary(None, &t);
        let (name, back) = decode_request_binary(&enc).unwrap();
        assert!(name.is_none());
        assert_eq!(back, t);
    }

    #[test]
    fn named_request_rejects_truncation() {
        let t = Tensor::zeros([2]);
        let enc = encode_request_binary(Some("model"), &t);
        assert!(decode_request_binary(&enc[..3]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn binary_roundtrip_any_shape(
            dims in proptest::collection::vec(1usize..5, 0..4),
            seed in any::<u64>(),
        ) {
            let t = Tensor::seeded_uniform(dims, seed, -10.0, 10.0);
            let back = decode_tensor_binary(&encode_tensor_binary(&t)).unwrap();
            prop_assert_eq!(t, back);
        }
    }
}
