//! The per-file rules. Each rule returns the violations it found in one
//! file; `main` aggregates, applies suppressions and baselines, and
//! reports. Project-wide interprocedural rules live in `analysis`.

use crate::source::{function_bodies, SourceFile};

/// One finding, pointing at a line of the original file.
///
/// `fingerprint` is the stable baseline identity: for per-file rules it is
/// simply the file path (line churn within a file doesn't move the
/// ratchet); interprocedural rules use the qualified call chain plus the
/// offending token, which survives both line churn and file reshuffles.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: &'static str,
    pub rel: String,
    pub line: usize,
    pub fingerprint: String,
    pub msg: String,
}

pub const CLOCK_AUTHORITY: &str = "clock-authority";
pub const SPAN_COVERAGE: &str = "span-coverage";
pub const FORBID_UNSAFE: &str = "forbid-unsafe";
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";

/// Rules whose findings are ratcheted through `lint-baseline.txt` instead
/// of failing outright. The rest are hard failures.
pub const BASELINED: &[&str] = &[
    CLOCK_AUTHORITY,
    HOT_PATH_ALLOC,
    crate::analysis::HOT_PATH_ALLOC_TRANSITIVE,
    crate::analysis::PANIC_REACHABILITY,
    crate::analysis::LOCK_RANK_CHAIN,
];

fn in_any(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

pub fn find_all(hay: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(found) = hay[search..].find(needle) {
        out.push(search + found);
        search += found + needle.len();
    }
    out
}

/// Direct wall-clock reads are reserved to `crayfish-sim`'s clock
/// authority (`crayfish_sim::now()` / `Stopwatch`): that is the one seam a
/// virtual clock can later replace, and it keeps modelled costs and
/// measured costs on the same timeline.
pub fn clock_authority(file: &SourceFile) -> Vec<Violation> {
    if in_any(&file.rel, &["crates/sim/", "crates/lint/"]) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for needle in ["Instant::now()", "SystemTime::now()"] {
        for pos in find_all(&file.clean, needle) {
            out.push(Violation {
                rule: CLOCK_AUTHORITY,
                rel: file.rel.clone(),
                line: file.line_of(pos),
                fingerprint: file.rel.clone(),
                msg: format!("{needle} outside crayfish-sim; use crayfish_sim::now()"),
            });
        }
    }
    out
}

/// Name of the function declared at `fn_pos` in cleaned text.
fn fn_name(clean: &str, fn_pos: usize) -> &str {
    let after = &clean[fn_pos + "fn ".len()..];
    let end = after
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(after.len());
    &after[..end]
}

/// Heap allocation inside a hot-loop body. Two trees make this promise:
///
/// * `crates/tensor/src/kernels/` — the packed GEMM path's zero-allocation
///   steady state: every kernel takes an `_into` output slice or a
///   reusable scratch (`GemmScratch`, the executor arena); every function
///   is covered.
/// * `crates/net/src/reactor.rs` and `crates/net/src/codec.rs` — the
///   shared reactor's per-connection poll helpers (`poll_*`), which run
///   for every connection on every loop iteration and must reuse the
///   connection's own buffers. Only the `poll_*`-prefixed functions are
///   covered: dispatch callbacks invoked *from* the loop (decode,
///   admission push) allocate legitimately.
///
/// A `Vec::new` / `vec![` / `.to_vec(` / `.collect(` there is either a
/// compat wrapper (baselined, ratcheted down) or a regression. Test
/// modules are already blanked by the source cleaner. The same promise is
/// extended through transitive callees by
/// `analysis::HOT_PATH_ALLOC_TRANSITIVE`.
pub fn hot_path_alloc(file: &SourceFile) -> Vec<Violation> {
    let kernels = file.rel.starts_with("crates/tensor/src/kernels/");
    let reactor = file.rel == "crates/net/src/reactor.rs" || file.rel == "crates/net/src/codec.rs";
    if !kernels && !reactor {
        return Vec::new();
    }
    let mut out = Vec::new();
    let clean = &file.clean;
    for (fn_pos, body_start, body_end) in function_bodies(clean) {
        if reactor && !fn_name(clean, fn_pos).starts_with("poll_") {
            continue;
        }
        let body = &clean[body_start..=body_end];
        for needle in ["Vec::new", "vec![", ".to_vec(", ".collect("] {
            for pos in find_all(body, needle) {
                out.push(Violation {
                    rule: HOT_PATH_ALLOC,
                    rel: file.rel.clone(),
                    line: file.line_of(body_start + pos),
                    fingerprint: file.rel.clone(),
                    msg: format!(
                        "{needle} in a hot-path body; use an `_into` variant or reuse a buffer"
                    ),
                });
            }
        }
    }
    out
}

/// Every engine-kernel worker loop that polls the broker must run under
/// supervision discipline: a chaos checkpoint (so injected crashes and
/// stop flags are honoured per cycle) and an obs span or charge (so the
/// stage shows up in the paper's latency breakdown).
pub fn span_coverage(file: &SourceFile) -> Vec<Violation> {
    if !file.rel.starts_with("crates/engine-kernel/src") {
        return Vec::new();
    }
    let span_markers = ["charge_ingest", "ingest_span", ".timer("];
    let mut out = Vec::new();
    for (fn_pos, body_start, body_end) in function_bodies(&file.clean) {
        let body = &file.clean[body_start..=body_end];
        if !body.contains(".poll(") {
            continue;
        }
        let mut missing = Vec::new();
        if !body.contains("checkpoint") {
            missing.push("a chaos checkpoint (`ctl.checkpoint()`)");
        }
        if !span_markers.iter().any(|m| body.contains(m)) {
            missing.push("an obs span or ingest charge");
        }
        if !missing.is_empty() {
            out.push(Violation {
                rule: SPAN_COVERAGE,
                rel: file.rel.clone(),
                line: file.line_of(fn_pos),
                fingerprint: file.rel.clone(),
                msg: format!("polling worker body lacks {}", missing.join(" and ")),
            });
        }
    }
    out
}

/// Every crate root must forbid unsafe code — the reproduction is pure
/// safe Rust, and the guarantee should be compiler-enforced per crate, not
/// folklore.
pub fn forbid_unsafe(file: &SourceFile) -> Vec<Violation> {
    let is_root = file.rel.ends_with("/src/lib.rs")
        || file.rel == "src/lib.rs"
        || file.rel.ends_with("/src/main.rs")
        || file.rel.starts_with("src/bin/");
    if !is_root {
        return Vec::new();
    }
    if file.raw.contains("#![forbid(unsafe_code)]") {
        return Vec::new();
    }
    vec![Violation {
        rule: FORBID_UNSAFE,
        rel: file.rel.clone(),
        line: 1,
        fingerprint: file.rel.clone(),
        msg: "crate root lacks #![forbid(unsafe_code)]".into(),
    }]
}

/// Run every per-file rule over one file.
pub fn all_rules(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(clock_authority(file));
    out.extend(hot_path_alloc(file));
    out.extend(span_coverage(file));
    out.extend(forbid_unsafe(file));
    out
}
