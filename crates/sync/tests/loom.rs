//! Loom model for the shim itself: the consuming condvar-wait mapping must
//! not invent a lost wakeup. Compiled only under `RUSTFLAGS="--cfg loom"`.

#![cfg(loom)]

use crayfish_sync::{model, thread, Arc, Condvar, Mutex};

/// Classic flag handoff through the shim's `Mutex` + consuming
/// `Condvar::wait`: whatever the interleaving of set/notify and
/// check/sleep, the waiter terminates having seen the flag.
#[test]
fn condvar_wait_cannot_miss_the_notification() {
    model(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (flag, cond) = &*p2;
            *flag.lock() = true;
            cond.notify_all();
        });
        let (flag, cond) = &*pair;
        let mut ready = flag.lock();
        while !*ready {
            ready = cond.wait(ready);
        }
        drop(ready);
        t.join().unwrap();
    });
}
