//! **Ablations** — isolating the design choices DESIGN.md calls out:
//!
//! 1. Flink network-buffer timeout (latency of unchained pipelines);
//! 2. kernel fusion (the fused ONNX-style executor vs the direct one);
//! 3. wire protocol (gRPC-like binary vs HTTP+JSON) on the same model;
//! 4. the calibrated JVM framework cost vs the bare Rust substrate;
//! 5. asynchronous scoring I/O — the Flink feature the paper declined for
//!    fairness (§4.3) — against blocking external calls.

use std::time::Duration;

use crayfish::prelude::*;
use crayfish::runtime::exec::{FusedExec, UnfusedExec};
use crayfish::serving::ServingConfig;
use std::sync::Arc;

use crayfish::sim::{Cost, Stopwatch};
use crayfish::tensor::Tensor;
use crayfish_bench::*;

fn buffer_timeout_ablation(table: &mut Table) {
    for timeout_ms in [0u64, 10, 100] {
        let mut options = FlinkOptions::operator_level(4, 4);
        options.buffer_timeout = Duration::from_millis(timeout_ms);
        let processor = FlinkProcessor::with_options(options);
        let mut spec = base_spec(
            ModelSpec::Ffnn,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.workload = Workload::Constant { rate: 20.0 };
        let result = run(
            &format!("ablation/buffer-timeout/{timeout_ms}ms"),
            &processor,
            &spec,
        );
        table.row(vec![
            "flink buffer timeout".into(),
            format!("{timeout_ms} ms"),
            format!("p50 {:.1} ms", result.latency.p50),
        ]);
    }
}

/// A ResNet-block-scale CNN: fusion's win is the batch-norm and ReLU
/// passes it eliminates, which is *memory traffic* — it only shows at
/// realistic activation sizes (here ~0.8 MB per activation pass), not on
/// toy 8×8 planes.
fn block_scale_cnn(channels: usize, hw: usize) -> crayfish::tensor::NnGraph {
    use crayfish::tensor::kernels::conv::Conv2dParams;
    use crayfish::tensor::kernels::norm::BnParams;
    use crayfish::tensor::{NnGraph, Op, Shape};
    let mut g = NnGraph::new("block-scale");
    let input = g.add(
        "input",
        Op::Input {
            shape: Shape::from([3, hw, hw]),
        },
        vec![],
    );
    let mut x = input;
    let mut in_c = 3;
    for layer in 0..3 {
        let w = Arc::new(Tensor::seeded_he(
            [channels, in_c, 3, 3],
            layer as u64 + 1,
            in_c * 9,
        ));
        let conv = g.add(
            format!("conv{layer}"),
            Op::Conv2d {
                w,
                b: None,
                params: Conv2dParams {
                    in_c,
                    out_c: channels,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
            },
            vec![x],
        );
        let bn = g.add(
            format!("bn{layer}"),
            Op::BatchNorm {
                params: Arc::new(BnParams {
                    gamma: vec![1.0; channels],
                    beta: vec![0.0; channels],
                    mean: vec![0.0; channels],
                    var: vec![1.0; channels],
                    eps: 1e-5,
                }),
            },
            vec![conv],
        );
        x = g.add(format!("relu{layer}"), Op::Relu, vec![bn]);
        in_c = channels;
    }
    let gap = g.add("gap", Op::GlobalAvgPool, vec![x]);
    let wf = Arc::new(Tensor::seeded_he([channels, 10], 77, channels));
    let bf = Arc::new(Tensor::zeros([10]));
    g.add("fc", Op::Dense { w: wf, b: bf }, vec![gap]);
    g
}

fn fusion_ablation(table: &mut Table) {
    // Conv+BN folding and ReLU fusion eliminate whole passes over the
    // activations — measurable at ResNet-block scale.
    let graph = block_scale_cnn(32, 56);
    let input = Tensor::seeded_uniform([4, 3, 56, 56], 1, 0.0, 1.0);
    let reps = 20;
    let mut fused = FusedExec::new(&graph).expect("fused");
    let mut plain = UnfusedExec::new(graph, true, None).expect("unfused");
    fused.run(&input).unwrap();
    plain.run(&input).unwrap();
    let sw = Stopwatch::start();
    for _ in 0..reps {
        fused.run(&input).unwrap();
    }
    let fused_ms = sw.elapsed_millis() / reps as f64;
    let sw = Stopwatch::start();
    for _ in 0..reps {
        plain.run(&input).unwrap();
    }
    let plain_ms = sw.elapsed_millis() / reps as f64;
    table.row(vec![
        "kernel fusion (3x conv-bn-relu, 56x56, bsz=4)".into(),
        "fused / unfused".into(),
        format!(
            "{fused_ms:.2} ms vs {plain_ms:.2} ms ({:.0}% saved)",
            100.0 * (plain_ms - fused_ms) / plain_ms.max(1e-12)
        ),
    ]);
}

fn protocol_ablation(table: &mut Table) {
    // The same fused model served over both protocols at mp=1, measured
    // client-side: the HTTP+JSON tax Ray Serve pays.
    let graph = ModelSpec::Ffnn.build(42);
    let input = Tensor::seeded_uniform([1, 28, 28], 1, 0.0, 1.0);
    let grpc_server = ExternalKind::TfServing
        .start(&graph, ServingConfig::default())
        .unwrap();
    let http_server = ExternalKind::RayServe
        .start(&graph, ServingConfig::default())
        .unwrap();
    for (name, kind, addr) in [
        (
            "grpc (tf-serving)",
            ExternalKind::TfServing,
            grpc_server.addr(),
        ),
        (
            "http+json (ray serve)",
            ExternalKind::RayServe,
            http_server.addr(),
        ),
    ] {
        let mut client = kind.connect(addr, NetworkModel::zero()).unwrap();
        client.infer(&input).unwrap();
        let reps = 50;
        let sw = Stopwatch::start();
        for _ in 0..reps {
            client.infer(&input).unwrap();
        }
        let ms = sw.elapsed_millis() / reps as f64;
        table.row(vec![
            "wire protocol (no LAN)".into(),
            name.into(),
            format!("{ms:.2} ms/call"),
        ]);
    }
    grpc_server.shutdown();
    http_server.shutdown();
}

fn framework_cost_ablation(table: &mut Table) {
    // The calibrated JVM per-record cost vs the raw Rust substrate.
    for (name, cost) in [
        ("calibrated (jvm-like)", None),
        ("zeroed (bare rust)", Some(Cost::ZERO)),
    ] {
        let mut options = FlinkOptions::default();
        if let Some(c) = cost {
            options.record_overhead = c;
        }
        let processor = FlinkProcessor::with_options(options);
        let mut spec = base_spec(
            ModelSpec::Ffnn,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.workload = Workload::Constant {
            rate: OVERLOAD_FFNN,
        };
        let result = run(
            &format!("ablation/framework-cost/{name}"),
            &processor,
            &spec,
        );
        table.row(vec![
            "per-record framework cost".into(),
            name.into(),
            format!("{:.0} events/s", result.throughput_eps),
        ]);
    }
}

fn async_io_ablation(table: &mut Table) {
    // Blocking vs async external calls at mp=1: what the paper's
    // evaluation left on the table by keeping calls blocking.
    for async_io in [0usize, 8] {
        let options = FlinkOptions {
            async_io,
            ..Default::default()
        };
        let processor = FlinkProcessor::with_options(options);
        let mut spec = base_spec(
            ModelSpec::Ffnn,
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        );
        spec.workload = Workload::Constant {
            rate: OVERLOAD_FFNN,
        };
        let label = if async_io == 0 {
            "blocking"
        } else {
            "async_io=8"
        };
        let result = run(&format!("ablation/async-io/{label}"), &processor, &spec);
        table.row(vec![
            "flink external calls".into(),
            label.into(),
            format!("{:.0} events/s", result.throughput_eps),
        ]);
    }
}

fn main() {
    let mut table = Table::new("Ablations", &["dimension", "variant", "result"]);
    eprintln!("ablation 1/5: flink buffer timeout");
    buffer_timeout_ablation(&mut table);
    eprintln!("ablation 2/5: kernel fusion");
    fusion_ablation(&mut table);
    eprintln!("ablation 3/5: wire protocol");
    protocol_ablation(&mut table);
    eprintln!("ablation 4/5: framework cost");
    framework_cost_ablation(&mut table);
    eprintln!("ablation 5/5: async scoring I/O");
    async_io_ablation(&mut table);
    table.print();
    println!("\nThese isolate the mechanisms behind the headline results: buffering");
    println!("drives Flink's low-rate latency, fusion drives ONNX's embedded win, the");
    println!("HTTP+JSON path drives Ray Serve's deficit, and the calibrated JVM cost is");
    println!("what scales the Rust substrate to the paper's absolute numbers.");
}
