//! Per-partition replicated logs: leader/follower replicas, ISR tracking,
//! a high watermark, leader-epoch fencing, and deterministic elections.
//!
//! Each partition is a [`ReplicatedPartition`]: `replication_factor` copies
//! of the log placed on distinct broker nodes, one of which is the leader.
//! Appends go to the leader and are synchronously replicated to every
//! in-sync follower before the ack (Kafka's `acks=all`); the **high
//! watermark** — the minimum log end across the ISR — is the commit point,
//! and fetches never return records above it. When chaos kills or isolates
//! the leader's node, a deterministic election promotes the alive ISR
//! member with the lowest broker id and bumps the **leader epoch**; an
//! append fenced with a stale epoch is rejected, so a demoted leader can
//! never accept a late write.
//!
//! Node death and isolation are modelled through
//! [`crayfish_chaos::ChaosHandle`] switches (`broker_dead` /
//! `broker_isolated`): with the default disabled handle every liveness
//! check is a single branch and a replication-factor-1 partition behaves
//! exactly like the original unreplicated log.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;
use crayfish_chaos::ChaosHandle;
use crayfish_sim::now_millis_f64;
use crayfish_sync::Mutex;

use crate::cluster::BrokerId;
use crate::topic::{FetchedRecord, StoredRecord};

/// Replication-protocol rejections. The broker maps these onto
/// [`crate::BrokerError`] variants carrying topic/partition context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplError {
    /// No alive ISR member is electable: the partition is leaderless until
    /// a replica node returns.
    NoLeader,
    /// The caller's leader epoch is stale — an election happened since it
    /// fetched metadata. Refresh and retry.
    Fenced {
        /// The epoch currently in force.
        current: u64,
    },
    /// Fewer in-sync replicas than `min.insync.replicas`: accepting the
    /// append could lose it on the next failover, so it is refused.
    NotEnoughReplicas {
        /// Current ISR size.
        isr: u32,
        /// Required minimum.
        min_isr: u32,
    },
}

/// One replica's copy of the partition log, placed on a broker node.
#[derive(Debug)]
struct ReplicaLog {
    broker: BrokerId,
    /// Offset of the first retained record.
    base: u64,
    bytes: usize,
    records: VecDeque<StoredRecord>,
    /// Idempotent-producer dedup window: producer id → next expected
    /// sequence. Replicated with the records so the window survives
    /// failover: a retry that lands on the new leader is still recognised.
    next_seq: HashMap<u64, u64>,
}

impl ReplicaLog {
    fn new(broker: BrokerId) -> Self {
        ReplicaLog {
            broker,
            base: 0,
            bytes: 0,
            records: VecDeque::new(),
            next_seq: HashMap::new(),
        }
    }

    fn end(&self) -> u64 {
        self.base + self.records.len() as u64
    }
}

/// Everything guarded by the partition's replication lock.
#[derive(Debug)]
struct ReplState {
    /// Leader epoch: bumped by every election, checked by fenced appends.
    epoch: u64,
    /// Total elections held (epoch minus its starting value; kept separate
    /// for observability).
    elections: u64,
    /// Index into `replicas` of the current leader.
    leader: usize,
    /// Per-slot ISR membership. A follower leaves the ISR when its node is
    /// dead or isolated and rejoins once it has caught up to the leader's
    /// log end — membership tracked by fetch position, as in Kafka.
    isr: Vec<bool>,
    /// The commit point: minimum ISR log end, monotonically non-decreasing.
    /// Fetches never return records at or above it.
    high_watermark: u64,
    replicas: Vec<ReplicaLog>,
}

/// Observer snapshot of one partition's replication state. Serializable so
/// a remote client's `replication_status` sees the same typed snapshot an
/// in-process observer gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ReplicationStatus {
    /// Broker id of the current leader (which may be unreachable if no
    /// election has been triggered since it died).
    pub leader: BrokerId,
    /// Current leader epoch.
    pub epoch: u64,
    /// Elections held so far.
    pub elections: u64,
    /// In-sync replica count (leader included).
    pub isr: u32,
    /// Total replicas.
    pub replicas: u32,
    /// The commit point.
    pub high_watermark: u64,
    /// Leader log end.
    pub log_end: u64,
    /// Minimum log end across current ISR members. The protocol invariant
    /// `high_watermark <= min_isr_end` is what makes a committed record
    /// durable: it exists on every replica the next leader can come from.
    /// Reported as 0 while the partition is leaderless with an empty ISR.
    pub min_isr_end: u64,
    /// How far the most-behind replica trails the high watermark — nonzero
    /// while a dead or isolated node is missing committed records.
    pub max_follower_lag: u64,
}

/// A partition as a set of replicated logs. See the module docs for the
/// protocol.
#[derive(Debug)]
pub struct ReplicatedPartition {
    min_isr: u32,
    retention_bytes: usize,
    repl: Mutex<ReplState>,
}

impl ReplicatedPartition {
    /// Create a partition replicated across `replicas` (leader first —
    /// typically [`crate::ClusterConfig::replica_set`]).
    pub fn new(replicas: &[BrokerId], min_isr: u32, retention_bytes: usize) -> Self {
        let logs: Vec<ReplicaLog> = replicas.iter().map(|&b| ReplicaLog::new(b)).collect();
        let n = logs.len().max(1);
        let logs = if logs.is_empty() {
            vec![ReplicaLog::new(0)]
        } else {
            logs
        };
        ReplicatedPartition {
            min_isr: min_isr.max(1),
            retention_bytes: retention_bytes.max(1),
            repl: Mutex::new(ReplState {
                epoch: 0,
                elections: 0,
                leader: 0,
                isr: vec![true; n],
                high_watermark: 0,
                replicas: logs,
            }),
        }
    }

    /// Current leader and epoch, running an election first if the recorded
    /// leader's node is dead or isolated. This is the producer's metadata
    /// fetch: the returned epoch fences a subsequent [`append`](Self::append)
    /// — if another election intervenes, that append is rejected.
    pub fn leader(&self, chaos: &ChaosHandle) -> Result<(BrokerId, u64), ReplError> {
        let mut s = self.repl.lock();
        if !Self::ensure_leader(&mut s, chaos) {
            return Err(ReplError::NoLeader);
        }
        Ok((s.replicas[s.leader].broker, s.epoch))
    }

    /// Append a batch. `fence`, if given, must equal the current leader
    /// epoch; `dedup` is the idempotent producer's `(producer_id,
    /// first_seq)` window. Returns `(first_offset, append_time_ms,
    /// duplicates_dropped)`.
    ///
    /// The append is `acks=all`: it is refused (`NotEnoughReplicas`) unless
    /// at least `min.insync.replicas` replicas are in sync, and it returns
    /// only after every ISR member holds the records — at which point the
    /// high watermark advances past them and they are committed.
    pub fn append(
        &self,
        chaos: &ChaosHandle,
        fence: Option<u64>,
        dedup: Option<(u64, u64)>,
        mut values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64, u64), ReplError> {
        let mut guard = self.repl.lock();
        let s = &mut *guard;
        if !Self::ensure_leader(s, chaos) {
            return Err(ReplError::NoLeader);
        }
        if let Some(epoch) = fence {
            if epoch != s.epoch {
                // A demoted leader's in-flight append: fenced out.
                return Err(ReplError::Fenced { current: s.epoch });
            }
        }
        // Follower fetch round: drop unreachable nodes from the ISR, let
        // reachable laggards catch up and rejoin.
        Self::sync_followers(s, chaos);
        let in_sync = s.isr.iter().filter(|&&m| m).count() as u32;
        if in_sync < self.min_isr {
            return Err(ReplError::NotEnoughReplicas {
                isr: in_sync,
                min_isr: self.min_isr,
            });
        }
        // Dedup against the leader's window, under the replication lock.
        let leader_idx = s.leader;
        let mut duplicates = 0u64;
        if let Some((producer_id, first_seq)) = dedup {
            let expected = s.replicas[leader_idx]
                .next_seq
                .get(&producer_id)
                .copied()
                .unwrap_or(0);
            let n = values.len() as u64;
            if first_seq < expected {
                // Leading records were already appended by an earlier
                // attempt whose ack was lost.
                duplicates = (expected - first_seq).min(n);
                values.drain(..duplicates as usize);
            }
            // A first_seq above `expected` means the producer gave up on an
            // earlier batch; accept the gap and move the window forward.
            s.replicas[leader_idx]
                .next_seq
                .insert(producer_id, expected.max(first_seq + n));
        }
        let first_offset = s.replicas[leader_idx].end();
        let append_time_ms = now_millis_f64();
        for (value, produce_time_ms) in values {
            s.replicas[leader_idx].bytes += value.len();
            s.replicas[leader_idx].records.push_back(StoredRecord {
                value,
                produce_time_ms,
                append_time_ms,
            });
        }
        let new_end = s.replicas[leader_idx].end();
        // Synchronous replication: every ISR follower receives the new
        // suffix (and the dedup window) before the ack.
        for i in 0..s.replicas.len() {
            if i != leader_idx && s.isr[i] {
                Self::catch_up(&mut s.replicas, leader_idx, i);
            }
        }
        // Commit point: every ISR member now ends at `new_end`.
        s.high_watermark = s.high_watermark.max(new_end);
        let hw = s.high_watermark;
        for r in &mut s.replicas {
            Self::enforce_retention(r, self.retention_bytes, hw);
        }
        Ok((first_offset, append_time_ms, duplicates))
    }

    /// Read up to `max_records`/`max_bytes` committed records starting at
    /// `offset`, from the leader (electing first if needed). Returns empty
    /// when nothing is committed past `offset` — or when the partition is
    /// leaderless, which consumers treat as "no data yet" and retry.
    pub fn read(
        &self,
        chaos: &ChaosHandle,
        partition: u32,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Vec<FetchedRecord> {
        let mut guard = self.repl.lock();
        let s = &mut *guard;
        if !Self::ensure_leader(s, chaos) {
            return Vec::new();
        }
        let hw = s.high_watermark;
        let log = &s.replicas[s.leader];
        // Offsets below the retention horizon resume at the earliest
        // retained record (Kafka's earliest-offset reset).
        let from = offset.max(log.base);
        if from >= hw {
            return Vec::new();
        }
        let start = (from - log.base) as usize;
        // Only committed records are visible.
        let visible = (hw - log.base) as usize;
        let mut out = Vec::new();
        let mut bytes = 0usize;
        for (i, rec) in log.records.iter().enumerate().skip(start) {
            if i >= visible || out.len() >= max_records {
                break;
            }
            // Always deliver at least one record, as Kafka does even when a
            // single record exceeds the fetch size.
            if !out.is_empty() && bytes + rec.value.len() > max_bytes {
                break;
            }
            bytes += rec.value.len();
            out.push(FetchedRecord {
                partition,
                offset: log.base + i as u64,
                value: rec.value.clone(),
                produce_time_ms: rec.produce_time_ms,
                append_time_ms: rec.append_time_ms,
            });
        }
        out
    }

    /// The commit point — the visible end of the partition.
    pub fn high_watermark(&self) -> u64 {
        self.repl.lock().high_watermark
    }

    /// Offset of the earliest retained record on the current leader.
    pub fn start_offset(&self) -> u64 {
        let s = self.repl.lock();
        s.replicas[s.leader].base
    }

    /// Observer snapshot (never triggers an election).
    pub fn status(&self) -> ReplicationStatus {
        let s = self.repl.lock();
        let hw = s.high_watermark;
        ReplicationStatus {
            leader: s.replicas[s.leader].broker,
            epoch: s.epoch,
            elections: s.elections,
            isr: s.isr.iter().filter(|&&m| m).count() as u32,
            replicas: s.replicas.len() as u32,
            high_watermark: hw,
            log_end: s.replicas[s.leader].end(),
            min_isr_end: s
                .replicas
                .iter()
                .zip(s.isr.iter())
                .filter(|(_, &m)| m)
                .map(|(r, _)| r.end())
                .min()
                .unwrap_or(0),
            max_follower_lag: s
                .replicas
                .iter()
                .map(|r| hw.saturating_sub(r.end()))
                .max()
                .unwrap_or(0),
        }
    }

    /// If the recorded leader's node is unreachable, demote it and elect
    /// the alive ISR member with the lowest broker id (deterministic: every
    /// observer of the same liveness picks the same node). Returns whether
    /// the partition has a reachable leader.
    ///
    /// Elections are clean only — a replica outside the ISR may be missing
    /// committed records and is never electable, even if that leaves the
    /// partition leaderless (Kafka with unclean leader election disabled).
    fn ensure_leader(s: &mut ReplState, chaos: &ChaosHandle) -> bool {
        let current = s.replicas[s.leader].broker;
        if !chaos.broker_dead(current) && !chaos.broker_isolated(current) {
            return true;
        }
        s.isr[s.leader] = false;
        let candidate = (0..s.replicas.len())
            .filter(|&i| {
                let b = s.replicas[i].broker;
                s.isr[i] && !chaos.broker_dead(b) && !chaos.broker_isolated(b)
            })
            .min_by_key(|&i| s.replicas[i].broker);
        match candidate {
            Some(i) => {
                s.leader = i;
                s.epoch += 1;
                s.elections += 1;
                true
            }
            None => false,
        }
    }

    /// One follower-fetch round: unreachable followers leave the ISR;
    /// reachable ones catch up to the leader's log end and (re)join. ISR
    /// membership is by fetch position — a follower is in sync exactly when
    /// it holds everything the leader does.
    fn sync_followers(s: &mut ReplState, chaos: &ChaosHandle) {
        let leader_idx = s.leader;
        s.isr[leader_idx] = true;
        for i in 0..s.replicas.len() {
            if i == leader_idx {
                continue;
            }
            let b = s.replicas[i].broker;
            if chaos.broker_dead(b) || chaos.broker_isolated(b) {
                s.isr[i] = false;
                continue;
            }
            Self::catch_up(&mut s.replicas, leader_idx, i);
            s.isr[i] = true;
        }
    }

    /// Bring `replicas[follower]` to byte-for-byte parity with
    /// `replicas[leader]`: truncate any divergent suffix, adopt the
    /// leader's retention horizon if the follower fell behind it, copy the
    /// missing records, and clone the dedup window.
    fn catch_up(replicas: &mut [ReplicaLog], leader: usize, follower: usize) {
        let leader_base = replicas[leader].base;
        let leader_end = replicas[leader].end();
        // Truncate a longer follower back to the leader's end. Synchronous
        // replication never actually produces an uncommitted suffix, but
        // handling it keeps the prefix property a local invariant rather
        // than a global argument.
        while replicas[follower].end() > leader_end {
            if let Some(dropped) = replicas[follower].records.pop_back() {
                replicas[follower].bytes -= dropped.value.len();
            } else {
                break;
            }
        }
        if replicas[follower].end() < leader_base {
            // The leader's retention already evicted records this follower
            // never saw: restart from the leader's horizon.
            replicas[follower].records.clear();
            replicas[follower].bytes = 0;
            replicas[follower].base = leader_base;
        }
        let from = (replicas[follower].end() - leader_base) as usize;
        let missing: Vec<StoredRecord> = replicas[leader]
            .records
            .iter()
            .skip(from)
            .cloned()
            .collect();
        for rec in missing {
            replicas[follower].bytes += rec.value.len();
            replicas[follower].records.push_back(rec);
        }
        replicas[follower].next_seq = replicas[leader].next_seq.clone();
    }

    /// Size-based retention: evict from the head, but never the last record
    /// and never a record at or above the high watermark's predecessor —
    /// committed data stays readable until newer committed data displaces
    /// it.
    fn enforce_retention(r: &mut ReplicaLog, retention_bytes: usize, hw: u64) {
        while r.bytes > retention_bytes && r.records.len() > 1 && r.base + 1 < hw {
            if let Some(evicted) = r.records.pop_front() {
                r.bytes -= evicted.value.len();
                r.base += 1;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(vals: &[&'static [u8]]) -> Vec<(Bytes, f64)> {
        vals.iter().map(|v| (Bytes::from_static(v), 0.0)).collect()
    }

    fn part(replicas: &[BrokerId], min_isr: u32) -> ReplicatedPartition {
        ReplicatedPartition::new(replicas, min_isr, usize::MAX)
    }

    #[test]
    fn rf1_behaves_like_the_unreplicated_log() {
        let chaos = ChaosHandle::disabled();
        let p = part(&[0], 1);
        let (o1, _, _) = p.append(&chaos, None, None, batch(&[b"a"])).unwrap();
        let (o2, _, _) = p.append(&chaos, None, None, batch(&[b"b", b"c"])).unwrap();
        assert_eq!((o1, o2), (0, 1));
        assert_eq!(p.high_watermark(), 3);
        let r = p.read(&chaos, 0, 0, 10, usize::MAX);
        assert_eq!(r.len(), 3);
        assert_eq!(r[2].offset, 2);
        let st = p.status();
        assert_eq!((st.isr, st.replicas, st.epoch), (1, 1, 0));
    }

    #[test]
    fn appends_replicate_and_survive_leader_kill() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        p.append(&chaos, None, None, batch(&[b"a", b"b"])).unwrap();
        chaos.set_broker_dead(0, true);
        // Reads elect broker 1 (lowest alive ISR id) and still see
        // everything committed.
        let r = p.read(&chaos, 0, 0, 10, usize::MAX);
        assert_eq!(r.len(), 2);
        let st = p.status();
        assert_eq!(st.leader, 1);
        assert_eq!(st.epoch, 1);
        assert_eq!(st.elections, 1);
        // Appends keep working with the surviving majority.
        p.append(&chaos, None, None, batch(&[b"c"])).unwrap();
        assert_eq!(p.high_watermark(), 3);
        assert_eq!(p.status().isr, 2);
    }

    #[test]
    fn dead_node_catches_up_and_rejoins_the_isr() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        chaos.set_broker_dead(2, true);
        p.append(&chaos, None, None, batch(&[b"a"])).unwrap();
        assert_eq!(p.status().isr, 2);
        assert_eq!(p.status().max_follower_lag, 1);
        chaos.set_broker_dead(2, false);
        p.append(&chaos, None, None, batch(&[b"b"])).unwrap();
        let st = p.status();
        assert_eq!(st.isr, 3);
        assert_eq!(st.max_follower_lag, 0);
    }

    #[test]
    fn isolation_of_the_leader_forces_failover_and_heals() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        p.append(&chaos, None, None, batch(&[b"a"])).unwrap();
        chaos.set_broker_isolated(0, true);
        p.append(&chaos, None, None, batch(&[b"b"])).unwrap();
        let st = p.status();
        assert_eq!((st.leader, st.epoch, st.isr), (1, 1, 2));
        chaos.set_broker_isolated(0, false);
        p.append(&chaos, None, None, batch(&[b"c"])).unwrap();
        // The ex-leader rejoined as a follower; leadership does not revert.
        let st = p.status();
        assert_eq!((st.leader, st.isr), (1, 3));
        assert_eq!(p.read(&chaos, 0, 0, 10, usize::MAX).len(), 3);
    }

    #[test]
    fn too_few_replicas_refuses_appends_without_losing_reads() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        p.append(&chaos, None, None, batch(&[b"a"])).unwrap();
        chaos.set_broker_dead(1, true);
        chaos.set_broker_isolated(2, true);
        assert_eq!(
            p.append(&chaos, None, None, batch(&[b"b"])),
            Err(ReplError::NotEnoughReplicas { isr: 1, min_isr: 2 })
        );
        // Committed data is still readable from the (alive) leader.
        assert_eq!(p.read(&chaos, 0, 0, 10, usize::MAX).len(), 1);
        chaos.set_broker_dead(1, false);
        p.append(&chaos, None, None, batch(&[b"b"])).unwrap();
        assert_eq!(p.high_watermark(), 2);
    }

    #[test]
    fn leaderless_partition_refuses_appends_until_a_node_returns() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1], 1);
        p.append(&chaos, None, None, batch(&[b"a"])).unwrap();
        chaos.set_broker_dead(0, true);
        chaos.set_broker_dead(1, true);
        assert_eq!(
            p.append(&chaos, None, None, batch(&[b"b"])),
            Err(ReplError::NoLeader)
        );
        assert!(p.read(&chaos, 0, 0, 10, usize::MAX).is_empty());
        assert!(p.leader(&chaos).is_err());
        chaos.set_broker_dead(1, false);
        // Broker 1 was still in the ISR when 0 died: clean election.
        assert_eq!(p.leader(&chaos).unwrap(), (1, 1));
        assert_eq!(p.read(&chaos, 0, 0, 10, usize::MAX).len(), 1);
    }

    #[test]
    fn out_of_sync_replica_is_never_elected() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1], 1);
        chaos.set_broker_dead(1, true);
        // This append drops node 1 from the ISR.
        p.append(&chaos, None, None, batch(&[b"a"])).unwrap();
        chaos.set_broker_dead(1, false);
        chaos.set_broker_dead(0, true);
        // Node 1 is alive but out of sync: electing it could lose "a".
        assert_eq!(p.leader(&chaos), Err(ReplError::NoLeader));
        chaos.set_broker_dead(0, false);
        // The old leader returns with its epoch intact.
        assert_eq!(p.leader(&chaos).unwrap(), (0, 0));
        // An append re-syncs node 1 into the ISR.
        p.append(&chaos, None, None, batch(&[b"b"])).unwrap();
        assert_eq!(p.status().isr, 2);
    }

    #[test]
    fn stale_epoch_append_is_fenced() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        let (leader, epoch) = p.leader(&chaos).unwrap();
        assert_eq!((leader, epoch), (0, 0));
        chaos.set_broker_dead(0, true);
        // Election happens on the next operation; the old metadata's epoch
        // is then stale.
        assert_eq!(
            p.append(&chaos, Some(epoch), None, batch(&[b"a"])),
            Err(ReplError::Fenced { current: 1 })
        );
        assert_eq!(p.high_watermark(), 0);
        // Refreshing metadata and retrying succeeds.
        let (leader, epoch) = p.leader(&chaos).unwrap();
        assert_eq!(leader, 1);
        p.append(&chaos, Some(epoch), None, batch(&[b"a"])).unwrap();
        assert_eq!(p.high_watermark(), 1);
    }

    #[test]
    fn dedup_window_survives_failover() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        let (_, _, d) = p
            .append(&chaos, None, Some((7, 0)), batch(&[b"a", b"b"]))
            .unwrap();
        assert_eq!(d, 0);
        chaos.set_broker_dead(0, true);
        // The producer's retry (lost ack) lands on the new leader, whose
        // replicated dedup window recognises it.
        let (_, _, d) = p
            .append(&chaos, None, Some((7, 0)), batch(&[b"a", b"b"]))
            .unwrap();
        assert_eq!(d, 2);
        assert_eq!(p.high_watermark(), 2);
        let vals: Vec<u8> = p
            .read(&chaos, 0, 0, 10, usize::MAX)
            .iter()
            .map(|r| r.value[0])
            .collect();
        assert_eq!(vals, b"ab".to_vec());
    }

    #[test]
    fn hw_never_exceeds_min_isr_end_in_mixed_faults() {
        let chaos = ChaosHandle::enabled();
        let p = part(&[0, 1, 2], 2);
        for step in 0u32..40 {
            match step % 8 {
                3 => chaos.set_broker_dead(step % 3, true),
                5 => chaos.set_broker_isolated((step + 1) % 3, true),
                6 => {
                    chaos.set_broker_dead(step % 3, false);
                    chaos.set_broker_isolated((step + 1) % 3, false);
                }
                _ => {}
            }
            let _ = p.append(&chaos, None, None, batch(&[b"x"]));
            let st = p.status();
            assert!(
                st.high_watermark <= st.log_end,
                "hw {} ran past leader end {}",
                st.high_watermark,
                st.log_end
            );
        }
    }

    #[test]
    fn retention_keeps_committed_tail_readable() {
        let chaos = ChaosHandle::disabled();
        let p = ReplicatedPartition::new(&[0], 1, 2500);
        let rec = Bytes::from(vec![0u8; 1000]);
        for _ in 0..5 {
            p.append(&chaos, None, None, vec![(rec.clone(), 0.0)])
                .unwrap();
        }
        assert_eq!(p.high_watermark(), 5);
        assert_eq!(p.start_offset(), 3);
        let r = p.read(&chaos, 0, 0, 10, usize::MAX);
        assert_eq!(r.first().map(|f| f.offset), Some(3));
        assert_eq!(r.len(), 2);
    }
}
