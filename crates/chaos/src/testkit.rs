//! Bounded polling helpers: wait for a condition with a deadline instead
//! of a fixed `thread::sleep`. Used by the repo's integration tests (and
//! anything else that would otherwise guess at timings).

use std::thread;
use std::time::Duration;

/// Poll `cond` every 5 ms until it returns `true` or `timeout` elapses.
/// Returns whether the condition was met.
pub fn poll_until(timeout: Duration, cond: impl FnMut() -> bool) -> bool {
    poll_until_every(timeout, Duration::from_millis(5), cond)
}

/// Poll `cond` at `interval` until it returns `true` or `timeout` elapses.
/// The condition is always checked at least once, and once more at the
/// deadline, so short timeouts cannot miss an already-true condition.
pub fn poll_until_every(
    timeout: Duration,
    interval: Duration,
    mut cond: impl FnMut() -> bool,
) -> bool {
    let deadline = crayfish_sim::now() + timeout;
    loop {
        if cond() {
            return true;
        }
        let now = crayfish_sim::now();
        if now >= deadline {
            return cond();
        }
        thread::sleep(interval.min(deadline - now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn returns_immediately_when_already_true() {
        let t0 = Instant::now();
        assert!(poll_until(Duration::from_secs(5), || true));
        assert!(t0.elapsed() < Duration::from_secs(1));
    }

    #[test]
    fn waits_for_late_condition() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = flag.clone();
        let t = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            f2.store(true, Ordering::Relaxed);
        });
        assert!(poll_until(Duration::from_secs(2), || flag.load(Ordering::Relaxed)));
        t.join().unwrap();
    }

    #[test]
    fn times_out_on_never_true() {
        let t0 = Instant::now();
        assert!(!poll_until(Duration::from_millis(30), || false));
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }
}
