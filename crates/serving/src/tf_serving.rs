//! TensorFlow Serving analog.
//!
//! The paper's "highly optimised external server": fused kernels (the
//! off-the-shelf CPU optimisations §5.1.1 credits for TF-Serving beating
//! TorchServe 3×), a gRPC-like binary protocol, and a scoring-replica pool
//! whose size is the scaling knob ("setting the maximum number of threads
//! that can be used to process events concurrently", §3.4.3).
//!
//! Under the default [`crate::IoModel::Reactor`] the server batches
//! continuously: the reactor decodes requests from every connection into
//! one admission queue, and replica workers drain them as
//! cross-connection batches, stacking compatible inputs into single model
//! invocations (see [`crate::batching`]). A full queue sheds with a typed
//! `Overloaded` frame carrying a retry hint.

use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};

use crayfish_admission::{AdmissionMetrics, BatchQueue, Dispatcher, Pending};
use crayfish_tensor::NnGraph;

use crate::batching::{score_stacked, ScoreJob};
use crate::protocol::{
    decode_request_binary, encode_error_binary, encode_overloaded_binary, encode_tensor_binary,
    frame_bytes, read_frame, write_frame,
};
use crayfish_net::{spawn_reactor_on, Responder, Wire};

use crate::registry::ModelRegistry;
use crate::server::{spawn_listener_on, IoModel, ServerHandle, ServingConfig};
use crate::{Result, ServingError};

/// Start a TF-Serving analog hosting a single model.
///
/// TF-Serving consumes SavedModel files but runs a fused, CPU-optimised
/// executor internally; the fused plan (shared with the ONNX analog) is
/// that executor.
pub fn start(graph: &NnGraph, config: ServingConfig) -> Result<ServerHandle> {
    start_at(graph, config, SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// Start a TF-Serving analog on a fixed address (port 0 picks an ephemeral
/// one) — the fixed form lets a crashed server be restored on the endpoint
/// its clients already hold (see [`crate::restart`]).
pub fn start_at(graph: &NnGraph, config: ServingConfig, addr: SocketAddr) -> Result<ServerHandle> {
    let registry = ModelRegistry::new(config);
    registry.deploy("default", graph)?;
    start_with_registry_at(registry, addr)
}

/// Start a TF-Serving analog backed by a [`ModelRegistry`]: the paper's
/// §7.2 external-serving story — host many named models, hot-deploy new
/// versions, and select the model per request, all without touching the
/// stream processor.
pub fn start_with_registry(registry: ModelRegistry) -> Result<ServerHandle> {
    start_with_registry_at(registry, SocketAddr::from(([127, 0, 0, 1], 0)))
}

/// [`start_with_registry`] bound to a fixed address.
pub fn start_with_registry_at(registry: ModelRegistry, addr: SocketAddr) -> Result<ServerHandle> {
    match registry.config().io {
        IoModel::Reactor => start_reactor(registry, addr),
        IoModel::ThreadPerConnection => spawn_listener_on("tf-serving", addr, move |stream| {
            handle_connection(stream, &registry);
        }),
    }
}

/// The reactor path: connection I/O on one poll thread, admission-queued
/// requests scored in cross-connection batches by `replicas` workers.
fn start_reactor(registry: ModelRegistry, addr: SocketAddr) -> Result<ServerHandle> {
    let config = registry.config().clone();
    let queue: BatchQueue<ScoreJob<Responder>> = BatchQueue::new(
        config.admission,
        config.replicas,
        AdmissionMetrics::new(&config.obs),
    );
    let dispatcher = Dispatcher::spawn("tf-serving", queue.clone(), config.replicas, |_i| {
        let registry = registry.clone();
        move |batch: &mut Vec<Pending<ScoreJob<Responder>>>| {
            score_grpc_batch(batch, |model, input| {
                registry
                    .resolve(model)
                    .and_then(|pool| pool.with_model(|m| m.apply(input)))
                    .and_then(|applied| applied.map_err(Into::into))
            });
        }
    })?;
    let mut handle =
        spawn_reactor_on("tf-serving", addr, Wire::Grpc, move |payload, responder| {
            dispatch_grpc(&queue, payload, responder);
        })?;
    handle.add_teardown(move || drop(dispatcher));
    Ok(handle)
}

/// Decode one gRPC-framed request on the reactor thread and admit it —
/// or answer immediately (decode error, shed, shutdown) so no responder
/// is ever dropped silently.
pub(crate) fn dispatch_grpc(
    queue: &BatchQueue<ScoreJob<Responder>>,
    payload: &[u8],
    responder: Responder,
) {
    let job = match decode_request_binary(payload) {
        Ok((model, input)) => ScoreJob {
            model,
            input,
            responder,
        },
        Err(e) => {
            send_grpc(responder, &Err(e));
            return;
        }
    };
    if let Err(rejected) = queue.push(job) {
        use crayfish_admission::AdmissionError;
        let responder = rejected.payload.responder;
        let reply = match rejected.error {
            AdmissionError::Overloaded { retry_after } => encode_overloaded_binary(retry_after),
            AdmissionError::Shutdown => encode_error_binary(&ServingError::Closed.to_string()),
        };
        send_frame(responder, &reply);
    }
}

/// Frame and send a control payload (shed notice, error). Control payloads
/// are a handful of bytes, far under the frame cap, so the framing error
/// branch cannot trigger.
fn send_frame(responder: Responder, payload: &[u8]) {
    if let Ok(frame) = frame_bytes(payload) {
        responder.send(frame);
    }
}

/// Score one drained batch with cross-request stacking and answer every
/// responder with an encoded gRPC frame.
pub(crate) fn score_grpc_batch(
    batch: &mut Vec<Pending<ScoreJob<Responder>>>,
    apply: impl FnMut(Option<&str>, &crayfish_tensor::Tensor) -> Result<crayfish_tensor::Tensor>,
) {
    let jobs: Vec<ScoreJob<Responder>> = batch.drain(..).map(|p| p.payload).collect();
    score_stacked(jobs, apply, |responder, out| send_grpc(responder, &out));
}

fn send_grpc(responder: Responder, out: &Result<crayfish_tensor::Tensor>) {
    let payload = match out {
        Ok(t) => encode_tensor_binary(t),
        Err(e) => encode_error_binary(&e.to_string()),
    };
    // An oversized response degrades to an error frame rather than
    // dropping the responder (which would hang the client).
    match frame_bytes(&payload) {
        Ok(frame) => responder.send(frame),
        Err(_) => send_frame(
            responder,
            &encode_error_binary("response exceeds frame cap"),
        ),
    }
}

fn handle_connection(stream: TcpStream, registry: &ModelRegistry) {
    let mut writer = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while let Ok(Some(payload)) = read_frame(&mut reader) {
        let reply = match decode_request_binary(&payload) {
            Ok((model, input)) => match registry
                .resolve(model.as_deref())
                .and_then(|pool| pool.with_model(|m| m.apply(&input)))
                .and_then(|applied| applied.map_err(Into::into))
            {
                Ok(output) => encode_tensor_binary(&output),
                Err(e) => encode_error_binary(&e.to_string()),
            },
            Err(e) => encode_error_binary(&e.to_string()),
        };
        if write_frame(&mut writer, &reply).is_err() {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{GrpcClient, ScoringClient};
    use crayfish_models::tiny;
    use crayfish_sim::NetworkModel;
    use crayfish_tensor::Tensor;

    #[test]
    fn multi_model_serving_by_name() {
        let registry = ModelRegistry::new(ServingConfig::default());
        registry.deploy("mlp", &tiny::tiny_mlp(1)).unwrap();
        registry.deploy("cnn", &tiny::tiny_cnn(1)).unwrap();
        let server = start_with_registry(registry.clone()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let mlp_in = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        let cnn_in = Tensor::seeded_uniform([1, 3, 8, 8], 1, 0.0, 1.0);
        assert_eq!(
            client.infer_named("mlp", &mlp_in).unwrap().shape().dims(),
            &[1, 4]
        );
        assert_eq!(
            client.infer_named("cnn", &cnn_in).unwrap().shape().dims(),
            &[1, 4]
        );
        // Ambiguous unnamed request against two models errors.
        assert!(client.infer(&mlp_in).is_err());
        // Unknown model errors but keeps the connection alive.
        assert!(client.infer_named("nope", &mlp_in).is_err());
        assert!(client.infer_named("mlp", &mlp_in).is_ok());
        server.shutdown();
    }

    #[test]
    fn hot_deploy_swaps_versions_mid_stream() {
        let registry = ModelRegistry::new(ServingConfig::default());
        registry.deploy("m", &tiny::tiny_mlp(1)).unwrap();
        let server = start_with_registry(registry.clone()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let input = Tensor::seeded_uniform([1, 8, 8], 7, 0.0, 1.0);
        let v1_out = client.infer_named("m", &input).unwrap();
        // Hot-swap to differently seeded weights; same connection must see
        // the new version immediately.
        assert_eq!(registry.deploy("m", &tiny::tiny_mlp(999)).unwrap(), 2);
        let v2_out = client.infer_named("m", &input).unwrap();
        assert_eq!(v2_out.shape(), v1_out.shape());
        assert!(
            v1_out.max_abs_diff(&v2_out).unwrap() > 1e-6,
            "new version did not take effect"
        );
        server.shutdown();
    }

    #[test]
    fn serves_inference_over_tcp() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let input = Tensor::seeded_uniform([2, 8, 8], 1, 0.0, 1.0);
        let out = client.infer(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
        server.shutdown();
    }

    #[test]
    fn bad_input_shape_returns_remote_error() {
        let server = start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let err = client.infer(&Tensor::zeros([2, 9, 9])).unwrap_err();
        assert!(matches!(err, crate::ServingError::Remote(_)), "{err}");
        // The connection survives the error.
        let out = client
            .infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
        server.shutdown();
    }

    #[test]
    fn thread_per_connection_path_still_serves() {
        let server = start(
            &tiny::tiny_mlp(1),
            ServingConfig {
                io: crate::IoModel::ThreadPerConnection,
                ..Default::default()
            },
        )
        .unwrap();
        let mut client = GrpcClient::connect(server.addr(), NetworkModel::zero()).unwrap();
        let out = client
            .infer(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
        server.shutdown();
    }

    #[test]
    fn batches_form_across_connections() {
        // Many clients hammering a single replica with a generous batch
        // window must produce at least one multi-request batch.
        let obs = crayfish_obs::ObsHandle::enabled();
        let server = start(
            &tiny::tiny_mlp(1),
            ServingConfig {
                replicas: 1,
                obs: obs.clone(),
                admission: crayfish_admission::AdmissionConfig {
                    max_batch: 8,
                    max_wait: std::time::Duration::from_millis(5),
                    queue_capacity: 256,
                },
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..8 {
            handles.push(std::thread::spawn(move || {
                let mut c = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
                for i in 0..20u64 {
                    let input = Tensor::seeded_uniform([1, 8, 8], t * 1000 + i, 0.0, 1.0);
                    let out = c.infer(&input).unwrap();
                    assert_eq!(out.shape().dims(), &[1, 4]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let metrics = crayfish_admission::AdmissionMetrics::new(&obs);
        let sizes = metrics.batch_size_snapshot();
        assert_eq!(sizes.sum(), 160, "every request must be scored once");
        assert!(
            sizes.max() > 1,
            "no cross-connection batch ever formed (max batch {})",
            sizes.max()
        );
        server.shutdown();
    }

    #[test]
    fn full_queue_sheds_with_overloaded() {
        // Capacity 1 with a slow-to-drain batch window: concurrent pushes
        // must shed, and the shed must surface as a typed Overloaded error
        // with a positive hint — never a hang or a dropped connection.
        let server = start(
            &tiny::tiny_mlp(1),
            ServingConfig {
                replicas: 1,
                admission: crayfish_admission::AdmissionConfig {
                    max_batch: 1,
                    max_wait: std::time::Duration::from_millis(1),
                    queue_capacity: 1,
                },
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let shed = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for t in 0..8 {
            let shed = shed.clone();
            handles.push(std::thread::spawn(move || {
                let mut c = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
                for i in 0..30u64 {
                    let input = Tensor::seeded_uniform([1, 8, 8], t * 997 + i, 0.0, 1.0);
                    match c.infer(&input) {
                        Ok(out) => assert_eq!(out.shape().dims(), &[1, 4]),
                        Err(crate::ServingError::Overloaded { retry_after }) => {
                            assert!(retry_after > std::time::Duration::ZERO);
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected error under overload: {e}"),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            shed.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "a capacity-1 queue under 8 hammering clients must shed"
        );
        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_served() {
        let server = start(
            &tiny::tiny_mlp(1),
            ServingConfig {
                replicas: 4,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for t in 0..4 {
            handles.push(std::thread::spawn(move || {
                let mut c = GrpcClient::connect(addr, NetworkModel::zero()).unwrap();
                for i in 0..10u64 {
                    let input = Tensor::seeded_uniform([1, 8, 8], t * 100 + i, 0.0, 1.0);
                    let out = c.infer(&input).unwrap();
                    assert_eq!(out.shape().dims(), &[1, 4]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
