//! # crayfish-kstreams
//!
//! A pull-based stream processing engine in the style of Kafka Streams
//! (§3.4.1 of the paper), implementing the Crayfish `DataProcessor`
//! interface as an [`EnginePersonality`] over the shared engine kernel.
//!
//! Mechanisms reproduced:
//!
//! * **Pull-based processing**: each stream thread polls a batch from its
//!   assigned partitions, runs *every* record through the whole topology
//!   (source → transform/score → sink), flushes the produced results, and
//!   commits — only then does it request new input. This is the "events
//!   need to go through the whole processing DAG before requesting a new
//!   one" behaviour from Figure 4 of the paper.
//! * **Partition-based scaling**: parallelism comes from assigning topic
//!   partitions to stream threads; `mp` threads share the input topic's
//!   partitions, and `mp` can never exceed the partition count usefully.
//! * **Tight broker integration**: no intermediate buffering — records move
//!   straight from the fetch to the producer, which the paper credits for
//!   Kafka Streams' throughput edge over Flink (§5.3.1, §5.3.3).
//!
//! The whole engine is one kernel pipeline: a stream thread *is* the
//! kernel's full-chain worker with `flush_before_commit` on (the strict
//! pull cycle) and `max.poll.records` capping each fetch.

#![forbid(unsafe_code)]

use std::time::Duration;

use crayfish_core::{DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_engine_kernel::{EnginePersonality, PipelineSettings, WorkerSet};
use crayfish_sim::{calibration, Cost};

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct KStreamsOptions {
    /// Max records fetched per poll (`max.poll.records`).
    pub max_poll_records: usize,
    /// Poll timeout for each cycle.
    pub poll_timeout: Duration,
    /// Calibrated per-record framework cost of the JVM stream thread (see
    /// [`calibration::RECORD_OVERHEAD_KSTREAMS`]).
    pub record_overhead: Cost,
}

impl Default for KStreamsOptions {
    fn default() -> Self {
        KStreamsOptions {
            max_poll_records: 500,
            poll_timeout: Duration::from_millis(50),
            record_overhead: calibration::RECORD_OVERHEAD_KSTREAMS,
        }
    }
}

/// The Kafka-Streams-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct KStreamsProcessor {
    /// Engine options.
    pub options: KStreamsOptions,
}

impl KStreamsProcessor {
    /// Engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: KStreamsOptions) -> Self {
        KStreamsProcessor { options }
    }
}

impl EnginePersonality for KStreamsProcessor {
    fn name(&self) -> &'static str {
        "kstreams"
    }

    fn deploy(&self, ctx: &ProcessorContext, set: &mut WorkerSet) -> Result<()> {
        crayfish_engine_kernel::pipeline_workers(
            set,
            ctx,
            "kstreams-thread",
            PipelineSettings {
                max_poll_records: Some(self.options.max_poll_records),
                poll_timeout: self.options.poll_timeout,
                ingest_cost: self.options.record_overhead,
                // Finish the whole cycle — sink flush included — before
                // committing and requesting new input.
                flush_before_commit: true,
            },
        )
    }
}

impl DataProcessor for KStreamsProcessor {
    fn name(&self) -> &'static str {
        EnginePersonality::name(self)
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        crayfish_engine_kernel::start(self, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crayfish_broker::Broker;
    use crayfish_core::batch::testkit::{drain_scored, feed, onnx_ctx};
    use crayfish_core::chaos::{testkit::poll_until, ChaosHandle};
    use crayfish_core::obs::ObsHandle;
    use crayfish_sim::NetworkModel;

    fn bare() -> KStreamsProcessor {
        KStreamsProcessor::with_options(KStreamsOptions {
            record_overhead: Cost::ZERO,
            ..Default::default()
        })
    }

    #[test]
    fn strict_pull_cycle_commits_before_the_next_poll() {
        // The personality's defining discipline: each fetch is fully
        // processed, flushed, and committed before new input is requested —
        // so once the output holds everything, the group lag is already 0
        // and the kernel has recorded one commit per completed cycle.
        let obs = ObsHandle::enabled();
        let broker = Broker::with_parts(NetworkModel::zero(), obs.clone(), ChaosHandle::disabled());
        let ctx = onnx_ctx(broker.clone(), 8, 2);
        let job = bare().start(ctx).unwrap();
        feed(broker.as_ref(), "in", 8, 20);
        let scored = drain_scored(broker.as_ref(), "out", 8, 20, Duration::from_secs(10));
        assert_eq!(scored.len(), 20);
        assert!(poll_until(Duration::from_secs(5), || {
            broker.group_lag("sut", "in").unwrap() == 0
        }));
        assert!(obs.counter("engine_commits").get() > 0);
        job.stop();
    }

    #[test]
    fn more_threads_than_partitions_is_harmless() {
        let broker = Broker::new(NetworkModel::zero());
        let ctx = onnx_ctx(broker.clone(), 2, 6);
        let job = bare().start(ctx).unwrap();
        feed(broker.as_ref(), "in", 2, 10);
        assert!(poll_until(Duration::from_secs(5), || {
            broker.total_records("out").unwrap() >= 10
        }));
        assert_eq!(broker.total_records("out").unwrap(), 10);
        job.stop();
    }
}
