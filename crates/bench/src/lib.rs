//! Shared machinery for the Crayfish benchmark harness.
//!
//! Every table and figure of the paper's evaluation (§5–§6) has a
//! `harness = false` bench target in this crate that regenerates it. The
//! helpers here provide:
//!
//! * the **profile** — `CRAYFISH_BENCH_PROFILE=quick` (default) runs each
//!   configuration for a few seconds; `paper` stretches windows toward the
//!   paper's per-experiment budgets. `CRAYFISH_BENCH_SECS=<f64>` scales all
//!   windows directly.
//! * experiment-spec builders matching the paper's parameterisation
//!   (Table 1);
//! * a results-table printer that places the paper's reported value next to
//!   the measured one;
//! * JSON dumps of every run under `bench_results/` for EXPERIMENTS.md.

#![forbid(unsafe_code)]

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use serde::Serialize;

use crayfish::framework::{ExperimentResult, ExperimentSpec, ServingChoice};
use crayfish::prelude::*;
use crayfish_tensor::NnGraph;

/// Execution profile for the harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Profile {
    /// Short windows: the whole suite finishes in tens of minutes.
    Quick,
    /// Longer windows approaching the paper's measurement budgets.
    Paper,
}

/// The active profile from `CRAYFISH_BENCH_PROFILE`.
pub fn profile() -> Profile {
    match std::env::var("CRAYFISH_BENCH_PROFILE").as_deref() {
        Ok("paper") => Profile::Paper,
        _ => Profile::Quick,
    }
}

/// Global window scale from `CRAYFISH_BENCH_SECS` (1.0 = profile default).
fn window_scale() -> f64 {
    std::env::var("CRAYFISH_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Measurement window for FFNN-scale experiments.
pub fn ffnn_window() -> Duration {
    let base = match profile() {
        Profile::Quick => 5.0,
        Profile::Paper => 60.0,
    };
    Duration::from_secs_f64(base * window_scale())
}

/// Measurement window for ResNet50-scale experiments (inference is ~0.7 s
/// per image on the evaluation host, so windows must admit enough events).
pub fn resnet_window() -> Duration {
    let base = match profile() {
        Profile::Quick => 30.0,
        Profile::Paper => 180.0,
    };
    Duration::from_secs_f64(base * window_scale())
}

/// The parallelism sweep for FFNN scaling figures.
pub fn mp_sweep() -> Vec<usize> {
    vec![1, 2, 4, 8, 16]
}

/// The reduced parallelism sweep for ResNet-scale scaling figures.
pub fn mp_sweep_resnet() -> Vec<usize> {
    match profile() {
        Profile::Quick => vec![1, 4],
        Profile::Paper => vec![1, 2, 4, 8, 16],
    }
}

/// [`resnet_window`] with a floor: ResNet events take seconds each on this
/// host, so scaled-down windows must still admit a handful of events.
pub fn resnet_window_at_least(min_secs: u64) -> Duration {
    resnet_window().max(Duration::from_secs(min_secs))
}

/// An offered load far above any configuration's capacity, used to measure
/// sustainable throughput in the open-loop scenario (the paper offers up to
/// 30 k events/s).
pub const OVERLOAD_FFNN: f64 = 30_000.0;
/// Paper's offered rate for ResNet50 throughput experiments.
pub const OVERLOAD_RESNET: f64 = 256.0;

/// One cached ResNet50 (building it materialises ~25 M weights).
pub fn resnet_graph() -> Arc<NnGraph> {
    static G: OnceLock<Arc<NnGraph>> = OnceLock::new();
    G.get_or_init(|| Arc::new(ModelSpec::Resnet50.build(42)))
        .clone()
}

/// Base spec with the paper's structural defaults (32 partitions, 25 %
/// warmup discard, calibrated LAN).
pub fn base_spec(model: ModelSpec, serving: ServingChoice) -> ExperimentSpec {
    let mut spec = ExperimentSpec::quick(model, serving);
    spec.partitions = 32;
    spec.warmup_fraction = 0.25;
    spec.network = NetworkModel::lan_1gbps();
    spec.duration = ffnn_window();
    spec
}

/// All five serving tools of Table 4, in the paper's column order.
pub fn ffnn_tools() -> Vec<(&'static str, ServingChoice)> {
    vec![
        (
            "dl4j (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Dl4j,
                device: Device::Cpu,
            },
        ),
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "saved_model (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::SavedModel,
                device: Device::Cpu,
            },
        ),
        (
            "torchserve (x)",
            ServingChoice::External {
                kind: ExternalKind::TorchServe,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ]
}

/// The ResNet50 serving tools of Table 4 / Fig. 7.
pub fn resnet_tools() -> Vec<(&'static str, ServingChoice)> {
    vec![
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "torchserve (x)",
            ServingChoice::External {
                kind: ExternalKind::TorchServe,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ]
}

/// Run one experiment, logging progress to stderr.
pub fn run(
    label: &str,
    processor: &dyn crayfish::framework::DataProcessor,
    spec: &ExperimentSpec,
) -> ExperimentResult {
    eprintln!(
        "  running {label} [{} | {} | bsz={} mp={} {:?}] ...",
        processor.name(),
        spec.serving.label(),
        spec.bsz,
        spec.mp,
        spec.duration
    );
    let result = if spec.model == ModelSpec::Resnet50 {
        crayfish::framework::runner::run_experiment_with_graph(processor, spec, resnet_graph())
    } else {
        run_experiment(processor, spec)
    }
    .unwrap_or_else(|e| panic!("{label}: {e}"));
    eprintln!(
        "    -> {:.1} events/s, p50 {:.1} ms, mean {:.1} ms ({} samples)",
        result.throughput_eps, result.latency.p50, result.latency.mean, result.latency.count
    );
    result
}

/// A printable comparison table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render to stdout.
    pub fn print(&self) {
        println!("\n=== {} ===", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (i, cell) in cells.iter().enumerate() {
                let width = widths.get(i).copied().unwrap_or(8);
                out.push_str(&format!("{cell:<width$}  "));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Serializable record of one measured configuration.
#[derive(Debug, Serialize)]
pub struct Measurement {
    /// Configuration label.
    pub config: String,
    /// Post-warmup throughput (events/s).
    pub throughput_eps: f64,
    /// Latency summary (ms).
    pub latency: crayfish::framework::metrics::Summary,
    /// Events produced.
    pub produced: u64,
    /// Events scored.
    pub consumed: usize,
}

impl Measurement {
    /// Build from an experiment result.
    pub fn of(config: impl Into<String>, r: &ExperimentResult) -> Measurement {
        Measurement {
            config: config.into(),
            throughput_eps: r.throughput_eps,
            latency: r.latency,
            produced: r.produced,
            consumed: r.consumed,
        }
    }
}

/// Persist a bench's measurements to `<repo root>/bench_results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    // Anchor at the workspace root regardless of the invoking directory.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let dir = dir.as_path();
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        eprintln!("  saved {}", path.display());
    }
}

/// Format a throughput cell.
pub fn eps(v: f64) -> String {
    format!("{v:.1}")
}

/// Format a latency cell as `mean ± std`.
pub fn ms_pm(summary: &crayfish::framework::metrics::Summary) -> String {
    format!("{:.1} ± {:.1}", summary.mean, summary.std)
}
