//! The model zoo: name-based lookup used by benchmark configurations.

use serde::{Deserialize, Serialize};

use crayfish_tensor::{NnGraph, Shape};

use crate::error::ModelError;
use crate::{ffnn, resnet, tiny, Result};

/// Identifies one of the models shipped with Crayfish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ModelSpec {
    /// The paper's small model: Fashion-MNIST FFNN (~28 K params).
    Ffnn,
    /// The paper's large model: ResNet50 (~25 M params).
    Resnet50,
    /// Test-scale MLP (not part of the paper's evaluation).
    TinyMlp,
    /// Test-scale CNN with a residual connection.
    TinyCnn,
}

impl ModelSpec {
    /// All models, paper models first.
    pub const ALL: [ModelSpec; 4] = [
        ModelSpec::Ffnn,
        ModelSpec::Resnet50,
        ModelSpec::TinyMlp,
        ModelSpec::TinyCnn,
    ];

    /// Canonical name used in configuration files.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::Ffnn => "ffnn",
            ModelSpec::Resnet50 => "resnet50",
            ModelSpec::TinyMlp => "tiny-mlp",
            ModelSpec::TinyCnn => "tiny-cnn",
        }
    }

    /// Look a model up by name.
    pub fn by_name(name: &str) -> Result<ModelSpec> {
        Self::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| ModelError::Unknown(name.to_string()))
    }

    /// Per-item input shape (no batch dimension).
    pub fn input_shape(&self) -> Shape {
        match self {
            ModelSpec::Ffnn => Shape::from([28, 28]),
            ModelSpec::Resnet50 => Shape::from(resnet::INPUT_SHAPE),
            ModelSpec::TinyMlp => Shape::from([8, 8]),
            ModelSpec::TinyCnn => Shape::from([3, 8, 8]),
        }
    }

    /// Number of output classes.
    pub fn classes(&self) -> usize {
        match self {
            ModelSpec::Ffnn => ffnn::CLASSES,
            ModelSpec::Resnet50 => resnet::CLASSES,
            ModelSpec::TinyMlp | ModelSpec::TinyCnn => 4,
        }
    }

    /// Build the model graph with seeded weights.
    pub fn build(&self, seed: u64) -> NnGraph {
        match self {
            ModelSpec::Ffnn => ffnn::build(seed),
            ModelSpec::Resnet50 => resnet::build(seed),
            ModelSpec::TinyMlp => tiny::tiny_mlp(seed),
            ModelSpec::TinyCnn => tiny::tiny_cnn(seed),
        }
    }
}

/// A small cache so repeated lookups of the same `(model, seed)` share one
/// built graph (ResNet50 takes ~100 ms and ~100 MB to materialise; workers
/// clone the `Arc`'d weights cheaply).
#[derive(Debug, Default)]
pub struct ModelZoo {
    cache: std::sync::Mutex<Vec<((ModelSpec, u64), NnGraph)>>,
}

impl ModelZoo {
    /// An empty zoo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get (building and caching if needed) the graph for `spec`/`seed`.
    pub fn get(&self, spec: ModelSpec, seed: u64) -> NnGraph {
        let mut cache = self.cache.lock().expect("zoo lock poisoned");
        if let Some((_, g)) = cache.iter().find(|(k, _)| *k == (spec, seed)) {
            return g.clone();
        }
        let g = spec.build(seed);
        cache.push(((spec, seed), g.clone()));
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for m in ModelSpec::ALL {
            assert_eq!(ModelSpec::by_name(m.name()).unwrap(), m);
        }
        assert!(ModelSpec::by_name("gpt5").is_err());
    }

    #[test]
    fn shapes_and_classes_match_models() {
        for m in ModelSpec::ALL {
            if matches!(m, ModelSpec::Resnet50) {
                continue; // built in its own test; too slow to rebuild here
            }
            let g = m.build(1);
            assert_eq!(g.input_shape().unwrap(), m.input_shape());
            assert_eq!(g.output_shape(1).unwrap().dims()[1], m.classes());
        }
    }

    #[test]
    fn zoo_caches_and_clones() {
        let zoo = ModelZoo::new();
        let a = zoo.get(ModelSpec::TinyMlp, 3);
        let b = zoo.get(ModelSpec::TinyMlp, 3);
        assert_eq!(a.param_count(), b.param_count());
        let c = zoo.get(ModelSpec::TinyMlp, 4);
        assert_eq!(a.nodes().len(), c.nodes().len());
    }

    #[test]
    fn serde_spec_roundtrip() {
        let json = serde_json::to_string(&ModelSpec::Resnet50).unwrap();
        assert_eq!(json, "\"resnet50\"");
        assert_eq!(
            serde_json::from_str::<ModelSpec>(&json).unwrap(),
            ModelSpec::Resnet50
        );
    }
}
