//! Concurrency properties of the broker: offset integrity and
//! exactly-once-per-group delivery under parallel producers and consumers.

use std::time::Duration;

use bytes::Bytes;
use crayfish_broker::{Broker, PartitionConsumer, Producer, ProducerConfig};
use crayfish_sim::NetworkModel;

#[test]
fn parallel_producers_preserve_every_record() {
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("t", 8).unwrap();
    let producers = 4;
    let per_producer = 500u32;
    let mut handles = Vec::new();
    for p in 0..producers {
        let broker = broker.clone();
        handles.push(std::thread::spawn(move || {
            let mut producer = Producer::new(broker, "t", ProducerConfig::default()).unwrap();
            for i in 0..per_producer {
                // Encode (producer id, seq) so receipt can be audited.
                let mut payload = vec![p as u8];
                payload.extend_from_slice(&i.to_le_bytes());
                producer.send(None, Bytes::from(payload)).unwrap();
            }
            producer.flush();
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        broker.total_records("t").unwrap(),
        (producers as u64) * per_producer as u64
    );
    // Per-producer sequences are strictly increasing within each partition
    // (the broker never reorders one producer's records in a partition).
    for partition in 0..8u32 {
        let recs = broker
            .read("t", partition, 0, usize::MAX, usize::MAX)
            .unwrap();
        let mut last_seq = vec![-1i64; producers];
        for rec in &recs {
            let p = rec.value[0] as usize;
            let seq = u32::from_le_bytes(rec.value[1..5].try_into().unwrap()) as i64;
            assert!(
                seq > last_seq[p],
                "producer {p} reordered in partition {partition}: {seq} after {}",
                last_seq[p]
            );
            last_seq[p] = seq;
        }
    }
}

#[test]
fn disjoint_consumers_partition_the_stream_exactly_once() {
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("t", 6).unwrap();
    let total = 600u64;
    {
        let mut producer = Producer::new(broker.clone(), "t", ProducerConfig::default()).unwrap();
        for i in 0..total {
            producer
                .send(None, Bytes::from(i.to_le_bytes().to_vec()))
                .unwrap();
        }
        producer.flush();
    }
    let assignments = Broker::range_assignment(6, 3);
    let mut handles = Vec::new();
    for assigned in assignments {
        let broker = broker.clone();
        handles.push(std::thread::spawn(move || {
            let mut consumer = PartitionConsumer::new(broker, "t", "group", assigned).unwrap();
            let mut got = Vec::new();
            loop {
                let recs = consumer.poll(Duration::from_millis(100)).unwrap();
                if recs.is_empty() {
                    break;
                }
                for r in recs {
                    got.push(u64::from_le_bytes(r.value[..8].try_into().unwrap()));
                }
            }
            got
        }));
    }
    let mut all: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort_unstable();
    let n = all.len();
    all.dedup();
    assert_eq!(all.len(), n, "duplicate delivery across disjoint consumers");
    assert_eq!(all.len() as u64, total, "missing records");
    assert_eq!(all.first(), Some(&0));
    assert_eq!(all.last(), Some(&(total - 1)));
}

#[test]
fn concurrent_appends_keep_offsets_dense_per_partition() {
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("t", 1).unwrap();
    let writers = 4;
    let per_writer = 250;
    let mut handles = Vec::new();
    for _ in 0..writers {
        let broker = broker.clone();
        handles.push(std::thread::spawn(move || {
            for _ in 0..per_writer {
                broker
                    .append("t", 0, vec![(Bytes::from_static(b"x"), 0.0)])
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let recs = broker.read("t", 0, 0, usize::MAX, usize::MAX).unwrap();
    assert_eq!(recs.len(), writers * per_writer);
    for (i, r) in recs.iter().enumerate() {
        assert_eq!(r.offset, i as u64, "offset gap at {i}");
    }
    // LogAppendTime is non-decreasing along the log.
    for pair in recs.windows(2) {
        assert!(pair[1].append_time_ms >= pair[0].append_time_ms);
    }
}

#[test]
fn consumer_groups_are_independent() {
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("t", 2).unwrap();
    let mut producer = Producer::new(broker.clone(), "t", ProducerConfig::default()).unwrap();
    for i in 0..20u8 {
        producer.send(None, Bytes::from(vec![i])).unwrap();
    }
    producer.flush();
    // Two groups each see the full stream.
    for group in ["g1", "g2"] {
        let mut consumer = PartitionConsumer::new(broker.clone(), "t", group, vec![0, 1]).unwrap();
        let mut count = 0;
        loop {
            let recs = consumer.poll(Duration::from_millis(50)).unwrap();
            if recs.is_empty() {
                break;
            }
            count += recs.len();
        }
        consumer.commit();
        assert_eq!(count, 20, "group {group}");
    }
    assert_eq!(broker.group_lag("g1", "t").unwrap(), 0);
    assert_eq!(broker.group_lag("g2", "t").unwrap(), 0);
}
