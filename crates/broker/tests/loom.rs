//! Loom models for the broker's long-poll handshake. Compiled only under
//! `RUSTFLAGS="--cfg loom"`.
//!
//! The interesting window: a consumer reads the topic version, finds no
//! data, and goes to sleep on the condvar — while a producer appends and
//! notifies. A lost wakeup here would leave the consumer blocked until its
//! deadline (and forever under loom, whose condvars never time out), so the
//! model proves the fetch long-poll cannot miss a concurrent append.
#![cfg(loom)]

use std::time::Duration;

use bytes::Bytes;
use crayfish_broker::{Broker, PartitionConsumer};
use crayfish_sim::NetworkModel;
use crayfish_sync::{model, thread};

/// The deadline is a liveness bound, never the wakeup mechanism: under loom
/// the only way this poll returns is the append's notification arriving,
/// whatever the interleaving of version read, append, and condvar wait.
#[test]
fn long_poll_never_misses_a_concurrent_append() {
    model(|| {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("t", 1).unwrap();
        let b2 = broker.clone();
        let producer = thread::spawn(move || {
            b2.append("t", 0, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        });
        let mut consumer = PartitionConsumer::new(broker, "t", "g", vec![0]).unwrap();
        let recs = consumer.poll(Duration::from_secs(3600)).unwrap();
        assert_eq!(recs.len(), 1, "append lost by the long-poll");
        producer.join().unwrap();
    });
}

/// Offset commits race reads on the registry RwLock; a finished commit must
/// be visible to a subsequent read (what consumer restarts rely on).
#[test]
fn committed_offsets_are_visible_after_the_commit() {
    model(|| {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("t", 1).unwrap();
        let b2 = broker.clone();
        let committer = thread::spawn(move || b2.commit_offset("g", "t", 0, 1));
        let racing = broker.committed_offset("g", "t", 0);
        assert!(racing <= 1);
        committer.join().unwrap();
        assert_eq!(broker.committed_offset("g", "t", 0), 1);
    });
}

/// Two clients race to discover that the recorded leader's node is dead.
/// Election must be idempotent under any interleaving: exactly one epoch
/// bump, one election, and both observers agree on the same new leader.
///
/// The chaos switch is flipped *before* the threads spawn — the chaos crate
/// uses raw parking_lot internally (invisible to loom's scheduler), so only
/// the broker's own locks are part of the model.
#[test]
fn concurrent_election_elects_exactly_one_leader_per_epoch() {
    use crayfish_broker::replication::ReplicatedPartition;

    model(|| {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        chaos.set_broker_dead(0, true);
        let p = std::sync::Arc::new(ReplicatedPartition::new(&[0, 1, 2], 1, usize::MAX));
        let p2 = p.clone();
        let c2 = chaos.clone();
        let racer = thread::spawn(move || p2.leader(&c2).unwrap());
        let here = p.leader(&chaos).unwrap();
        let there = racer.join().unwrap();
        assert_eq!(here, (1, 1), "lowest live ISR member at epoch 1");
        assert_eq!(there, here, "both racers must agree on leader and epoch");
        assert_eq!(p.status().elections, 1, "the election must happen once");
    });
}

/// A fenced ex-leader's in-flight append can never land: an append carrying
/// the pre-election epoch is rejected whether it runs before, during, or
/// after the racing election — and the log gains no record from it.
#[test]
fn fenced_stale_epoch_append_never_lands() {
    use crayfish_broker::replication::{ReplError, ReplicatedPartition};

    model(|| {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let p = std::sync::Arc::new(ReplicatedPartition::new(&[0, 1, 2], 1, usize::MAX));
        // The soon-to-be-demoted leader captures epoch 0, then its node
        // dies before the write reaches the log.
        let (_, stale_epoch) = p.leader(&chaos).unwrap();
        chaos.set_broker_dead(0, true);
        let p2 = p.clone();
        let c2 = chaos.clone();
        let electing = thread::spawn(move || {
            // Another client notices and triggers the election.
            p2.leader(&c2).unwrap()
        });
        let write = p.append(
            &chaos,
            Some(stale_epoch),
            None,
            vec![(Bytes::from_static(b"late"), 0.0)],
        );
        assert!(
            matches!(write, Err(ReplError::Fenced { current: 1 })),
            "stale-epoch write must be fenced, got {write:?}"
        );
        electing.join().unwrap();
        assert_eq!(
            p.high_watermark(),
            0,
            "no record may land from a fenced write"
        );
    });
}
