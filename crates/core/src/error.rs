//! Framework error type.

use std::fmt;

/// Errors from the benchmark framework and the engines built on it.
#[derive(Debug)]
pub enum CoreError {
    /// Broker failure.
    Broker(crayfish_broker::BrokerError),
    /// External serving failure.
    Serving(crayfish_serving::ServingError),
    /// Embedded runtime failure.
    Runtime(crayfish_runtime::RuntimeError),
    /// Model construction/loading failure.
    Model(crayfish_models::ModelError),
    /// Malformed batch payload.
    Codec(String),
    /// Invalid experiment or processor configuration.
    Config(String),
    /// A worker thread died.
    WorkerPanic(String),
}

impl CoreError {
    /// Whether retrying the failed operation can plausibly succeed:
    /// transient broker failures (outage windows, lost acks) and
    /// connection-level serving failures. Codec, config, model, and
    /// runtime errors are terminal.
    pub fn is_transient(&self) -> bool {
        match self {
            CoreError::Broker(e) => e.is_transient(),
            CoreError::Serving(e) => e.is_transient(),
            _ => false,
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Broker(e) => write!(f, "broker: {e}"),
            CoreError::Serving(e) => write!(f, "serving: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime: {e}"),
            CoreError::Model(e) => write!(f, "model: {e}"),
            CoreError::Codec(msg) => write!(f, "codec: {msg}"),
            CoreError::Config(msg) => write!(f, "config: {msg}"),
            CoreError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Broker(e) => Some(e),
            CoreError::Serving(e) => Some(e),
            CoreError::Runtime(e) => Some(e),
            CoreError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crayfish_broker::BrokerError> for CoreError {
    fn from(e: crayfish_broker::BrokerError) -> Self {
        CoreError::Broker(e)
    }
}

impl From<crayfish_serving::ServingError> for CoreError {
    fn from(e: crayfish_serving::ServingError) -> Self {
        CoreError::Serving(e)
    }
}

impl From<crayfish_runtime::RuntimeError> for CoreError {
    fn from(e: crayfish_runtime::RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<crayfish_models::ModelError> for CoreError {
    fn from(e: crayfish_models::ModelError) -> Self {
        CoreError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = CoreError::Config("mp must be >= 1".into());
        assert!(e.to_string().contains("mp"));
    }

    #[test]
    fn transient_follows_the_source_error() {
        assert!(
            CoreError::Broker(crayfish_broker::BrokerError::Unavailable {
                topic: "in".into(),
                partition: 0,
            })
            .is_transient()
        );
        assert!(CoreError::Serving(crayfish_serving::ServingError::Closed).is_transient());
        assert!(!CoreError::Codec("bad payload".into()).is_transient());
        assert!(!CoreError::Config("bad mp".into()).is_transient());
    }
}
