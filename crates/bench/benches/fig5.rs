//! **Figure 5** — end-to-end latency vs batch size for every serving tool
//! on the Flink-style engine (closed loop, FFNN, `mp = 1`).
//!
//! The paper reports mean ms/batch for batch sizes up to 512 at one event
//! per second; the quick profile raises the rate slightly so short windows
//! still collect enough samples.

use crayfish::prelude::*;
use crayfish_bench::*;

/// Paper-reported reference points (ms, FFNN, Flink): bsz 128.
fn paper_bsz128(tool: &str) -> Option<f64> {
    match tool {
        "dl4j (e)" => Some(229.0),
        "saved_model (e)" => Some(188.0),
        "tf-serving (x)" => Some(191.0),
        _ => None,
    }
}

fn main() {
    let flink = FlinkProcessor::new();
    let batch_sizes = [32usize, 128, 512];
    let rate = match profile() {
        Profile::Quick => 4.0,
        Profile::Paper => 1.0,
    };
    let mut table = Table::new(
        "Figure 5: latency vs batch size on Flink (ms/batch, FFNN, closed loop, mp=1)",
        &[
            "serving tool",
            "bsz",
            "latency (mean ± std)",
            "p99",
            "paper",
        ],
    );
    let mut dump = Vec::new();
    for (tool, serving) in ffnn_tools() {
        for bsz in batch_sizes {
            let mut spec = base_spec(ModelSpec::Ffnn, serving);
            spec.bsz = bsz;
            spec.workload = Workload::Constant { rate };
            spec.duration = ffnn_window().mul_f64(1.5);
            let result = run(&format!("fig5/{tool}/bsz{bsz}"), &flink, &spec);
            let paper = match (bsz, paper_bsz128(tool)) {
                (128, Some(v)) => format!("{v:.0}"),
                _ => "-".into(),
            };
            table.row(vec![
                tool.into(),
                bsz.to_string(),
                ms_pm(&result.latency),
                format!("{:.1}", result.latency.p99),
                paper,
            ]);
            dump.push(Measurement::of(format!("{tool}/bsz{bsz}"), &result));
        }
    }
    table.print();
    println!("\nPaper shape: embedded options cluster together; TF-Serving is comparable");
    println!("to (sometimes below) embedded latency despite the network hop; latency");
    println!("grows with batch size and variance grows with it.");
    save_json("fig5", &dump);
}
