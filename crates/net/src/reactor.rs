//! Readiness-driven connection reactor.
//!
//! One poll thread owns every connection of a server: it reads whatever
//! bytes are available, carves complete wire messages out of per-connection
//! buffers, and hands each decoded request to the dispatch callback
//! together with a [`Responder`] completion token. Request handling
//! happens elsewhere (serving replica workers, broker RPC workers); when a
//! response is ready the worker calls [`Responder::send`], which queues the
//! encoded bytes back to the reactor and wakes it. The reactor writes
//! responses strictly in per-connection request order, so pipelined clients
//! written against the blocking one-thread-per-connection servers keep
//! working unchanged.
//!
//! There is no OS readiness API in this stack (no epoll wrapper available
//! offline), so the reactor approximates readiness with non-blocking
//! sockets plus a short timed wait on a [`Waker`]: any completed response
//! or newly accepted connection wakes it immediately; otherwise it wakes
//! every `PARK` to poll for client bytes. That keeps the idle cost bounded
//! while the hot path — under load the loop always finds work and never
//! sleeps — stays allocation-free: the `poll_*` functions reuse
//! per-connection buffers and are covered by the `HOT_PATH_ALLOC` lint.
//! The `Waker` (rather than raw `thread::park`) exists so the
//! producer/consumer handoff is loom-modelable; see `tests/loom.rs`.

use std::collections::{BTreeMap, HashMap};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::codec::{poll_parse, ParseStep, MAX_FRAME_BYTES};
use crate::server::{assemble_handle, ServerHandle};
use crate::waker::Waker;
use crate::Result;

/// Idle poll interval. An upper bound on wakeup latency, never the only
/// wakeup path: completions and new connections wake the reactor directly.
const PARK: Duration = Duration::from_micros(100);

/// Cap on unparsed buffered bytes before a connection is declared
/// malformed (an HTTP peer that never finishes its headers, say).
const MAX_BUFFERED: usize = MAX_FRAME_BYTES + 64 * 1024;

/// Read chunk size per `poll_read` call.
const READ_CHUNK: usize = 16 * 1024;

/// The wire format a reactor server speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// Length-prefixed binary frames (TF-Serving / TorchServe analogs,
    /// broker RPC).
    Grpc,
    /// HTTP/1.1 with `Content-Length` bodies (Ray Serve analog).
    Http,
}

/// Completed responses travelling from handler workers back to the poll
/// thread: `(connection id, request seq, encoded wire bytes)`.
struct Completions {
    ready: Mutex<Vec<(u64, u64, Vec<u8>)>>,
    /// Wakes the poll thread the moment a response is queued.
    waker: Arc<Waker>,
}

/// Completion token for one in-flight request. Consumed by sending the
/// encoded response bytes; the reactor writes them once every earlier
/// response on the same connection has been written.
pub struct Responder {
    completions: Arc<Completions>,
    conn: u64,
    seq: u64,
}

impl Responder {
    /// Queue this request's encoded response and wake the reactor.
    pub fn send(self, bytes: Vec<u8>) {
        self.completions
            .ready
            .lock()
            .push((self.conn, self.seq, bytes));
        self.completions.waker.notify();
    }
}

impl std::fmt::Debug for Responder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Responder")
            .field("conn", &self.conn)
            .field("seq", &self.seq)
            .finish()
    }
}

/// Per-connection state: the socket, its read/write buffers, and the
/// request/response sequencing that keeps pipelined responses in order.
struct Conn {
    stream: TcpStream,
    /// Buffered inbound bytes; `[parsed..]` is not yet consumed.
    inbuf: Vec<u8>,
    parsed: usize,
    /// Encoded outbound bytes; `[written..]` is not yet on the wire.
    outbuf: Vec<u8>,
    written: usize,
    /// Seq assigned to the next parsed request.
    next_seq: u64,
    /// Seq whose response is next to enter `outbuf`.
    next_write: u64,
    /// Out-of-order completions parked until their turn.
    pending: BTreeMap<u64, Vec<u8>>,
    /// Read side saw EOF; drain remaining responses, then drop.
    peer_closed: bool,
    /// Unrecoverable (reset, malformed wire bytes); drop immediately.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            parsed: 0,
            outbuf: Vec::new(),
            written: 0,
            next_seq: 0,
            next_write: 0,
            pending: BTreeMap::new(),
            peer_closed: false,
            dead: false,
        }
    }

    /// Responses outstanding: parsed requests whose bytes have not fully
    /// left the socket yet.
    fn draining(&self) -> bool {
        self.next_write < self.next_seq || self.written < self.outbuf.len()
    }

    fn finished(&self) -> bool {
        self.dead || (self.peer_closed && !self.draining())
    }
}

/// State shared between the accept thread, the handler workers, and the
/// poll thread.
struct ReactorShared {
    stop: Arc<AtomicBool>,
    /// Freshly accepted connections awaiting adoption by the poll thread.
    injector: Mutex<Vec<(u64, TcpStream)>>,
    completions: Arc<Completions>,
    /// The server-wide connection registry (`ServerHandle` severs these on
    /// shutdown; the reactor prunes entries as connections die).
    registry: Arc<Mutex<HashMap<u64, TcpStream>>>,
}

/// Spawn a reactor server: an accept thread feeding connections to a poll
/// thread which invokes `on_request(payload, responder)` for every
/// complete wire message. The callback must eventually resolve every
/// responder (admission sheds included) or the client hangs until
/// shutdown.
pub fn spawn_reactor_on(
    name: &'static str,
    addr: SocketAddr,
    wire: Wire,
    mut on_request: impl FnMut(&[u8], Responder) + Send + 'static,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let registry: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let waker = Arc::new(Waker::new());
    let shared = Arc::new(ReactorShared {
        stop: stop.clone(),
        injector: Mutex::new(Vec::new()),
        completions: Arc::new(Completions {
            ready: Mutex::new(Vec::new()),
            waker: waker.clone(),
        }),
        registry: registry.clone(),
    });

    let poll_shared = Arc::clone(&shared);
    let poll_thread = std::thread::Builder::new()
        .name(format!("{name}-reactor"))
        .spawn(move || run_reactor(&poll_shared, wire, &mut on_request))?;

    let accept_shared = Arc::clone(&shared);
    let accept_thread = std::thread::Builder::new()
        .name(format!("{name}-accept"))
        .spawn(move || {
            let mut next_conn_id = 0u64;
            for stream in listener.incoming() {
                if accept_shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stream.set_nodelay(true).ok();
                let id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    accept_shared.registry.lock().insert(id, clone);
                }
                accept_shared.injector.lock().push((id, stream));
                accept_shared.completions.waker.notify();
            }
        })?;

    let mut handle = assemble_handle(name, addr, stop, accept_thread, registry);
    let mut join = Some(poll_thread);
    handle.add_teardown(move || {
        if let Some(h) = join.take() {
            waker.notify();
            let _ = h.join();
        }
    });
    Ok(handle)
}

/// The poll loop. Exits when the stop flag is raised.
fn run_reactor(
    shared: &ReactorShared,
    wire: Wire,
    on_request: &mut (impl FnMut(&[u8], Responder) + Send),
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut scratch = [0u8; READ_CHUNK];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            // Connections were (or will be) severed by the handle; any
            // still-undelivered responses die with the server.
            for (_, c) in conns.drain() {
                let _ = c.stream.shutdown(Shutdown::Both);
            }
            return;
        }
        let mut progress = false;

        // Adopt newly accepted connections.
        for (id, stream) in shared.injector.lock().drain(..) {
            if stream.set_nonblocking(true).is_err() {
                shared.registry.lock().remove(&id);
                continue;
            }
            conns.insert(id, Conn::new(stream));
            progress = true;
        }

        // Route completed responses to their connections. Completions for
        // connections that died in the meantime are dropped.
        for (cid, seq, bytes) in shared.completions.ready.lock().drain(..) {
            if let Some(c) = conns.get_mut(&cid) {
                c.pending.insert(seq, bytes);
                progress = true;
            }
        }

        for (&id, c) in conns.iter_mut() {
            // Promote in-order completions into the write buffer.
            while let Some(bytes) = c.pending.remove(&c.next_write) {
                c.outbuf.extend_from_slice(&bytes);
                c.next_write += 1;
                progress = true;
            }

            progress |= poll_read(c, &mut scratch);

            // Carve complete messages out of the input buffer and hand
            // them to the dispatch callback (which allocates freely — the
            // decode and the handler push live there, not here).
            loop {
                match poll_parse(wire, &c.inbuf[c.parsed..]) {
                    ParseStep::Msg {
                        start,
                        end,
                        consumed,
                    } => {
                        let (abs_start, abs_end) = (c.parsed + start, c.parsed + end);
                        c.parsed += consumed;
                        let seq = c.next_seq;
                        c.next_seq += 1;
                        let responder = Responder {
                            completions: Arc::clone(&shared.completions),
                            conn: id,
                            seq,
                        };
                        on_request(&c.inbuf[abs_start..abs_end], responder);
                        progress = true;
                    }
                    ParseStep::Incomplete => {
                        if c.inbuf.len() - c.parsed > MAX_BUFFERED {
                            c.dead = true;
                        }
                        break;
                    }
                    ParseStep::Bad => {
                        c.dead = true;
                        break;
                    }
                }
            }
            poll_compact(c);

            progress |= poll_write(c);
        }

        // Drop finished connections and prune them from the registry.
        let before = conns.len();
        conns.retain(|_, c| !c.finished());
        if conns.len() != before {
            let mut registry = shared.registry.lock();
            registry.retain(|id, _| conns.contains_key(id));
            progress = true;
        }

        if !progress {
            shared.completions.waker.wait_timeout(PARK);
        }
    }
}

/// Pull available bytes off the socket into the connection's input buffer.
/// Returns whether any bytes arrived.
fn poll_read(c: &mut Conn, scratch: &mut [u8]) -> bool {
    if c.dead || c.peer_closed {
        return false;
    }
    let mut any = false;
    loop {
        match c.stream.read(scratch) {
            Ok(0) => {
                c.peer_closed = true;
                return any;
            }
            Ok(n) => {
                c.inbuf.extend_from_slice(&scratch[..n]);
                any = true;
                if n < scratch.len() {
                    return any;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return any,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return any;
            }
        }
    }
}

/// Flush as much of the write buffer as the socket accepts. Returns
/// whether any bytes left.
fn poll_write(c: &mut Conn) -> bool {
    if c.dead {
        return false;
    }
    let mut any = false;
    while c.written < c.outbuf.len() {
        match c.stream.write(&c.outbuf[c.written..]) {
            Ok(0) => {
                c.dead = true;
                return any;
            }
            Ok(n) => {
                c.written += n;
                any = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return any,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return any;
            }
        }
    }
    if c.written == c.outbuf.len() && c.written > 0 {
        c.outbuf.clear();
        c.written = 0;
    }
    any
}

/// Reclaim consumed bytes from the input buffer once everything buffered
/// has been parsed (the steady state), or when the consumed prefix has
/// grown large.
fn poll_compact(c: &mut Conn) {
    if c.parsed == 0 {
        return;
    }
    if c.parsed == c.inbuf.len() {
        c.inbuf.clear();
        c.parsed = 0;
    } else if c.parsed > READ_CHUNK * 4 {
        c.inbuf.copy_within(c.parsed.., 0);
        c.inbuf.truncate(c.inbuf.len() - c.parsed);
        c.parsed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{frame_bytes, poll_parse_grpc, poll_parse_http, read_frame, write_frame};
    use std::io::{BufRead, BufReader};

    fn echo_server(wire: Wire) -> ServerHandle {
        spawn_reactor_on(
            "echo-reactor",
            SocketAddr::from(([127, 0, 0, 1], 0)),
            wire,
            move |payload, responder| {
                let bytes = match wire {
                    Wire::Grpc => frame_bytes(payload).unwrap(),
                    Wire::Http => {
                        let mut out = Vec::new();
                        write!(
                            out,
                            "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n",
                            payload.len()
                        )
                        .unwrap();
                        out.extend_from_slice(payload);
                        out
                    }
                };
                responder.send(bytes);
            },
        )
        .unwrap()
    }

    #[test]
    fn grpc_echo_roundtrip() {
        let server = echo_server(Wire::Grpc);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        write_frame(&mut c, b"hello reactor").unwrap();
        let got = read_frame(&mut c).unwrap().unwrap();
        assert_eq!(got, b"hello reactor");
        server.shutdown();
    }

    #[test]
    fn pipelined_requests_come_back_in_order() {
        let server = echo_server(Wire::Grpc);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        // Write a burst of frames before reading anything back.
        for i in 0..32u32 {
            write_frame(&mut c, &i.to_le_bytes()).unwrap();
        }
        for i in 0..32u32 {
            let got = read_frame(&mut c).unwrap().unwrap();
            assert_eq!(got, i.to_le_bytes(), "response order violated");
        }
        server.shutdown();
    }

    #[test]
    fn http_echo_roundtrip() {
        let server = echo_server(Wire::Http);
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 4\r\n\r\nping")
            .unwrap();
        let mut r = BufReader::new(c);
        let mut status = String::new();
        r.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.1 200"));
        let mut blank = String::new();
        r.read_line(&mut blank).unwrap(); // Content-Length
        r.read_line(&mut blank).unwrap(); // empty line
        let mut body = [0u8; 4];
        r.read_exact(&mut body).unwrap();
        assert_eq!(&body, b"ping");
        server.shutdown();
    }

    #[test]
    fn malformed_http_headers_kill_only_that_connection() {
        let server = echo_server(Wire::Http);
        let mut bad = TcpStream::connect(server.addr()).unwrap();
        bad.write_all(b"POST /infer HTTP/1.1\r\nNo-Length: x\r\n\r\n")
            .unwrap();
        let mut buf = [0u8; 1];
        // The reactor drops the connection: read returns EOF.
        bad.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        assert_eq!(bad.read(&mut buf).unwrap_or(0), 0);
        // A well-formed connection still works.
        let mut good = TcpStream::connect(server.addr()).unwrap();
        good.write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 2\r\n\r\nok")
            .unwrap();
        let mut r = BufReader::new(good);
        let mut status = String::new();
        r.read_line(&mut status).unwrap();
        assert!(status.starts_with("HTTP/1.1 200"));
        server.shutdown();
    }

    #[test]
    fn parse_helpers_handle_every_split() {
        let frame = frame_bytes(b"abcdef").unwrap();
        for cut in 0..frame.len() {
            match poll_parse_grpc(&frame[..cut]) {
                ParseStep::Incomplete => {}
                _ => panic!("prefix of {cut} bytes should be incomplete"),
            }
        }
        match poll_parse_grpc(&frame) {
            ParseStep::Msg {
                start,
                end,
                consumed,
            } => {
                assert_eq!(&frame[start..end], b"abcdef");
                assert_eq!(consumed, frame.len());
            }
            _ => panic!("complete frame did not parse"),
        }
        assert!(matches!(
            poll_parse_grpc(&(u32::MAX).to_le_bytes()),
            ParseStep::Bad
        ));

        let req = b"POST /infer HTTP/1.1\r\ncontent-LENGTH:  3\r\n\r\nxyz";
        match poll_parse_http(req) {
            ParseStep::Msg { start, end, .. } => assert_eq!(&req[start..end], b"xyz"),
            _ => panic!("http request did not parse"),
        }
        for cut in 0..req.len() {
            match poll_parse_http(&req[..cut]) {
                ParseStep::Incomplete => {}
                _ => panic!("http prefix of {cut} bytes should be incomplete"),
            }
        }
    }
}
