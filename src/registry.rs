//! Name-based lookup of stream processing engines — what a configuration
//! file's `processor = "flink"` resolves through.

use crayfish_core::DataProcessor;
use crayfish_flink::FlinkProcessor;
use crayfish_kstreams::KStreamsProcessor;
use crayfish_ray::RayProcessor;
use crayfish_sparkss::SparkProcessor;

/// The engines shipped with this reproduction, in the paper's order.
pub fn engine_names() -> [&'static str; 4] {
    ["flink", "kstreams", "sparkss", "ray"]
}

/// Instantiate an engine (with default options) by name.
pub fn processor_by_name(name: &str) -> Option<Box<dyn DataProcessor>> {
    match name {
        "flink" => Some(Box::new(FlinkProcessor::new())),
        "kstreams" => Some(Box::new(KStreamsProcessor::new())),
        "sparkss" => Some(Box::new(SparkProcessor::new())),
        "ray" => Some(Box::new(RayProcessor::new())),
        _ => None,
    }
}

/// Instantiate every engine, paired with its name.
pub fn all_processors() -> Vec<(&'static str, Box<dyn DataProcessor>)> {
    engine_names()
        .into_iter()
        .map(|n| (n, processor_by_name(n).expect("shipped engine")))
        .collect()
}
