//! **Table 4** — sustainable throughput of every serving tool on the
//! Flink-style engine (`bsz = 1`, `mp = 1`), for FFNN and ResNet50.
//!
//! The open-loop scenario: the producer offers load far above capacity and
//! the measured output rate is the sustainable throughput.

use crayfish::prelude::*;
use crayfish_bench::*;

fn paper_ffnn(tool: &str) -> f64 {
    match tool {
        "dl4j (e)" => 787.53,
        "onnx (e)" => 1373.07,
        "saved_model (e)" => 1289.68,
        "torchserve (x)" => 225.09,
        "tf-serving (x)" => 617.2,
        _ => 0.0,
    }
}

fn paper_resnet(tool: &str) -> f64 {
    match tool {
        "onnx (e)" => 2.85,
        "torchserve (x)" => 0.91,
        "tf-serving (x)" => 2.62,
        _ => 0.0,
    }
}

fn main() {
    let flink = FlinkProcessor::new();
    let mut table = Table::new(
        "Table 4: throughput on Flink (events/s, bsz=1, mp=1)",
        &["model", "serving tool", "measured", "paper"],
    );
    let mut dump = Vec::new();

    for (tool, serving) in ffnn_tools() {
        let mut spec = base_spec(ModelSpec::Ffnn, serving);
        spec.workload = Workload::Constant {
            rate: OVERLOAD_FFNN,
        };
        let result = run(&format!("table4/ffnn/{tool}"), &flink, &spec);
        table.row(vec![
            "FFNN".into(),
            tool.into(),
            eps(result.throughput_eps),
            eps(paper_ffnn(tool)),
        ]);
        dump.push(Measurement::of(format!("ffnn/{tool}"), &result));
    }

    for (tool, serving) in resnet_tools() {
        let mut spec = base_spec(ModelSpec::Resnet50, serving);
        spec.workload = Workload::Constant {
            rate: OVERLOAD_RESNET,
        };
        spec.duration = resnet_window_at_least(40);
        let result = run(&format!("table4/resnet50/{tool}"), &flink, &spec);
        table.row(vec![
            "ResNet50".into(),
            tool.into(),
            eps(result.throughput_eps),
            eps(paper_resnet(tool)),
        ]);
        dump.push(Measurement::of(format!("resnet50/{tool}"), &result));
    }

    table.print();
    println!("\nPaper shape: embedded > external for FFNN (onnx ≈ saved_model > dl4j >");
    println!("tf-serving >> torchserve); for ResNet50 the gap collapses (onnx ≈ tf-serving).");
    save_json("table4", &dump);
}
