//! Error type for model construction and (de)serialization.

use std::fmt;

/// Errors from model building, format encoding/decoding, and the zoo.
#[derive(Debug)]
pub enum ModelError {
    /// Underlying tensor/graph error.
    Tensor(crayfish_tensor::TensorError),
    /// Malformed serialized model.
    Format(String),
    /// I/O failure while reading or writing a model file.
    Io(std::io::Error),
    /// Unknown model or format name.
    Unknown(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Tensor(e) => write!(f, "tensor error: {e}"),
            ModelError::Format(msg) => write!(f, "model format error: {msg}"),
            ModelError::Io(e) => write!(f, "model i/o error: {e}"),
            ModelError::Unknown(name) => write!(f, "unknown model or format: {name}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Tensor(e) => Some(e),
            ModelError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crayfish_tensor::TensorError> for ModelError {
    fn from(e: crayfish_tensor::TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

impl From<std::io::Error> for ModelError {
    fn from(e: std::io::Error) -> Self {
        ModelError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_variant_context() {
        let e = ModelError::Unknown("resnet99".into());
        assert!(e.to_string().contains("resnet99"));
    }
}
