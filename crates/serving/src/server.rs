//! Shared server machinery: configuration, lifecycle handle, accept loop,
//! and the worker-instance pool.

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crossbeam::channel::{bounded, Receiver, Sender};

use crayfish_admission::AdmissionConfig;
use crayfish_runtime::{Device, LoadedModel};
use crayfish_sim::OverheadModel;

use crate::{Result, ServingError};

/// How a server turns sockets into requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoModel {
    /// Readiness-driven reactor: one poll thread multiplexes every
    /// connection and feeds decoded requests into the admission queue,
    /// where scoring replicas drain them as cross-connection batches.
    /// The default, and what every production inference server does.
    #[default]
    Reactor,
    /// One blocking thread per connection, scoring requests one at a time
    /// against the shared model pool. The paper's original serving-tier
    /// shape, kept as the saturation bench's baseline rung.
    ThreadPerConnection,
}

/// Configuration of an external serving deployment.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Scoring replica count: how many model instances score concurrently.
    /// Under [`IoModel::Reactor`] these are the admission dispatcher's
    /// scoring workers; under [`IoModel::ThreadPerConnection`] they bound
    /// the shared model pool. One knob, one meaning, for every engine
    /// personality — concurrent processing threads (TF-Serving), worker
    /// processes (TorchServe), or replicas (Ray Serve). The paper's `mp`
    /// knob for external servers.
    pub replicas: usize,
    /// Inference device for every replica.
    pub device: Device,
    /// Calibrated overhead model (Python handlers, actor dispatch, …).
    pub overheads: OverheadModel,
    /// Observability recorder the server's worker pools report into
    /// (server-side `inference` spans, queue-depth and in-flight gauges,
    /// admission metrics). Disabled by default.
    pub obs: crayfish_obs::ObsHandle,
    /// Connection I/O model.
    pub io: IoModel,
    /// Continuous-batching and backpressure knobs, used by the
    /// [`IoModel::Reactor`] path.
    pub admission: AdmissionConfig,
}

impl Default for ServingConfig {
    fn default() -> Self {
        ServingConfig {
            replicas: 1,
            device: Device::Cpu,
            overheads: OverheadModel::calibrated(),
            obs: crayfish_obs::ObsHandle::disabled(),
            io: IoModel::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// A running server. Dropping the handle (or calling
/// [`shutdown`](ServerHandle::shutdown)) stops the listener, joins the
/// accept loop, severs every live connection with `Shutdown::Both` — so
/// clients blocked mid-read observe EOF promptly instead of hanging — and
/// then runs any registered teardown hooks (reactor join, admission
/// dispatcher drain).
pub struct ServerHandle {
    name: &'static str,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
    /// Run once, in order, at the end of `stop` — after the accept loop
    /// has joined and connections are severed.
    teardown: Vec<Box<dyn FnOnce() + Send>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("name", &self.name)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl ServerHandle {
    /// The bound address (always a localhost ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server kind name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stop accepting connections and join the accept loop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// The shutdown flag, observed by auxiliary server threads (e.g. the
    /// Ray Serve proxy and replicas) so they exit when the handle drops.
    pub(crate) fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Number of live connections currently tracked.
    pub fn connection_count(&self) -> usize {
        self.connections.lock().len()
    }

    /// Register a hook to run at the end of `stop`, after the accept loop
    /// joins and connections are severed. The reactor path uses this to
    /// join the poll thread and drain the admission dispatcher.
    pub(crate) fn add_teardown(&mut self, hook: impl FnOnce() + Send + 'static) {
        self.teardown.push(Box::new(hook));
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // Tear down live connections so handler threads exit and clients
        // blocked on reads get EOF.
        for (_, conn) in self.connections.lock().drain() {
            let _ = conn.shutdown(Shutdown::Both);
        }
        for hook in self.teardown.drain(..) {
            hook();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A pool of per-worker model instances. Taking an instance when all are in
/// use blocks — this is what bounds server concurrency to `workers`, the
/// mechanism behind every server's `mp` knob.
#[derive(Clone)]
pub(crate) struct ModelPool {
    tx: Sender<Box<dyn LoadedModel>>,
    rx: Receiver<Box<dyn LoadedModel>>,
    obs: crayfish_obs::ObsHandle,
    /// Requests blocked waiting for a free instance.
    queue_depth: crayfish_obs::Gauge,
    /// Requests currently executing on an instance.
    in_flight: crayfish_obs::Gauge,
}

impl ModelPool {
    /// Load `workers` independent instances of `graph` via `load`,
    /// reporting pool pressure and per-request execution spans into `obs`.
    pub fn new(
        workers: usize,
        obs: &crayfish_obs::ObsHandle,
        mut load: impl FnMut() -> crayfish_runtime::Result<Box<dyn LoadedModel>>,
    ) -> Result<ModelPool> {
        let workers = workers.max(1);
        let (tx, rx) = bounded(workers);
        for _ in 0..workers {
            tx.send(load()?).map_err(|_| ServingError::Closed)?;
        }
        Ok(ModelPool {
            tx,
            rx,
            obs: obs.clone(),
            queue_depth: obs.gauge("serving_queue_depth"),
            in_flight: obs.gauge("serving_in_flight"),
        })
    }

    /// Borrow an instance (blocking) and run `f` with it. The wait for a
    /// free instance counts into the queue-depth gauge; the execution
    /// itself is an `inference` span (server-side model time, as opposed to
    /// the client-observed `serving_rpc` stage). Errors with
    /// [`ServingError::Closed`] if the pool's channel was torn down — a
    /// handler thread outliving its server must surface that as a serving
    /// failure, not a panic.
    pub fn with_model<T>(&self, f: impl FnOnce(&mut dyn LoadedModel) -> T) -> Result<T> {
        self.queue_depth.inc();
        let model = self.rx.recv();
        self.queue_depth.dec();
        let mut model = model.map_err(|_| ServingError::Closed)?;
        self.in_flight.inc();
        let span = self.obs.timer(crayfish_obs::Stage::Inference);
        let out = f(model.as_mut());
        span.stop();
        self.in_flight.dec();
        self.tx.send(model).map_err(|_| ServingError::Closed)?;
        Ok(out)
    }
}

/// Spawn a localhost TCP server on an ephemeral port. `on_connection` is
/// invoked on a fresh thread per accepted connection. Only tests need the
/// ephemeral-port variant; production servers restart on a fixed address.
#[cfg(test)]
pub(crate) fn spawn_listener(
    name: &'static str,
    on_connection: impl Fn(TcpStream) + Send + Sync + 'static,
) -> Result<ServerHandle> {
    spawn_listener_on(name, SocketAddr::from(([127, 0, 0, 1], 0)), on_connection)
}

/// Spawn a TCP server bound to a specific address — used to restart a
/// crashed server on the endpoint its clients already hold (see
/// `crate::restart`).
pub(crate) fn spawn_listener_on(
    name: &'static str,
    addr: SocketAddr,
    on_connection: impl Fn(TcpStream) + Send + Sync + 'static,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let connections: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
    let flag = shutdown.clone();
    let conns = connections.clone();
    let handler = Arc::new(on_connection);
    let accept_thread = std::thread::Builder::new()
        .name(format!("{name}-accept"))
        .spawn(move || {
            let mut next_conn_id = 0u64;
            for stream in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                stream.set_nodelay(true).ok();
                let id = next_conn_id;
                next_conn_id += 1;
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().insert(id, clone);
                }
                let h = handler.clone();
                let registry = conns.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("{name}-conn"))
                    .spawn(move || {
                        h(stream);
                        // Drop the registry entry once the handler is done
                        // so a long-lived server does not accumulate dead
                        // sockets.
                        registry.lock().remove(&id);
                    });
                if spawned.is_err() {
                    // Out of threads: drop this connection (the client sees
                    // EOF and retries) instead of killing the accept loop.
                    if let Some(conn) = conns.lock().remove(&id) {
                        let _ = conn.shutdown(Shutdown::Both);
                    }
                }
            }
        })?;
    Ok(ServerHandle {
        name,
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        connections,
        teardown: Vec::new(),
    })
}

/// Assemble a handle from parts — used by the reactor, whose accept loop
/// injects connections into the poll thread instead of spawning handler
/// threads.
pub(crate) fn assemble_handle(
    name: &'static str,
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
    connections: Arc<Mutex<HashMap<u64, TcpStream>>>,
) -> ServerHandle {
    ServerHandle {
        name,
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
        connections,
        teardown: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;
    use crayfish_runtime::{EmbeddedRuntime, OnnxRuntime};
    use std::io::{Read, Write};

    #[test]
    fn pool_bounds_concurrency() {
        let g = tiny::tiny_mlp(1);
        let pool = ModelPool::new(2, &crayfish_obs::ObsHandle::disabled(), || {
            OnnxRuntime::new().load_graph(&g, Device::Cpu)
        })
        .unwrap();
        let active = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let peak = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            let active = active.clone();
            let peak = peak.clone();
            handles.push(std::thread::spawn(move || {
                pool.with_model(|_m| {
                    let now = active.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    active.fetch_sub(1, Ordering::SeqCst);
                })
                .unwrap();
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "pool leaked concurrency");
    }

    #[test]
    fn shutdown_unblocks_blocked_clients() {
        // The server never writes: a client blocked on a read must see EOF
        // when the handle shuts down, not hang.
        let handle = spawn_listener("mute", |mut stream| {
            let mut buf = [0u8; 1];
            while let Ok(n) = stream.read(&mut buf) {
                if n == 0 {
                    break;
                }
            }
        })
        .unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 1];
            let _ = c.read(&mut buf);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        handle.shutdown();
        let start = std::time::Instant::now();
        t.join().unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "client stayed blocked after shutdown"
        );
    }

    #[test]
    fn finished_connections_are_pruned() {
        let handle = spawn_listener("hello", |mut stream| {
            let _ = stream.write_all(b"hi");
        })
        .unwrap();
        for _ in 0..5 {
            let mut c = TcpStream::connect(handle.addr()).unwrap();
            let mut buf = [0u8; 2];
            c.read_exact(&mut buf).unwrap();
        }
        // Entries drain as handlers finish.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while handle.connection_count() > 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "dead connections never pruned ({} left)",
                handle.connection_count()
            );
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.shutdown();
    }

    #[test]
    fn listener_rebinds_a_fixed_addr_after_shutdown() {
        let first = spawn_listener("fixed", |_s| {}).unwrap();
        let addr = first.addr();
        first.shutdown();
        let second = spawn_listener_on("fixed", addr, |_s| {}).unwrap();
        assert_eq!(second.addr(), addr);
        assert!(TcpStream::connect(addr).is_ok());
        second.shutdown();
    }

    #[test]
    fn listener_echo_and_shutdown() {
        let handle = spawn_listener("echo", |mut stream| {
            let mut buf = [0u8; 4];
            if stream.read_exact(&mut buf).is_ok() {
                stream.write_all(&buf).ok();
            }
        })
        .unwrap();
        let mut c = TcpStream::connect(handle.addr()).unwrap();
        c.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        c.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        handle.shutdown();
    }
}
