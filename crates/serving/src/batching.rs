//! Cross-request tensor batching for the scoring workers.
//!
//! The whole point of continuous batching: requests that arrived on
//! different connections but target the same model with the same
//! per-record shape are stacked along dim 0 into one tensor, scored with a
//! *single* model invocation (amortising per-call plan overhead and weight
//! traffic across the batch), and the output rows are split back per
//! request. Requests that cannot stack — different models, mismatched
//! feature shapes, scalar inputs — fall back to individual scoring, so
//! batching is purely an optimisation, never a semantics change.

use crayfish_tensor::Tensor;

use crate::{Result, ServingError};

/// One decoded request ready for scoring: the target model (multi-model
/// servers) and the input tensor. `R` is the transport's completion token.
pub(crate) struct ScoreJob<R> {
    pub model: Option<String>,
    pub input: Tensor,
    pub responder: R,
}

/// Score a batch with cross-request stacking. Consecutive jobs that agree
/// on (model, per-record dims) are stacked and scored in one `apply`
/// call; every job's responder receives exactly one encoded reply via
/// `respond`.
///
/// `apply(model, input)` must return a tensor whose dim 0 matches the
/// input's (the row-batched contract every model in this repo satisfies);
/// if a stacked apply fails or violates that, the group falls back to
/// per-request scoring so a shape-sensitive model still serves correctly.
pub(crate) fn score_stacked<R>(
    jobs: Vec<ScoreJob<R>>,
    mut apply: impl FnMut(Option<&str>, &Tensor) -> Result<Tensor>,
    mut respond: impl FnMut(R, Result<Tensor>),
) {
    let mut jobs = jobs.into_iter().peekable();
    let mut group: Vec<ScoreJob<R>> = Vec::new();
    while let Some(first) = jobs.next() {
        group.push(first);
        while let Some(next) = jobs.next_if(|next| stackable(&group[0], next)) {
            group.push(next);
        }
        score_group(&mut group, &mut apply, &mut respond);
    }
}

/// Whether `b` can join a group keyed by `a`: same target model, same
/// per-record dims, and a real (non-scalar) leading batch dim.
fn stackable<R>(a: &ScoreJob<R>, b: &ScoreJob<R>) -> bool {
    let (da, db) = (a.input.shape().dims(), b.input.shape().dims());
    a.model == b.model && !da.is_empty() && !db.is_empty() && da[1..] == db[1..]
}

fn score_group<R>(
    group: &mut Vec<ScoreJob<R>>,
    apply: &mut impl FnMut(Option<&str>, &Tensor) -> Result<Tensor>,
    respond: &mut impl FnMut(R, Result<Tensor>),
) {
    if group.len() == 1 {
        if let Some(job) = group.pop() {
            let out = apply(job.model.as_deref(), &job.input);
            respond(job.responder, out);
        }
        return;
    }
    let rows: Vec<usize> = group.iter().map(|j| j.input.shape().dims()[0]).collect();
    let stacked = stack_rows(group.iter().map(|j| &j.input));
    let split = stacked.and_then(|input| {
        let out = apply(group[0].model.as_deref(), &input)?;
        split_rows(&out, &rows).ok_or_else(|| {
            ServingError::Protocol("model output rows do not match batched input".into())
        })
    });
    match split {
        Ok(outputs) => {
            for (job, out) in group.drain(..).zip(outputs) {
                respond(job.responder, Ok(out));
            }
        }
        // The stacked attempt failed (model rejected the batched shape, or
        // broke the row contract): score each request alone so one odd
        // model never takes down its whole batch.
        Err(_) => {
            for job in group.drain(..) {
                let out = apply(job.model.as_deref(), &job.input);
                respond(job.responder, out);
            }
        }
    }
}

/// Concatenate tensors along dim 0. Callers guarantee matching per-record
/// dims (see [`stackable`]).
fn stack_rows<'a>(inputs: impl Iterator<Item = &'a Tensor> + Clone) -> Result<Tensor> {
    let mut dims: Vec<usize> = Vec::new();
    let mut total = 0usize;
    let mut len = 0usize;
    for t in inputs.clone() {
        let d = t.shape().dims();
        if dims.is_empty() {
            dims = d.to_vec();
        }
        total += d[0];
        len += t.numel();
    }
    dims[0] = total;
    let mut data = Vec::with_capacity(len);
    for t in inputs {
        data.extend_from_slice(t.data());
    }
    Tensor::from_vec(dims, data).map_err(|e| ServingError::Protocol(format!("bad stack: {e}")))
}

/// Split `out` back into row groups of `rows[i]` leading rows each.
/// Returns `None` if the output's dim 0 does not equal the row total.
fn split_rows(out: &Tensor, rows: &[usize]) -> Option<Vec<Tensor>> {
    let dims = out.shape().dims();
    let total: usize = rows.iter().sum();
    if dims.is_empty() || dims[0] != total {
        return None;
    }
    let per_row: usize = dims[1..].iter().product();
    let mut outputs = Vec::with_capacity(rows.len());
    let mut offset = 0usize;
    for &r in rows {
        let mut d = dims.to_vec();
        d[0] = r;
        let chunk = out.data()[offset..offset + r * per_row].to_vec();
        outputs.push(Tensor::from_vec(d, chunk).ok()?);
        offset += r * per_row;
    }
    Some(outputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, model: Option<&str>, dims: &[usize]) -> ScoreJob<u32> {
        ScoreJob {
            model: model.map(str::to_string),
            input: Tensor::seeded_uniform(dims.to_vec(), u64::from(id), 0.0, 1.0),
            responder: id,
        }
    }

    /// Identity "model": output = input, rows preserved.
    fn identity(_m: Option<&str>, t: &Tensor) -> Result<Tensor> {
        Ok(t.clone())
    }

    #[test]
    fn compatible_jobs_stack_into_one_apply() {
        let jobs = vec![
            job(0, None, &[1, 4]),
            job(1, None, &[2, 4]),
            job(2, None, &[1, 4]),
        ];
        let expected: Vec<Tensor> = jobs.iter().map(|j| j.input.clone()).collect();
        let mut applies = 0usize;
        let mut replies: Vec<(u32, Tensor)> = Vec::new();
        score_stacked(
            jobs,
            |m, t| {
                applies += 1;
                identity(m, t)
            },
            |id, out| replies.push((id, out.unwrap())),
        );
        assert_eq!(applies, 1, "three compatible jobs should score once");
        assert_eq!(replies.len(), 3);
        for (i, (id, out)) in replies.iter().enumerate() {
            assert_eq!(*id as usize, i, "reply order broken");
            assert_eq!(out, &expected[i], "rows not split back per request");
        }
    }

    #[test]
    fn incompatible_jobs_split_groups() {
        let jobs = vec![
            job(0, Some("a"), &[1, 4]),
            job(1, Some("b"), &[1, 4]), // different model
            job(2, Some("b"), &[1, 8]), // different feature dims
        ];
        let mut applies = 0usize;
        let mut replies = 0usize;
        score_stacked(
            jobs,
            |m, t| {
                applies += 1;
                identity(m, t)
            },
            |_, out| {
                out.unwrap();
                replies += 1;
            },
        );
        assert_eq!(applies, 3);
        assert_eq!(replies, 3);
    }

    #[test]
    fn stacked_failure_falls_back_to_individual_scoring() {
        let jobs = vec![job(0, None, &[1, 4]), job(1, None, &[1, 4])];
        let mut replies: Vec<Result<Tensor>> = Vec::new();
        score_stacked(
            jobs,
            |_, t| {
                // Reject the stacked shape, accept singles.
                if t.shape().dims()[0] > 1 {
                    Err(ServingError::Remote("batch unsupported".into()))
                } else {
                    Ok(t.clone())
                }
            },
            |_, out| replies.push(out),
        );
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| r.is_ok()), "fallback did not rescue");
    }

    #[test]
    fn scalar_inputs_never_stack() {
        let jobs = vec![job(0, None, &[]), job(1, None, &[])];
        let mut applies = 0usize;
        score_stacked(
            jobs,
            |m, t| {
                applies += 1;
                identity(m, t)
            },
            |_, out| {
                out.unwrap();
            },
        );
        assert_eq!(applies, 2);
    }
}
