//! **Figure 9** — GPU acceleration: ResNet50 latency per batch for ONNX
//! and TF-Serving, CPU vs (simulated) GPU, on the Flink-style engine
//! (closed loop, ir = 0.2 events/s, `bsz = 8`, `mp = 1`).

use crayfish::prelude::*;
use crayfish_bench::*;

fn paper_ms(config: &str) -> f64 {
    match config {
        "onnx-cpu" => 3_698.0,
        "onnx-gpu" => 3_089.0,
        "tf-serving-cpu" => 3_974.0,
        "tf-serving-gpu" => 3_016.0,
        _ => 0.0,
    }
}

fn main() {
    let flink = FlinkProcessor::new();
    let configs: Vec<(&str, ServingChoice)> = vec![
        (
            "onnx-cpu",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "onnx-gpu",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::gpu(),
            },
        ),
        (
            "tf-serving-cpu",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving-gpu",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::gpu(),
            },
        ),
    ];
    // The paper emits one 8-image batch every 5 s (ir = 0.2) against a
    // ~3.5 s inference; this host's single-core inference of the same batch
    // takes ~5-8 s, so the quick profile paces at one batch every 12 s to
    // keep the closed loop stable (latency dominated by inference, §4.1).
    let rate = match profile() {
        Profile::Quick => 1.0 / 12.0,
        Profile::Paper => 0.1,
    };
    let mut table = Table::new(
        "Figure 9: ResNet50 latency per batch on Flink (ms, closed loop, bsz=8, mp=1)",
        &["config", "measured (mean ± std)", "paper", "vs cpu"],
    );
    let mut dump = Vec::new();
    let mut cpu_means = std::collections::HashMap::new();
    for (config, serving) in configs {
        let mut spec = base_spec(ModelSpec::Resnet50, serving);
        spec.bsz = 8;
        spec.workload = Workload::Constant { rate };
        // CPU inference of an 8-image ResNet batch takes several seconds on
        // the evaluation host; stretch the window so enough batches finish.
        spec.duration = resnet_window_at_least(if config.ends_with("cpu") { 75 } else { 35 });
        let result = run(&format!("fig9/{config}"), &flink, &spec);
        let mean = result.latency.mean;
        let family = config
            .rsplit_once('-')
            .map(|(f, _)| f.to_string())
            .unwrap_or_default();
        let improvement = if config.ends_with("gpu") {
            cpu_means
                .get(&family)
                .map(|cpu: &f64| format!("-{:.1}%", 100.0 * (1.0 - mean / cpu)))
                .unwrap_or_else(|| "-".into())
        } else {
            cpu_means.insert(family, mean);
            "baseline".into()
        };
        table.row(vec![
            config.into(),
            ms_pm(&result.latency),
            format!("{:.0}", paper_ms(config)),
            improvement,
        ]);
        dump.push(Measurement::of(config, &result));
    }
    table.print();
    println!("\nPaper shape: GPU helps both (onnx -16.4%, tf-serving -24.1%); the");
    println!("specialised external server benefits more, and tf-serving-gpu edges out");
    println!("onnx-gpu while also beating onnx-cpu despite the network hops.");
    println!("NOTE: the magnitude differs here by construction — this host's CPU");
    println!("inference is ~8x the paper's while the simulated T4 is calibrated to");
    println!("the real card, so the CPU->GPU gap is far larger than the paper's");
    println!("16-24%. The orderings (both gpu < both cpu; gpu amortises the external");
    println!("network hops) are the reproducible claims. See EXPERIMENTS.md.");
    save_json("fig9", &dump);
}
