//! The serving-tool abstraction used by every engine's scoring operator.
//!
//! A [`ScorerSpec`] describes *which* serving alternative an experiment
//! uses; each parallel scoring task calls [`ScorerSpec::build`] to obtain
//! its own [`Scorer`] — an embedded model instance loaded into the
//! operator, or a dedicated blocking connection to an external server —
//! matching the paper's deployment (every task loads the model / owns a
//! connection).

use std::net::SocketAddr;
use std::sync::Arc;

use crayfish_runtime::{Device, EmbeddedLib, LoadedModel};
use crayfish_serving::{ExternalKind, ScoringClient};
use crayfish_sim::NetworkModel;
use crayfish_tensor::{NnGraph, Tensor};

use crate::Result;

/// Something that can score a batched tensor.
pub trait Scorer: Send {
    /// Serving tool name (for diagnostics).
    fn name(&self) -> String;
    /// Score `[batch, ..input]` → `[batch, classes]`.
    fn score(&mut self, input: &Tensor) -> Result<Tensor>;
    /// Which observability stage the time spent in [`Scorer::score`]
    /// belongs to: in-operator model execution for embedded serving, a
    /// blocking RPC for external serving.
    fn obs_stage(&self) -> crate::obs::Stage {
        crate::obs::Stage::Inference
    }
}

/// Description of the serving alternative; cheap to clone across workers.
#[derive(Clone)]
pub enum ScorerSpec {
    /// Embedded serving: the operator loads the model via an
    /// interoperability library (§2.1).
    Embedded {
        /// Which library.
        lib: EmbeddedLib,
        /// The model graph (weights shared via `Arc` until load).
        graph: Arc<NnGraph>,
        /// CPU or simulated GPU.
        device: Device,
    },
    /// External serving: the operator sends blocking requests to a
    /// dedicated inference service (§2.1).
    External {
        /// Which framework (decides the protocol).
        kind: ExternalKind,
        /// Server address.
        addr: SocketAddr,
        /// The modelled LAN between the engine and the server.
        network: NetworkModel,
    },
    /// External serving wrapped in the resilience layer: per-call
    /// deadlines, bounded retries with backoff, reconnect after resets or
    /// server crashes, and a circuit breaker. Used by chaos experiments;
    /// with a disabled chaos handle in `config` the wrapper costs one
    /// branch per call.
    ResilientExternal {
        /// Which framework (decides the protocol).
        kind: ExternalKind,
        /// Server address (stable across crash/restore).
        addr: SocketAddr,
        /// The modelled LAN between the engine and the server.
        network: NetworkModel,
        /// Retry/breaker/deadline tuning plus chaos and obs handles.
        config: crayfish_serving::ResilienceConfig,
    },
}

impl std::fmt::Debug for ScorerSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScorerSpec::Embedded { lib, device, .. } => {
                write!(f, "Embedded({}, {})", lib.name(), device.name())
            }
            ScorerSpec::External { kind, addr, .. } => {
                write!(f, "External({}, {addr})", kind.name())
            }
            ScorerSpec::ResilientExternal { kind, addr, .. } => {
                write!(f, "ResilientExternal({}, {addr})", kind.name())
            }
        }
    }
}

impl ScorerSpec {
    /// Human-readable serving-tool name ("onnx (e)", "tf_serving (x)").
    pub fn tool_name(&self) -> String {
        match self {
            ScorerSpec::Embedded { lib, .. } => format!("{} (e)", lib.name()),
            ScorerSpec::External { kind, .. } | ScorerSpec::ResilientExternal { kind, .. } => {
                format!("{} (x)", kind.name())
            }
        }
    }

    /// Build a per-worker scorer (loads the model or opens a connection).
    pub fn build(&self) -> Result<Box<dyn Scorer>> {
        match self {
            ScorerSpec::Embedded { lib, graph, device } => {
                let model = lib.runtime().load_graph(graph, *device)?;
                Ok(Box::new(EmbeddedScorer { model }))
            }
            ScorerSpec::External {
                kind,
                addr,
                network,
            } => {
                let client = kind.connect(*addr, *network)?;
                Ok(Box::new(ExternalScorer { client }))
            }
            ScorerSpec::ResilientExternal {
                kind,
                addr,
                network,
                config,
            } => {
                let client = crayfish_serving::ResilientClient::connect(
                    *kind,
                    *addr,
                    *network,
                    config.clone(),
                )?;
                Ok(Box::new(ExternalScorer {
                    client: Box::new(client),
                }))
            }
        }
    }
}

struct EmbeddedScorer {
    model: Box<dyn LoadedModel>,
}

impl Scorer for EmbeddedScorer {
    fn name(&self) -> String {
        format!("{} (e)", self.model.runtime_name())
    }
    fn score(&mut self, input: &Tensor) -> Result<Tensor> {
        Ok(self.model.apply(input)?)
    }
}

struct ExternalScorer {
    client: Box<dyn ScoringClient>,
}

impl Scorer for ExternalScorer {
    fn name(&self) -> String {
        format!("external/{}", self.client.protocol())
    }
    fn score(&mut self, input: &Tensor) -> Result<Tensor> {
        Ok(self.client.infer(input)?)
    }
    fn obs_stage(&self) -> crate::obs::Stage {
        crate::obs::Stage::ServingRpc
    }
}

/// The shared scoring-operator body: decode a `CrayfishDataBatch` payload,
/// score it, and encode the `ScoredBatch` payload. Every engine's scoring
/// operator funnels through this (the paper's flatmap-like `scoringOp`).
pub fn score_payload(scorer: &mut dyn Scorer, payload: &[u8]) -> Result<bytes::Bytes> {
    score_payload_obs(scorer, payload, &crate::obs::ObsHandle::disabled())
}

/// [`score_payload`] with per-stage spans: `decode` around the wire-format
/// parse + tensor rebuild, `inference`/`serving_rpc` (per
/// [`Scorer::obs_stage`]) around the score call, and `encode` around the
/// result serialisation. With a disabled handle this compiles down to the
/// plain path — timers never read the clock.
pub fn score_payload_obs(
    scorer: &mut dyn Scorer,
    payload: &[u8],
    obs: &crate::obs::ObsHandle,
) -> Result<bytes::Bytes> {
    let (batch, input) = crate::batch::decode_input_obs(payload, obs)?;

    let span = obs.timer(scorer.obs_stage());
    let output = scorer.score(&input)?;
    span.stop();

    crate::batch::encode_output_obs(&batch, &output, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{CrayfishDataBatch, ScoredBatch};
    use crayfish_models::tiny;
    use crayfish_sim::now_millis_f64;

    fn spec_embedded() -> ScorerSpec {
        ScorerSpec::Embedded {
            lib: EmbeddedLib::Onnx,
            graph: Arc::new(tiny::tiny_mlp(1)),
            device: Device::Cpu,
        }
    }

    #[test]
    fn embedded_scorer_scores() {
        let mut s = spec_embedded().build().unwrap();
        let out = s
            .score(&Tensor::seeded_uniform([2, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
        assert!(s.name().contains("(e)"));
    }

    #[test]
    fn external_scorer_roundtrips() {
        let server = crayfish_serving::tf_serving::start(
            &tiny::tiny_mlp(1),
            crayfish_serving::ServingConfig::default(),
        )
        .unwrap();
        let spec = ScorerSpec::External {
            kind: ExternalKind::TfServing,
            addr: server.addr(),
            network: NetworkModel::zero(),
        };
        let mut s = spec.build().unwrap();
        let out = s
            .score(&Tensor::seeded_uniform([3, 8, 8], 1, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
        server.shutdown();
    }

    #[test]
    fn score_payload_end_to_end() {
        let t = Tensor::seeded_uniform([2, 8, 8], 5, 0.0, 1.0);
        let payload = CrayfishDataBatch::from_tensor(9, now_millis_f64(), &t)
            .encode()
            .unwrap();
        let mut s = spec_embedded().build().unwrap();
        let out_bytes = score_payload(s.as_mut(), &payload).unwrap();
        let scored = ScoredBatch::decode(&out_bytes).unwrap();
        assert_eq!(scored.id, 9);
        assert_eq!(scored.bsz, 2);
        assert_eq!(scored.classes, 4);
    }

    #[test]
    fn score_payload_propagates_codec_errors() {
        let mut s = spec_embedded().build().unwrap();
        assert!(score_payload(s.as_mut(), b"garbage").is_err());
    }

    #[test]
    fn tool_names_match_paper_notation() {
        assert_eq!(spec_embedded().tool_name(), "onnx (e)");
    }
}
