//! Fault plans: seeded, deterministic schedules of fault windows.
//!
//! A [`FaultPlan`] is pure data — a list of `(kind, start, duration)`
//! windows relative to the start of a run. The same seed always generates
//! the same schedule, so a chaos run that found a bug can be replayed
//! bit-for-bit. Plans serialize to JSON for config files and CI matrices.

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;

/// The kinds of fault the injector knows how to create.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// A broker topic's partitions refuse appends and fetches
    /// (`BrokerError::Unavailable`) for the window.
    PartitionOutage,
    /// An external serving server is crashed at window start and restarted
    /// at window end (requires actions wired into the injector).
    ServingCrash,
    /// Network degradation: extra latency on serving calls, periodic
    /// connection resets, and periodic lost append acks.
    NetworkDegrade,
    /// Consumers stall: `PartitionConsumer::poll` returns no data for the
    /// window even though the log has records.
    ConsumerStall,
    /// An engine worker thread is crashed once at window start; the
    /// supervisor must restart it.
    WorkerCrash,
    /// A broker node is killed for the window: partitions it led elect a
    /// new leader from the ISR (replication factor permitting); on a
    /// single-node cluster this is a total outage until the node returns.
    LeaderKill,
    /// A broker node is network-partitioned from the rest of the cluster
    /// for the window: it drops out of every ISR and cannot be elected;
    /// on heal it catches up and rejoins.
    PartitionIsolate,
}

impl FaultKind {
    /// Every fault kind, in a fixed order.
    pub const ALL: [FaultKind; 7] = [
        FaultKind::PartitionOutage,
        FaultKind::ServingCrash,
        FaultKind::NetworkDegrade,
        FaultKind::ConsumerStall,
        FaultKind::WorkerCrash,
        FaultKind::LeaderKill,
        FaultKind::PartitionIsolate,
    ];

    /// Stable lowercase name (used in reports and metric labels).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::PartitionOutage => "partition_outage",
            FaultKind::ServingCrash => "serving_crash",
            FaultKind::NetworkDegrade => "network_degrade",
            FaultKind::ConsumerStall => "consumer_stall",
            FaultKind::WorkerCrash => "worker_crash",
            FaultKind::LeaderKill => "leader_kill",
            FaultKind::PartitionIsolate => "partition_isolate",
        }
    }

    /// Which recovery domain closes an incident of this kind: the first
    /// successful operation in the domain *after the window ends* marks
    /// the fault recovered.
    pub fn domain(&self) -> crate::handle::Domain {
        match self {
            FaultKind::PartitionOutage
            | FaultKind::ConsumerStall
            | FaultKind::LeaderKill
            | FaultKind::PartitionIsolate => crate::handle::Domain::Broker,
            FaultKind::ServingCrash | FaultKind::NetworkDegrade => crate::handle::Domain::Serving,
            FaultKind::WorkerCrash => crate::handle::Domain::Engine,
        }
    }
}

/// One fault window: a kind active over `[start, start + duration)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Offset from run start at which the fault begins.
    pub start: Duration,
    /// How long the fault lasts. `WorkerCrash` is a point event: the crash
    /// fires at `start` and the duration is ignored.
    pub duration: Duration,
}

impl FaultWindow {
    /// Offset from run start at which the fault clears.
    pub fn end(&self) -> Duration {
        self.start + self.duration
    }
}

/// A deterministic schedule of fault windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// The windows, sorted by start time.
    pub windows: Vec<FaultWindow>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::empty()
    }
}

impl FaultPlan {
    /// A plan with no faults. With an empty plan the whole chaos layer is
    /// idle and costs nothing on hot paths.
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            windows: Vec::new(),
        }
    }

    /// True when the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// A single hand-placed window.
    pub fn single(kind: FaultKind, start: Duration, duration: Duration) -> Self {
        FaultPlan::empty().with_window(kind, start, duration)
    }

    /// Append a hand-placed window (builder style).
    pub fn with_window(mut self, kind: FaultKind, start: Duration, duration: Duration) -> Self {
        self.windows.push(FaultWindow {
            kind,
            start,
            duration,
        });
        self.windows.sort_by_key(|w| w.start);
        self
    }

    /// Generate a schedule from a seed: one window per requested kind,
    /// starting somewhere in the first half of `horizon` and lasting
    /// 10–25% of it. The same `(seed, horizon, kinds)` triple always
    /// produces the identical schedule.
    pub fn generate(seed: u64, horizon: Duration, kinds: &[FaultKind]) -> Self {
        let mut rng = DetRng::new(seed);
        let mut windows = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let start = rng.range_duration(
                horizon.mul_f64(0.10),
                horizon
                    .mul_f64(0.50)
                    .max(horizon.mul_f64(0.10) + Duration::from_millis(1)),
            );
            let duration = rng.range_duration(
                horizon.mul_f64(0.10).max(Duration::from_millis(1)),
                horizon.mul_f64(0.25).max(Duration::from_millis(2)),
            );
            windows.push(FaultWindow {
                kind,
                start,
                duration,
            });
        }
        windows.sort_by_key(|w| w.start);
        FaultPlan { seed, windows }
    }

    /// Total scheduled fault time (sum of window durations).
    pub fn total_fault_time(&self) -> Duration {
        self.windows.iter().map(|w| w.duration).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let horizon = Duration::from_secs(2);
        let a = FaultPlan::generate(1337, horizon, &FaultKind::ALL);
        let b = FaultPlan::generate(1337, horizon, &FaultKind::ALL);
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), FaultKind::ALL.len());
    }

    #[test]
    fn different_seeds_differ() {
        let horizon = Duration::from_secs(2);
        let a = FaultPlan::generate(1, horizon, &FaultKind::ALL);
        let b = FaultPlan::generate(2, horizon, &FaultKind::ALL);
        assert_ne!(a.windows, b.windows);
    }

    #[test]
    fn windows_fit_horizon_and_are_sorted() {
        let horizon = Duration::from_secs(4);
        let plan = FaultPlan::generate(99, horizon, &FaultKind::ALL);
        for w in &plan.windows {
            assert!(w.start >= horizon.mul_f64(0.10));
            assert!(w.end() <= horizon.mul_f64(0.75));
        }
        for pair in plan.windows.windows(2) {
            assert!(pair[0].start <= pair[1].start);
        }
    }

    #[test]
    fn round_trips_through_json() {
        let plan = FaultPlan::generate(7, Duration::from_secs(1), &FaultKind::ALL);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn builder_sorts_windows() {
        let plan = FaultPlan::empty()
            .with_window(
                FaultKind::ConsumerStall,
                Duration::from_millis(500),
                Duration::from_millis(100),
            )
            .with_window(
                FaultKind::PartitionOutage,
                Duration::from_millis(100),
                Duration::from_millis(100),
            );
        assert_eq!(plan.windows[0].kind, FaultKind::PartitionOutage);
        assert!(!plan.is_empty());
        assert_eq!(plan.total_fault_time(), Duration::from_millis(200));
    }
}
