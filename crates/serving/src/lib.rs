//! # crayfish-serving
//!
//! The *external serving* layer of the Crayfish reproduction (§3.4.3 /
//! §3.4.4 of the paper): standalone inference services a stream processor
//! talks to over the network, each an analog of one of the paper's three
//! frameworks. All three run as real TCP servers on localhost, with the
//! paper's 1 Gbps LAN added by the calibrated network model on the client
//! side.
//!
//! | Server | Analog of | Protocol | Mechanisms |
//! |---|---|---|---|
//! | [`tf_serving`] | TensorFlow Serving | gRPC-like binary | fused kernels, worker thread pool |
//! | [`torch_serve`] | TorchServe | gRPC-like binary | unfused kernels, per-request Python handler (real JSON re-encode + calibrated interpreter cost) |
//! | [`ray_serve`] | Ray Serve | HTTP/1.1 + JSON | single proxy task per node in both directions, replica pool, per-call actor dispatch cost |
//!
//! Scaling knob per server matches the paper's §3.4.3: TF-Serving caps
//! concurrent processing threads, TorchServe sets worker processes, and
//! Ray Serve sets replica counts — all expressed as `replicas` in
//! [`ServingConfig`].
//!
//! By default every server runs a readiness-driven **reactor**
//! ([`server::IoModel::Reactor`]): one poll thread multiplexes all
//! connections and feeds decoded requests into a `crayfish-admission`
//! continuous-batching queue, where `replicas` scoring workers drain them
//! as cross-connection batches. A full queue sheds new work with a typed
//! `Overloaded { retry_after }` response instead of queueing unboundedly.
//! The paper-original blocking thread-per-connection shape remains
//! available as [`server::IoModel::ThreadPerConnection`].

#![forbid(unsafe_code)]

mod batching;
pub mod client;
pub mod error;
pub mod protocol;
pub mod ray_serve;
pub mod registry;
pub mod resilient;
pub mod restart;
pub mod server;
pub mod tf_serving;
pub mod torch_serve;

pub use client::{GrpcClient, HttpClient, ScoringClient};
pub use crayfish_admission::AdmissionConfig;
pub use error::ServingError;
pub use registry::ModelRegistry;
pub use resilient::{ResilienceConfig, ResilientClient};
pub use restart::RestartableServer;
pub use server::{IoModel, ServerHandle, ServingConfig};

use serde::{Deserialize, Serialize};

use crayfish_tensor::NnGraph;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServingError>;

/// Enumeration of the shipped external serving frameworks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ExternalKind {
    /// TensorFlow Serving analog.
    TfServing,
    /// TorchServe analog.
    TorchServe,
    /// Ray Serve analog.
    RayServe,
}

impl ExternalKind {
    /// All external frameworks, in the paper's order.
    pub const ALL: [ExternalKind; 3] = [
        ExternalKind::TfServing,
        ExternalKind::TorchServe,
        ExternalKind::RayServe,
    ];

    /// Configuration name.
    pub fn name(&self) -> &'static str {
        match self {
            ExternalKind::TfServing => "tf_serving",
            ExternalKind::TorchServe => "torch_serve",
            ExternalKind::RayServe => "ray_serve",
        }
    }

    /// Look a framework up by its configuration name.
    pub fn by_name(name: &str) -> Result<ExternalKind> {
        Self::ALL
            .into_iter()
            .find(|k| k.name() == name)
            .ok_or_else(|| ServingError::Config(format!("unknown external server: {name}")))
    }

    /// Start a server of this kind for `graph`.
    pub fn start(&self, graph: &NnGraph, config: ServingConfig) -> Result<ServerHandle> {
        match self {
            ExternalKind::TfServing => tf_serving::start(graph, config),
            ExternalKind::TorchServe => torch_serve::start(graph, config),
            ExternalKind::RayServe => ray_serve::start(graph, config),
        }
    }

    /// Start a server of this kind on a fixed address (port 0 picks an
    /// ephemeral one). Used by [`RestartableServer`] to restore a crashed
    /// server on the endpoint its clients already hold.
    pub fn start_at(
        &self,
        graph: &NnGraph,
        config: ServingConfig,
        addr: std::net::SocketAddr,
    ) -> Result<ServerHandle> {
        match self {
            ExternalKind::TfServing => tf_serving::start_at(graph, config, addr),
            ExternalKind::TorchServe => torch_serve::start_at(graph, config, addr),
            ExternalKind::RayServe => ray_serve::start_at(graph, config, addr),
        }
    }

    /// Connect a protocol-appropriate client to a running server.
    pub fn connect(
        &self,
        addr: std::net::SocketAddr,
        network: crayfish_sim::NetworkModel,
    ) -> Result<Box<dyn ScoringClient>> {
        match self {
            ExternalKind::TfServing | ExternalKind::TorchServe => {
                Ok(Box::new(GrpcClient::connect(addr, network)?))
            }
            ExternalKind::RayServe => Ok(Box::new(HttpClient::connect(addr, network)?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for k in ExternalKind::ALL {
            assert_eq!(ExternalKind::by_name(k.name()).unwrap(), k);
        }
        assert!(ExternalKind::by_name("triton").is_err());
    }
}
