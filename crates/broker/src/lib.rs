//! # crayfish-broker
//!
//! An in-process analog of the paper's Apache Kafka cluster.
//!
//! Crayfish (§3.5 "Message Brokers") decouples the input generator and the
//! metrics pipeline from the system under test with a persistent
//! publish-subscribe broker, and uses the broker's **LogAppendTime** as the
//! authoritative *end* timestamp of every scored batch. This crate
//! reproduces the parts of Kafka that shape those measurements:
//!
//! * topics split into partitions, each an ordered append log with
//!   monotonically increasing offsets;
//! * `LogAppendTime` stamping under the partition lock;
//! * a [`producer::Producer`] that accumulates records and ships them in
//!   batches (Kafka's sender-thread behaviour: requests in flight batch
//!   whatever accumulated meanwhile), paying one modelled network hop per
//!   request;
//! * a [`consumer::PartitionConsumer`] with long-poll fetches, fetch-size
//!   limits, and committed offsets per consumer group;
//! * per-partition **replicated logs** across a modelled node cluster —
//!   leader/follower replicas, ISR tracking, a high watermark gating
//!   visibility, leader-epoch fencing, and deterministic failover (see
//!   [`replication`] and [`cluster`]);
//! * a broker-side consumer-group coordinator with generation-fenced
//!   commits and rebalancing ([`consumer::GroupConsumer`]).
//!
//! The network between clients and the broker is the calibrated
//! [`crayfish_sim::NetworkModel`] (the paper's 1 Gbps GCP LAN); pass
//! [`crayfish_sim::NetworkModel::zero`] to place a client "inside" the
//! broker machine.

#![forbid(unsafe_code)]

pub mod api;
pub mod broker;
pub mod cluster;
pub mod consumer;
pub mod error;
pub mod node;
pub mod producer;
pub mod replication;
pub mod rpc;
pub mod topic;

pub use api::BrokerApi;
pub use broker::Broker;
pub use cluster::{BrokerId, ClusterConfig};
pub use consumer::{GroupConsumer, PartitionConsumer};
pub use error::BrokerError;
pub use node::{
    connect_cluster, probe_node, BrokerNode, ClusterTransport, NodeReply, NodeRequest, NodeStatus,
};
pub use producer::{Producer, ProducerConfig};
pub use replication::{ReplicatedPartition, ReplicationStatus};
pub use rpc::{BrokerReply, BrokerRequest, BrokerResponse, RemoteBroker};
pub use topic::FetchedRecord;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BrokerError>;
