//! The reactor's wakeup primitive: a tiny event-count.
//!
//! The reactor used to park with `thread::park_timeout` and be unparked by
//! whoever produced work (a completion, a new connection, shutdown).
//! `park`/`unpark` cannot be modelled by loom, so the handoff it protects —
//! *did the producer's wakeup happen-before the consumer went to sleep?* —
//! was unverifiable. This flag-under-a-mutex event-count has the same
//! semantics (a notification before or during a wait always ends that
//! wait; notifications never accumulate beyond one) and is built on
//! `crayfish-sync`, so the loom model in `tests/loom.rs` can prove the
//! register/shutdown handshake lost-wakeup-free.

use std::time::Duration;

use crayfish_sync::{Condvar, Mutex};

/// A one-slot wakeup flag. `notify` from any thread makes the next (or a
/// concurrent) `wait_timeout` return promptly; a wait with no pending
/// notification blocks until one arrives or the timeout passes.
#[derive(Debug)]
pub struct Waker {
    signal: Mutex<bool>,
    cond: Condvar,
}

impl Default for Waker {
    fn default() -> Self {
        Waker::new()
    }
}

impl Waker {
    /// A waker with no pending notification.
    pub fn new() -> Waker {
        Waker {
            signal: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Wake the (single) waiter. Setting the flag under the mutex is what
    /// makes the handoff race-free: a waiter that checked the flag and is
    /// between "saw false" and "blocked on the condvar" still holds the
    /// mutex, so this notify cannot slip into that window.
    pub fn notify(&self) {
        let mut signal = self.signal.lock();
        *signal = true;
        self.cond.notify_one();
    }

    /// Block until notified or `timeout` passes, consuming at most one
    /// pending notification. Under loom the timeout never fires (loom
    /// condvars do not time out), which is exactly what makes a lost
    /// wakeup show up as a deadlock in the model.
    pub fn wait_timeout(&self, timeout: Duration) {
        let mut signal = self.signal.lock();
        if !*signal {
            let (guard, _timed_out) = self.cond.wait_timeout(signal, timeout);
            signal = guard;
        }
        *signal = false;
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn notify_before_wait_returns_immediately() {
        let w = Waker::new();
        w.notify();
        let sw = crayfish_sim::Stopwatch::start();
        w.wait_timeout(Duration::from_secs(5));
        assert!(sw.elapsed_millis() < 1000.0, "pending notify was lost");
    }

    #[test]
    fn wait_times_out_without_notification() {
        let w = Waker::new();
        let sw = crayfish_sim::Stopwatch::start();
        w.wait_timeout(Duration::from_millis(30));
        assert!(sw.elapsed_millis() >= 25.0);
    }

    #[test]
    fn notification_is_consumed_once() {
        let w = Waker::new();
        w.notify();
        w.notify();
        w.wait_timeout(Duration::from_secs(1));
        // Both notifies collapsed into one; the next wait must block.
        let sw = crayfish_sim::Stopwatch::start();
        w.wait_timeout(Duration::from_millis(30));
        assert!(sw.elapsed_millis() >= 25.0, "stale notification leaked");
    }

    #[test]
    fn concurrent_notify_wakes_a_waiting_thread() {
        let w = Arc::new(Waker::new());
        let w2 = w.clone();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            w2.notify();
        });
        let sw = crayfish_sim::Stopwatch::start();
        w.wait_timeout(Duration::from_secs(10));
        assert!(sw.elapsed_millis() < 5000.0, "wakeup lost");
        h.join().unwrap();
    }
}
