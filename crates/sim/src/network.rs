//! First-order network cost model.
//!
//! The paper runs each Crayfish component on a separate GCP VM connected by
//! a 1 Gbps LAN (§4.2: 0.945 ms average ping for a 3 KB packet, 1.565 ms for
//! 64 KB). This reproduction runs everything on one host, so the LAN is
//! modelled: every logical **one-way** network hop costs
//!
//! ```text
//! delay(bytes) = base_latency + bytes / bandwidth
//! ```
//!
//! spent as real wall time via [`crate::precise_sleep`]. The defaults are
//! fitted to the paper's two ping (round-trip) measurements, i.e.
//! `2 * delay(n)` reproduces them exactly (see [`NetworkModel::lan_1gbps`]).

use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::time::precise_sleep;

/// Latency + bandwidth model for one network hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Fixed one-way latency per message/batch, in seconds.
    pub base_latency_s: f64,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
}

impl NetworkModel {
    /// A model with no cost (used by the `no-kafka` standalone pipeline of
    /// Figure 13 and by unit tests).
    pub const fn zero() -> Self {
        Self {
            base_latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
        }
    }

    /// The paper's evaluation LAN.
    ///
    /// Fitted to §4.2: a ping (round trip) of 3 KB takes 0.945 ms and of
    /// 64 KB takes 1.565 ms. Solving `2 * (base + n/bw)` for the two points
    /// gives a one-way base latency of ~0.457 ms and an effective bandwidth
    /// of ~201.5 MB/s. The fitted bandwidth exceeds the 1 Gbps line rate
    /// because large pings fragment and pipeline; we keep the exact fit to
    /// the paper's measurements rather than the nominal link speed, since
    /// those measurements are what shaped the paper's end-to-end latencies.
    pub const fn lan_1gbps() -> Self {
        Self {
            base_latency_s: 0.000_457_3,
            bandwidth_bytes_per_s: 201.5e6,
        }
    }

    /// A fast localhost-like link for experiments that want the broker "in
    /// the same rack" without removing it from the picture.
    pub const fn localhost() -> Self {
        Self {
            base_latency_s: 0.000_02,
            bandwidth_bytes_per_s: 5.0e9,
        }
    }

    /// Delay for transferring `bytes` over this hop.
    pub fn delay(&self, bytes: usize) -> Duration {
        let transfer = if self.bandwidth_bytes_per_s.is_finite() && self.bandwidth_bytes_per_s > 0.0
        {
            bytes as f64 / self.bandwidth_bytes_per_s
        } else {
            0.0
        };
        Duration::from_secs_f64(self.base_latency_s + transfer)
    }

    /// Spend the modelled transfer time for `bytes` as wall-clock time.
    pub fn transfer(&self, bytes: usize) {
        let d = self.delay(bytes);
        if !d.is_zero() {
            precise_sleep(d);
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::lan_1gbps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_costs_nothing() {
        let m = NetworkModel::zero();
        assert_eq!(m.delay(0), Duration::ZERO);
        assert_eq!(m.delay(1 << 30), Duration::ZERO);
    }

    #[test]
    fn lan_model_matches_paper_ping_measurements() {
        let m = NetworkModel::lan_1gbps();
        // Ping = round trip = 2 * one-way delay.
        let rtt3k = 2.0 * m.delay(3 * 1024).as_secs_f64() * 1e3;
        let rtt64k = 2.0 * m.delay(64 * 1024).as_secs_f64() * 1e3;
        assert!((rtt3k - 0.945).abs() < 0.02, "3KB ping {rtt3k} ms");
        assert!((rtt64k - 1.565).abs() < 0.03, "64KB ping {rtt64k} ms");
    }

    #[test]
    fn delay_is_monotonic_in_size() {
        let m = NetworkModel::lan_1gbps();
        let mut prev = Duration::ZERO;
        for bytes in [0usize, 100, 10_000, 1_000_000, 10_000_000] {
            let d = m.delay(bytes);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn transfer_spends_wall_time() {
        let m = NetworkModel {
            base_latency_s: 0.002,
            bandwidth_bytes_per_s: 1e9,
        };
        let sw = crate::Stopwatch::start();
        m.transfer(1000);
        assert!(sw.elapsed_millis() >= 1.9);
    }

    #[test]
    fn serde_roundtrip() {
        let m = NetworkModel::lan_1gbps();
        let json = serde_json::to_string(&m).unwrap();
        let back: NetworkModel = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
