//! Deterministic pseudo-random numbers for fault schedules.
//!
//! A SplitMix64 generator: tiny, dependency-free, and fully determined by
//! its seed, which is exactly what a reproducible `FaultPlan` needs. Not
//! cryptographic, and deliberately independent from the workload RNG so a
//! chaos schedule never perturbs input generation.

use std::time::Duration;

/// Deterministic SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Create a generator from a seed. The same seed always yields the
    /// same sequence, on every platform.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn range_duration(&mut self, lo: Duration, hi: Duration) -> Duration {
        Duration::from_nanos(self.range_u64(lo.as_nanos() as u64, hi.as_nanos() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn floats_are_unit_interval() {
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
        assert_eq!(r.range_u64(5, 5), 5);
    }
}
