//! Loading and normalising Rust sources for the scanners.
//!
//! The rules work on a *cleaned* copy of each file: comments and string
//! literals are blanked (byte-for-byte, newlines preserved, so offsets and
//! line numbers stay valid), and `#[cfg(test)]` items are blanked too —
//! test code is allowed to unwrap and read the wall clock. This is not a
//! parser; it is a deliberately small token-level model that is exact for
//! the constructs the rules care about.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One scanned file: the raw text plus the cleaned copy the rules run on.
pub struct SourceFile {
    /// Repo-relative path with `/` separators — the form used in baselines
    /// and reports.
    pub rel: String,
    /// Original text.
    pub raw: String,
    /// Comments, string/char literals, and `#[cfg(test)]` items blanked.
    pub clean: String,
}

impl SourceFile {
    pub fn load(root: &Path, path: PathBuf) -> io::Result<SourceFile> {
        let raw = fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let mut clean = strip_comments_and_strings(&raw);
        blank_test_items(&mut clean);
        Ok(SourceFile { rel, raw, clean })
    }

    /// Build a file from an in-memory snippet (self-test mode).
    pub fn synthetic(rel: &str, raw: &str) -> SourceFile {
        let mut clean = strip_comments_and_strings(raw);
        blank_test_items(&mut clean);
        SourceFile {
            rel: rel.to_string(),
            raw: raw.to_string(),
            clean,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, pos: usize) -> usize {
        self.raw.as_bytes()[..pos.min(self.raw.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count()
            + 1
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Blank comments and string/char literals, preserving length and
/// newlines. Handles line and nested block comments, plain and raw (also
/// byte-) strings, char literals, and leaves lifetimes alone.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = b.to_vec();
    let mut i = 0;
    let blank = |out: &mut [u8], from: usize, to: usize| {
        for slot in &mut out[from..to] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |n| i + n);
                blank(&mut out, i, end);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start, i);
            }
            b'r' | b'b' if i == 0 || !is_ident(b[i - 1]) => {
                // Possible raw/byte string: r"..", r#".."#, b"..", br#".."#,
                // b'..'.
                let mut j = i;
                if b[j] == b'b' && j + 1 < b.len() && b[j + 1] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                let mut k = j + 1;
                while k < b.len() && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < b.len() && b[k] == b'"' && (hashes > 0 || b[j + 1] == b'"') {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat(b'#').take(hashes))
                        .collect();
                    let body = k + 1;
                    let end = src.as_bytes()[body..]
                        .windows(closer.len().max(1))
                        .position(|w| w == closer.as_slice())
                        .map_or(b.len(), |n| body + n + closer.len());
                    blank(&mut out, i + 1, end);
                    i = end;
                } else if b[i] == b'b' && i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'\'')
                {
                    // Defer to the plain string/char arms below.
                    i += 1;
                } else {
                    i += 1;
                }
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                    } else if b[i] == b'"' {
                        i += 1;
                        break;
                    } else {
                        i += 1;
                    }
                }
                blank(&mut out, start + 1, i.saturating_sub(1).max(start + 1));
            }
            b'\'' => {
                // Char literal or lifetime. A literal closes with `'` within
                // a few bytes; a lifetime never closes.
                let mut j = i + 1;
                if j < b.len() && b[j] == b'\\' {
                    j += 2;
                    while j < b.len() && b[j] != b'\'' {
                        j += 1;
                    }
                    blank(&mut out, i + 1, j.min(b.len()));
                    i = (j + 1).min(b.len());
                } else {
                    // `'a'` closes right after one scalar (up to 4 UTF-8
                    // bytes); `'a` with no nearby close is a lifetime.
                    let close =
                        (i + 2..=(i + 5).min(b.len().saturating_sub(1))).find(|&k| b[k] == b'\'');
                    match close {
                        Some(k) if k == i + 2 || !is_ident(b[i + 1]) => {
                            blank(&mut out, i + 1, k);
                            i = k + 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            _ => i += 1,
        }
    }
    // The vec only ever has ASCII substituted in place of valid UTF-8; any
    // multibyte sequence is either untouched or fully blanked.
    String::from_utf8_lossy(&out).into_owned()
}

/// Blank every item annotated `#[cfg(test)]` (or `#[cfg(all(test, ..))]`)
/// in already-stripped text: the attribute, any stacked attributes after
/// it, and the following braced item.
pub fn blank_test_items(clean: &mut String) {
    let mut out = clean.clone().into_bytes();
    let bytes = clean.as_bytes();
    let mut search = 0;
    while let Some(found) = clean[search..].find("#[cfg(") {
        let attr_start = search + found;
        let paren = attr_start + "#[cfg".len();
        let Some(paren_end) = matching(bytes, paren, b'(', b')') else {
            break;
        };
        let args = &clean[paren + 1..paren_end];
        let is_test = args
            .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .any(|tok| tok == "test");
        search = paren_end + 1;
        if !is_test {
            continue;
        }
        // Skip `]` plus any further attributes, then blank the item.
        let mut i = paren_end + 1;
        while i < bytes.len() && bytes[i] != b']' {
            i += 1;
        }
        i += 1;
        loop {
            while i < bytes.len() && (bytes[i] as char).is_whitespace() {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b'#' && bytes[i + 1] == b'[' {
                let Some(close) = matching(bytes, i + 1, b'[', b']') else {
                    return;
                };
                i = close + 1;
            } else {
                break;
            }
        }
        // The item ends at a `;` (e.g. `mod tests;`, `use ..;`) or at the
        // close of its first brace block, whichever comes first.
        let mut j = i;
        let end = loop {
            if j >= bytes.len() {
                break bytes.len();
            }
            match bytes[j] {
                b';' => break j + 1,
                b'{' => {
                    break matching(bytes, j, b'{', b'}').map_or(bytes.len(), |e| e + 1);
                }
                _ => j += 1,
            }
        };
        for slot in &mut out[attr_start..end] {
            if *slot != b'\n' {
                *slot = b' ';
            }
        }
        search = end;
    }
    *clean = String::from_utf8_lossy(&out).into_owned();
}

/// Position of the bracket matching `open` at `start` (which must hold the
/// opening bracket), or `None` if unbalanced.
pub fn matching(bytes: &[u8], start: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &c) in bytes.iter().enumerate().skip(start) {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Byte ranges of every `fn` body in cleaned text: `(fn_pos, body_start,
/// body_end)`, body bounds inclusive of the braces.
pub fn function_bodies(clean: &str) -> Vec<(usize, usize, usize)> {
    let bytes = clean.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(found) = clean[search..].find("fn ") {
        let pos = search + found;
        search = pos + 3;
        if pos > 0 && is_ident(bytes[pos - 1]) {
            continue;
        }
        // Find the body opener, unless the declaration ends in `;` first
        // (trait method without a default body).
        let mut j = pos + 3;
        let body = loop {
            if j >= bytes.len() {
                break None;
            }
            match bytes[j] {
                b';' => break None,
                b'{' => break Some(j),
                _ => j += 1,
            }
        };
        if let Some(open) = body {
            if let Some(close) = matching(bytes, open, b'{', b'}') {
                out.push((pos, open, close));
                search = open + 1;
            }
        }
    }
    out
}

/// An in-source lint suppression:
/// `// crayfish-lint: allow(<rule>) -- <reason>`.
///
/// The suppression applies to findings on its own line or the line below
/// (so it can sit above the offending statement). A missing `-- <reason>`
/// is itself a hard lint failure: unexplained suppressions are how
/// ratchets rot.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line the comment sits on.
    pub line: usize,
    pub rule: String,
    pub reason: Option<String>,
}

const SUPPRESS_MARK: &str = "crayfish-lint: allow(";

/// Parse every suppression comment in the raw text.
pub fn suppressions(raw: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in raw.lines().enumerate() {
        let Some(comment) = line.find("//").map(|p| &line[p..]) else {
            continue;
        };
        let Some(mark) = comment.find(SUPPRESS_MARK) else {
            continue;
        };
        let after = &comment[mark + SUPPRESS_MARK.len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rule = after[..close].trim().to_string();
        let rest = after[close + 1..].trim();
        let reason = rest
            .strip_prefix("--")
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .map(str::to_string);
        out.push(Suppression {
            line: idx + 1,
            rule,
            reason,
        });
    }
    out
}

/// Recursively collect `.rs` files under `dir`.
pub fn collect_rs(dir: &Path, into: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.filter_map(|e| e.ok()).collect();
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, into)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            into.push(path);
        }
    }
    Ok(())
}
