//! crayfish-lint: the repo's own static-analysis pass.
//!
//! Rules (see `rules.rs` and DESIGN.md §3g):
//!
//! * `clock-authority` — no `Instant::now()` / `SystemTime::now()` outside
//!   `crayfish-sim` (ratcheted via `lint-baseline.txt`).
//! * `unwrap-in-pipeline` — no `.unwrap()` / `.expect(` in non-test code
//!   of the record-path crates (ratcheted).
//! * `lock-rank` — ranked locks must be acquired in ascending rank order
//!   within a function.
//! * `hot-path-alloc` — no heap allocation (`Vec::new`, `vec![`,
//!   `.to_vec(`, `.collect(`) inside compute-kernel bodies under
//!   `crates/tensor/src/kernels/` (ratcheted; compat wrappers baselined).
//! * `span-coverage` — every polling worker body in the engine kernel
//!   carries a chaos checkpoint and an obs span/charge.
//! * `forbid-unsafe` — every crate root declares
//!   `#![forbid(unsafe_code)]`.
//!
//! Usage: `cargo run -p crayfish-lint` (check), `-- --write-baseline`
//! (ratchet), `-- --self-test` (prove the rules catch seeded violations).
//! Exit codes: 0 clean, 1 findings, 2 usage/config error.

#![forbid(unsafe_code)]

mod baseline;
mod rules;
mod selftest;
mod source;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use baseline::Counts;
use source::SourceFile;

enum Mode {
    Check,
    WriteBaseline,
    SelfTest,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => mode = Mode::WriteBaseline,
            "--self-test" => mode = Mode::SelfTest,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => return usage(&e),
    };
    let result = match mode {
        Mode::SelfTest => self_test(),
        Mode::WriteBaseline => scan(&root, true),
        Mode::Check => scan(&root, false),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in &failures {
                eprintln!("crayfish-lint: {f}");
            }
            eprintln!("crayfish-lint: {} failure(s)", failures.len());
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("crayfish-lint: {msg}");
    eprintln!("usage: crayfish-lint [--root <repo>] [--write-baseline | --self-test]");
    ExitCode::from(2)
}

/// The workspace root: the nearest ancestor of the current directory
/// holding both `Cargo.toml` and `crates/`. `cargo run -p crayfish-lint`
/// starts at the workspace root already.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("not inside the workspace (no Cargo.toml + crates/ found)".into());
        }
    }
}

fn self_test() -> Result<(), Vec<String>> {
    let failures = selftest::run();
    if failures.is_empty() {
        println!("crayfish-lint: self-test passed (all seeded violations caught)");
        Ok(())
    } else {
        Err(failures)
    }
}

fn scan(root: &Path, write: bool) -> Result<(), Vec<String>> {
    // Scan src/ trees only: integration tests, benches, and examples may
    // unwrap and read the wall clock.
    let mut paths = Vec::new();
    let mut src_dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        crates.sort();
        for krate in crates {
            src_dirs.push(krate.join("src"));
        }
    }
    for dir in src_dirs {
        if let Err(e) = source::collect_rs(&dir, &mut paths) {
            return Err(vec![format!("walk {}: {e}", dir.display())]);
        }
    }
    let mut hard = Vec::new();
    let mut counts = Counts::new();
    let mut scanned = 0usize;
    for path in paths {
        let file = match SourceFile::load(root, path) {
            Ok(f) => f,
            Err(e) => return Err(vec![format!("load: {e}")]),
        };
        scanned += 1;
        for v in rules::all_rules(&file) {
            if rules::BASELINED.contains(&v.rule) {
                *counts
                    .entry((v.rule.to_string(), v.rel.clone()))
                    .or_insert(0) += 1;
            } else {
                hard.push(format!("{}: {}:{}: {}", v.rule, v.rel, v.line, v.msg));
            }
        }
    }
    if write {
        baseline::write(root, &counts).map_err(|e| vec![e])?;
        let total: usize = counts.values().sum();
        println!(
            "crayfish-lint: baseline written ({total} ratcheted finding(s) across {} file(s))",
            counts.len()
        );
        if hard.is_empty() {
            return Ok(());
        }
        return Err(hard);
    }
    let base = baseline::load(root).map_err(|e| vec![e])?;
    let mut failures = hard;
    failures.extend(baseline::compare(&counts, &base));
    if failures.is_empty() {
        println!(
            "crayfish-lint: {scanned} files clean (baseline holds {} entries)",
            base.len()
        );
        Ok(())
    } else {
        Err(failures)
    }
}
