//! The register-tiled GEMM microkernel and its blocking constants.
//!
//! This is the innermost piece of the BLIS-style GEMM (Goto & van de Geijn,
//! "Anatomy of High-Performance Matrix Multiplication"): an `MR×NR` tile of
//! `C` is held in registers while `kc` rank-1 updates stream in from packed
//! panels of `A` and `B`. Everything is plain safe Rust — the fixed-size
//! accumulator array and `chunks_exact` iteration are shaped so LLVM
//! promotes the tile to vector registers and emits FMA when the target has
//! it (the workspace builds with `-C target-cpu=native`, see
//! `.cargo/config.toml`).
//!
//! Layout contract (established by [`crate::kernels::pack`]):
//!
//! * the `A` panel stores one `MR`-row strip K-major: element `(r, p)` of
//!   the strip lives at `p * MR + r`;
//! * the `B` panel stores one `NR`-column strip K-major: element `(p, c)`
//!   lives at `p * NR + c`;
//! * edge strips are zero-padded to full `MR`/`NR`, so the microkernel
//!   always computes a full tile and the store step clips.

/// Rows of `C` computed per microkernel call. On AVX2 the tile is
/// `MR * NR / 8 = 12` YMM accumulators plus two `B` vectors and one
/// broadcast register — the largest tile that fits the 16 registers
/// without spilling (LLVM spills the whole tile at `MR = 8`, which costs
/// an order of magnitude).
pub const MR: usize = 6;

/// Columns of `C` computed per microkernel call: two vectors per row.
///
/// The accumulator tile is `MR * NR / lanes` independent FMA chains;
/// saturating two FMA ports at 4-cycle latency needs at least 8 in
/// flight. On AVX-512 one 16-lane ZMM per row would leave only 6 chains
/// (one FMA per cycle, measured exactly that), so `NR = 32` doubles the
/// tile to 12 of the 32 ZMM registers. On AVX2 `NR = 16` gives the same
/// 12-chain shape in YMM registers.
#[cfg(target_feature = "avx512f")]
pub const NR: usize = 32;
#[cfg(not(target_feature = "avx512f"))]
pub const NR: usize = 16;

/// K-dimension block: one packed `B` strip slice (`KC * NR * 4` = 16 or
/// 32 KiB) stays resident in L1 across the whole `ir` loop.
pub const KC: usize = 256;

/// Row-strips per `A` block: `MC = MC_STRIPS * MR = 192` rows, so an
/// `MC × KC` packed `A` block (~192 KiB) sits in L2 while the `B` block is
/// re-streamed fewer times per `jc` column block.
pub const MC_STRIPS: usize = 32;

/// Column-strips per `B` block: `NC = NC_STRIPS * NR` columns (1–2 K), so
/// a `KC × NC` packed `B` block (~1–2 MiB) sits in L2/L3.
pub const NC_STRIPS: usize = 64;

/// Fused multiply-add when the target has FMA; `a * b + c` otherwise.
/// (`f32::mul_add` without hardware FMA lowers to a libm call, which would
/// be ruinous in the inner loop.)
#[inline(always)]
fn fma(a: f32, b: f32, c: f32) -> f32 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

/// Compute one `MR×NR` tile: the sum over `p < kc` of
/// `a_panel[p] ⊗ b_panel[p]`. Returns the tile by value so LLVM keeps the
/// accumulators in registers for the whole `kc` loop.
#[inline(always)]
pub fn microkernel(a_panel: &[f32], b_panel: &[f32], kc: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    // Two rank-1 updates per iteration: halves the loop overhead and gives
    // the scheduler a wider window of independent FMAs per trip.
    let a_pairs = a_panel.chunks_exact(2 * MR);
    let b_pairs = b_panel.chunks_exact(2 * NR);
    let pairs = kc / 2;
    let (a_tail, b_tail) = (a_pairs.remainder(), b_pairs.remainder());
    for (av, bv) in a_pairs.take(pairs).zip(b_pairs.take(pairs)) {
        // Fixed-size views: the bounds checks vanish and the loops below
        // fully unroll and vectorise.
        let av: &[f32; 2 * MR] = av.try_into().expect("packed A strip width");
        let bv: &[f32; 2 * NR] = bv.try_into().expect("packed B strip width");
        for (row, &a) in acc.iter_mut().zip(av[..MR].iter()) {
            for (slot, &b) in row.iter_mut().zip(bv[..NR].iter()) {
                *slot = fma(a, b, *slot);
            }
        }
        for (row, &a) in acc.iter_mut().zip(av[MR..].iter()) {
            for (slot, &b) in row.iter_mut().zip(bv[NR..].iter()) {
                *slot = fma(a, b, *slot);
            }
        }
    }
    if kc % 2 == 1 {
        let av = &a_tail[..MR];
        let bv = &b_tail[..NR];
        for (row, &a) in acc.iter_mut().zip(av.iter()) {
            for (slot, &b) in row.iter_mut().zip(bv.iter()) {
                *slot = fma(a, b, *slot);
            }
        }
    }
    acc
}

/// Add the valid `mr_eff × nr_eff` corner of a computed tile into `C`
/// (row-major, leading dimension `ldc`, tile origin `(row0, col0)`).
#[inline(always)]
pub fn store_tile_add(
    acc: &[[f32; NR]; MR],
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
) {
    for (i, row) in acc.iter().enumerate().take(mr_eff) {
        let base = (row0 + i) * ldc + col0;
        for (slot, &v) in c[base..base + nr_eff].iter_mut().zip(row.iter()) {
            *slot += v;
        }
    }
}

/// Rows per int8 microkernel tile (see [`q8_microkernel`]).
pub const QMR: usize = 4;

/// Columns per int8 microkernel tile.
pub const QNR: usize = 4;

/// K-padding multiple for quantized panels: 32 `i16` lanes = one 64-byte
/// ZMM load, so every dot product below runs over whole vectors with the
/// tail absorbed by zero padding at pack time.
pub const QK_ALIGN: usize = 32;

/// `k` rounded up to the quantized panel's K-padding.
#[inline]
pub fn padded_qk(k: usize) -> usize {
    k.div_ceil(QK_ALIGN) * QK_ALIGN
}

/// Compute one `QMR×QNR` tile of `i8×i8 → i32` dot products.
///
/// Layout contract (established by `quantize_*_into` in
/// [`crate::kernels::pack`]): `a_panel` holds `QMR` consecutive rows, each
/// `kp` `i16`s long; `b_panel` holds `QNR` consecutive *columns*, each `kp`
/// long — i.e. both operands are stored as contiguous full-K vectors, the
/// degenerate strip layout with one row (column) per strip. The values are
/// int8-range (`[-127, 127]`) but stored as `i16`.
///
/// Shape notes, established by experiment on the AVX-512 host:
///
/// * LLVM's X86PartialReduction pass only forms `vpmaddwd` (two 16-bit
///   MACs per 32-bit lane) when a plain scalar accumulator feeds a single
///   visible vector reduce — hence the textbook `s += x[k] * y[k]` dot
///   below. Interleaved multi-accumulator loops, manual even/odd pairing,
///   or returning raw vector accumulators all degrade to
///   `vpmovsxwd`+`vpmulld` at a fraction of the throughput.
/// * `i16` storage (not `i8`) because the `i8` load + sign-extend on the
///   critical path halved measured throughput; `i16` still halves the
///   memory traffic of `f32`.
/// * Accumulating a full-K dot in `i32` is safe for any practical `k`:
///   `k · 127²` stays below `2³¹` for `k` up to ~133 000.
///
/// `#[inline(never)]`: the reduce-pattern match above is fragile under
/// inlining into larger loop nests; keeping the function a codegen unit
/// pins the measured-good shape. At ≥ 512 MACs per call the call cost is
/// noise.
#[inline(never)]
pub fn q8_microkernel(a_panel: &[i16], b_panel: &[i16], kp: usize) -> [[i32; QNR]; QMR] {
    let mut out = [[0i32; QNR]; QMR];
    for (r, row) in out.iter_mut().enumerate() {
        let x = &a_panel[r * kp..(r + 1) * kp];
        for (c, slot) in row.iter_mut().enumerate() {
            let y = &b_panel[c * kp..(c + 1) * kp];
            let mut s = 0i32;
            // Codegen-sensitive: see the shape notes above.
            #[allow(clippy::needless_range_loop)]
            for k in 0..kp {
                s += x[k] as i32 * y[k] as i32;
            }
            *slot = s;
        }
    }
    out
}

/// Dequantize-on-store epilogue for the int8 path: add the valid
/// `mr_eff × nr_eff` corner of an `i32` tile into `C`, rescaling each
/// element by its row scale (`sa`, per output channel) and column scale
/// (`sb`, per activation row / per tensor).
#[inline(always)]
#[allow(clippy::too_many_arguments)] // mirrors store_tile_add plus the two scale vectors
pub fn store_tile_dequant(
    acc: &[[i32; QNR]; QMR],
    c: &mut [f32],
    ldc: usize,
    row0: usize,
    col0: usize,
    mr_eff: usize,
    nr_eff: usize,
    sa: &[f32],
    sb: &[f32],
) {
    for (i, row) in acc.iter().enumerate().take(mr_eff) {
        let si = sa[row0 + i];
        let base = (row0 + i) * ldc + col0;
        for (j, (slot, &v)) in c[base..base + nr_eff].iter_mut().zip(row.iter()).enumerate() {
            *slot += v as f32 * si * sb[col0 + j];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microkernel_is_sum_of_outer_products() {
        // kc = 2: A strip rows [1..=6] then [10,..,60]; B strip [1..=16]
        // then all 0.5.
        let mut a = Vec::new();
        a.extend((1..=MR).map(|v| v as f32));
        a.extend((1..=MR).map(|v| 10.0 * v as f32));
        let mut b = Vec::new();
        b.extend((1..=NR).map(|v| v as f32));
        b.extend(std::iter::repeat(0.5).take(NR));
        let acc = microkernel(&a, &b, 2);
        for (i, row) in acc.iter().enumerate() {
            for (j, &got) in row.iter().enumerate() {
                let expect = (i + 1) as f32 * (j + 1) as f32 + 10.0 * (i + 1) as f32 * 0.5;
                assert_eq!(got, expect, "tile ({i},{j})");
            }
        }
    }

    #[test]
    fn q8_microkernel_matches_scalar_dots() {
        let kp = QK_ALIGN;
        let mut a = vec![0i16; QMR * kp];
        let mut b = vec![0i16; QNR * kp];
        for (i, v) in a.iter_mut().enumerate() {
            *v = ((i as i64 * 37 + 11) % 255 - 127) as i16;
        }
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as i64 * 53 + 7) % 255 - 127) as i16;
        }
        let acc = q8_microkernel(&a, &b, kp);
        for r in 0..QMR {
            for c in 0..QNR {
                let want: i32 = (0..kp)
                    .map(|k| a[r * kp + k] as i32 * b[c * kp + k] as i32)
                    .sum();
                assert_eq!(acc[r][c], want, "tile ({r},{c})");
            }
        }
    }

    #[test]
    fn store_tile_dequant_applies_row_and_col_scales() {
        let mut acc = [[0i32; QNR]; QMR];
        for (r, row) in acc.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = (r * 10 + c) as i32;
            }
        }
        let sa = [2.0f32, 0.5, 1.0, 4.0];
        let sb = [1.0f32, 10.0, 0.1, 3.0];
        let mut c = vec![1.0f32; QMR * QNR];
        store_tile_dequant(&acc, &mut c, QNR, 0, 0, 3, 2, &sa, &sb);
        for r in 0..QMR {
            for j in 0..QNR {
                let expect = if r < 3 && j < 2 {
                    1.0 + (r * 10 + j) as f32 * sa[r] * sb[j]
                } else {
                    1.0
                };
                assert_eq!(c[r * QNR + j], expect, "({r},{j})");
            }
        }
    }

    #[test]
    fn padded_qk_rounds_up() {
        assert_eq!(padded_qk(1), QK_ALIGN);
        assert_eq!(padded_qk(QK_ALIGN), QK_ALIGN);
        assert_eq!(padded_qk(QK_ALIGN + 1), 2 * QK_ALIGN);
    }

    #[test]
    fn store_tile_clips_to_effective_size() {
        let acc = [[1.0f32; NR]; MR];
        let mut c = vec![0.0f32; 4 * 8];
        store_tile_add(&acc, &mut c, 8, 1, 2, 2, 3);
        let want_hot = [(1usize, 2usize), (1, 3), (1, 4), (2, 2), (2, 3), (2, 4)];
        for r in 0..4 {
            for col in 0..8 {
                let expect = if want_hot.contains(&(r, col)) {
                    1.0
                } else {
                    0.0
                };
                assert_eq!(c[r * 8 + col], expect, "({r},{col})");
            }
        }
    }
}
