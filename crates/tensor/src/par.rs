//! A small persistent worker pool for the blocked GEMM.
//!
//! Built entirely on the `crayfish-sync` shim so the whole handshake is
//! loom-checkable (`crates/tensor/tests/loom.rs` models job submission,
//! completion, and shutdown). Work is partitioned by row panels: each
//! participant computes a contiguous range of `MR`-row strips of `C` over
//! the full `K` and `N` extents, so no two threads ever write the same
//! cache line of output.
//!
//! Safe Rust cannot hand a short-lived `&mut C` to a persistent thread, so
//! the pool is shaped around owned data instead:
//!
//! * packed operands are shared as `Arc<Vec<f32>>` clones (no copying — the
//!   executors pre-pack weights and the scratch already holds activations
//!   packed);
//! * the submitting thread computes panel 0 directly into `C` while the
//!   workers run;
//! * each worker accumulates its panel into a buffer it owns across jobs,
//!   and the submitter adds the panels into `C` after the barrier. The
//!   extra pass over `C` is O(m·n) against the O(m·k·n) compute the pool is
//!   reserved for.
//!
//! Steady state submits allocate nothing: the job descriptor is a plain
//! struct of `Arc` clones and worker panels are reused buffers.
//!
//! Thread count comes from `CRAYFISH_THREADS` (values `0`/`1` disable the
//! pool), defaulting to the host parallelism capped at
//! [`MAX_POOL_THREADS`]. GEMMs below the size floor in
//! [`crate::kernels::gemm`] never reach the pool.

use crayfish_sync::{thread, Arc, Condvar, Mutex};

use crate::kernels::gemm::gemm_packed_region;
use crate::kernels::microkernel::MR;
use crate::kernels::pack::a_strips;

/// Upper bound on pool size; GEMM of the paper's model shapes stops
/// scaling long before this.
pub const MAX_POOL_THREADS: usize = 32;

/// One parallel GEMM: `C += unpack(pa) * unpack(pb)`, all participants
/// reading the shared packed operands.
#[derive(Clone)]
struct Job {
    pa: Arc<Vec<f32>>,
    pb: Arc<Vec<f32>>,
    m: usize,
    k: usize,
    n: usize,
}

struct State {
    job: Option<Job>,
    /// Bumped per submission; workers latch it so a re-checked condvar
    /// wakeup never re-runs a job they already finished.
    epoch: u64,
    /// Epoch whose last worker has finished.
    done_epoch: u64,
    /// Workers still running the current job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Single condvar for both "job posted" and "job done": every waiter
    /// re-checks its predicate, and with at most a handful of threads the
    /// spurious wakeups are irrelevant.
    cv: Condvar,
    /// One owned output panel per worker, reused across jobs.
    panels: Vec<Mutex<Vec<f32>>>,
}

/// The persistent pool. `threads` counts every participant including the
/// submitting thread, so `ThreadPool::new(4)` spawns three workers.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Strip range `[s0, s1)` of `part` when `total_strips` strips are split
/// across `parts` participants, remainder to the earliest parts.
fn partition(total_strips: usize, parts: usize, part: usize) -> (usize, usize) {
    let base = total_strips / parts;
    let extra = total_strips % parts;
    let s0 = part * base + part.min(extra);
    let s1 = s0 + base + usize::from(part < extra);
    (s0, s1)
}

/// Compute participant `part`'s panel of the job into `panel` (zeroed and
/// sized here; rows `s0*MR ..` of `C`, leading dimension `n`).
fn run_panel(job: &Job, part: usize, parts: usize, panel: &mut Vec<f32>) {
    let (s0, s1) = partition(a_strips(job.m), parts, part);
    if s0 >= s1 {
        panel.clear();
        return;
    }
    let rows = (s1 * MR).min(job.m) - s0 * MR;
    panel.resize(rows * job.n, 0.0);
    panel.fill(0.0);
    gemm_packed_region(
        &job.pa,
        &job.pb,
        panel,
        job.m,
        job.k,
        job.n,
        s0,
        s1,
        s0 * MR,
    );
}

fn worker_loop(shared: Arc<Shared>, index: usize, parts: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                match &st.job {
                    Some(job) if st.epoch != seen => {
                        seen = st.epoch;
                        break job.clone();
                    }
                    _ => st = shared.cv.wait(st),
                }
            }
        };
        {
            let mut panel = shared.panels[index].lock();
            run_panel(&job, index + 1, parts, &mut panel);
        }
        drop(job); // release the operand Arcs before reporting done
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            st.done_epoch = st.epoch;
            shared.cv.notify_all();
        }
    }
}

impl ThreadPool {
    /// Spawn a pool of `threads` total participants (min 1). If a worker
    /// thread fails to spawn the pool degrades to however many started.
    pub fn new(threads: usize) -> ThreadPool {
        let threads = threads.clamp(1, MAX_POOL_THREADS);
        let wanted = threads - 1;
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                done_epoch: 0,
                active: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            // crayfish-lint: allow(hot-path-alloc-transitive) -- one-time pool construction (first gemm call), not steady-state kernel work
            panels: (0..wanted).map(|_| Mutex::new(Vec::new())).collect(),
        });
        let mut workers = Vec::with_capacity(wanted);
        for i in 0..wanted {
            let sh = Arc::clone(&shared);
            match thread::spawn_named(&format!("crayfish-gemm-{i}"), move || {
                worker_loop(sh, i, threads)
            }) {
                Ok(h) => workers.push(h),
                Err(_) => break,
            }
        }
        // If spawning fell short, the missing participants simply own empty
        // partitions: recompute `threads` to match reality.
        let threads = workers.len() + 1;
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total participants (workers + the submitting thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// `C += unpack(pa) * unpack(pb)` across the pool. Blocks until every
    /// panel has been computed and merged; `C` is complete on return.
    pub(crate) fn gemm(
        &self,
        pa: &Arc<Vec<f32>>,
        pb: &Arc<Vec<f32>>,
        c: &mut [f32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        let job = Job {
            pa: Arc::clone(pa),
            pb: Arc::clone(pb),
            m,
            k,
            n,
        };
        if self.workers.is_empty() {
            let strips = a_strips(m);
            gemm_packed_region(&job.pa, &job.pb, c, m, k, n, 0, strips, 0);
            return;
        }
        let epoch = {
            let mut st = self.shared.state.lock();
            st.job = Some(job.clone());
            st.epoch += 1;
            st.active = self.workers.len();
            self.shared.cv.notify_all();
            st.epoch
        };
        // The submitter's own share goes straight into C (partition 0
        // starts at row 0, so no offset bookkeeping).
        let (s0, s1) = partition(a_strips(m), self.threads, 0);
        if s0 < s1 {
            gemm_packed_region(&job.pa, &job.pb, c, m, k, n, s0, s1, 0);
        }
        let mut st = self.shared.state.lock();
        while st.done_epoch != epoch {
            st = self.shared.cv.wait(st);
        }
        st.job = None; // drop the pool's operand Arcs so scratch can be reused
        drop(st);
        for (w, slot) in self.shared.panels.iter().enumerate() {
            let (s0, s1) = partition(a_strips(m), self.threads, w + 1);
            if s0 >= s1 {
                continue;
            }
            let panel = slot.lock();
            let row0 = s0 * MR;
            let rows = (s1 * MR).min(m) - row0;
            let dst = &mut c[row0 * n..(row0 + rows) * n];
            for (d, &p) in dst.iter_mut().zip(panel.iter()) {
                *d += p;
            }
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Pool size from the environment: `CRAYFISH_THREADS` if set (clamped to
/// [`MAX_POOL_THREADS`]; `0` and `1` both mean single-threaded), else the
/// host parallelism capped at 8 — GEMMs of the paper's layer shapes stop
/// scaling well before wide sockets, and inference pipelines run many
/// operators concurrently already.
#[cfg(not(loom))]
pub fn configured_threads() -> usize {
    match std::env::var("CRAYFISH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) => n.clamp(1, MAX_POOL_THREADS),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8),
    }
}

/// The process-wide pool, spawned on first use; `None` when configured
/// single-threaded. Loom builds have no global pool — models construct
/// their own inside `loom::model`.
#[cfg(not(loom))]
pub fn global() -> Option<&'static ThreadPool> {
    use std::sync::OnceLock;
    static POOL: OnceLock<Option<ThreadPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let threads = configured_threads();
        (threads >= 2).then(|| ThreadPool::new(threads))
    })
    .as_ref()
}

#[cfg(loom)]
pub fn global() -> Option<&'static ThreadPool> {
    None
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::kernels::gemm::{gemm_with_pool, matmul_naive};
    use crate::packed::GemmScratch;
    use crate::Tensor;

    #[test]
    fn partition_covers_all_strips_disjointly() {
        for strips in [0usize, 1, 2, 5, 7, 16] {
            for parts in [1usize, 2, 3, 4, 8] {
                let mut next = 0;
                for part in 0..parts {
                    let (s0, s1) = partition(strips, parts, part);
                    assert_eq!(s0, next, "strips={strips} parts={parts} part={part}");
                    assert!(s1 >= s0);
                    next = s1;
                }
                assert_eq!(next, strips);
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns real threads; covered by loom models")]
    fn pooled_gemm_matches_naive_including_accumulation() {
        let pool = ThreadPool::new(4);
        let mut scratch = GemmScratch::new();
        for (m, k, n) in [(1usize, 3usize, 2usize), (13, 7, 33), (40, 29, 50)] {
            let a = Tensor::seeded_uniform([m, k], 5, -1.0, 1.0);
            let b = Tensor::seeded_uniform([k, n], 6, -1.0, 1.0);
            let c0 = Tensor::seeded_uniform([m, n], 7, -1.0, 1.0);
            let mut c = c0.data().to_vec();
            gemm_with_pool(a.data(), b.data(), &mut c, m, k, n, &mut scratch, &pool);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);
            for i in 0..m * n {
                let expect = c0.data()[i] + reference[i];
                assert!((c[i] - expect).abs() < 1e-4, "({m},{k},{n})[{i}]");
            }
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "spawns real threads; covered by loom models")]
    fn single_participant_pool_degrades_to_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut scratch = GemmScratch::new();
        let a = vec![1.0f32; 8 * 4];
        let b = vec![2.0f32; 4 * 8];
        let mut c = vec![0.0f32; 8 * 8];
        gemm_with_pool(&a, &b, &mut c, 8, 4, 8, &mut scratch, &pool);
        assert!(c.iter().all(|&v| (v - 8.0).abs() < 1e-6));
    }

    #[test]
    fn thread_config_parses_env_shape() {
        // configured_threads reads the live environment; just pin the
        // clamp behaviour via the pool itself.
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert!(ThreadPool::new(500).threads() <= MAX_POOL_THREADS);
    }
}
