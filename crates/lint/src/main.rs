//! crayfish-lint: the repo's own static-analysis pass.
//!
//! Per-file rules (`rules.rs`, DESIGN.md §3g):
//!
//! * `clock-authority` — no `Instant::now()` / `SystemTime::now()` outside
//!   `crayfish-sim` (ratcheted via `lint-baseline.txt`).
//! * `hot-path-alloc` — no heap allocation (`Vec::new`, `vec![`,
//!   `.to_vec(`, `.collect(`) inside compute-kernel and reactor `poll_*`
//!   bodies (ratcheted; compat wrappers baselined).
//! * `span-coverage` — every polling worker body in the engine kernel
//!   carries a chaos checkpoint and an obs span/charge.
//! * `forbid-unsafe` — every crate root declares
//!   `#![forbid(unsafe_code)]`.
//!
//! Interprocedural analyses over the project call graph (`items.rs` →
//! `callgraph.rs` → `analysis.rs`):
//!
//! * `lock-rank` / `lock-rank-chain` — ranked locks acquired in ascending
//!   rank order, with held-guard sets propagated through call edges.
//! * `lock-order-cycle` — the empirical lock-order graph built from every
//!   observed acquisition pair must be acyclic.
//! * `hot-path-alloc-transitive` — the zero-allocation promise extends
//!   through transitive callees of kernels and reactor poll functions.
//! * `blocking-in-reactor` — no unbounded blocking call reachable from the
//!   net reactor's poll thread.
//! * `panic-reachability` — no `unwrap`/`expect`/`panic!` reachable from
//!   engine-kernel worker entry points, broker RPC handlers, or the
//!   deployment binaries.
//!
//! Findings can be suppressed in-source with
//! `// crayfish-lint: allow(<rule>) -- <reason>`; a suppression without a
//! reason, or one that matches nothing, is itself a failure.
//!
//! Usage: `cargo run -p crayfish-lint` (check), `-- --write-baseline`
//! (ratchet), `-- --self-test` (prove the rules catch seeded violations),
//! `-- --json <path>` (machine-readable report), `-- --github` (findings
//! as `::error` workflow annotations).
//! Exit codes: 0 clean, 1 findings, 2 usage/config error.

#![forbid(unsafe_code)]

mod analysis;
mod baseline;
mod callgraph;
mod items;
mod json;
mod rules;
mod selftest;
mod source;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use baseline::Counts;
use rules::Violation;
use source::SourceFile;

enum Mode {
    Check,
    WriteBaseline,
    SelfTest,
}

fn main() -> ExitCode {
    let mut mode = Mode::Check;
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut github = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--write-baseline" => mode = Mode::WriteBaseline,
            "--self-test" => mode = Mode::SelfTest,
            "--github" => github = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }
    let root = match root.map_or_else(find_root, Ok) {
        Ok(r) => r,
        Err(e) => return usage(&e),
    };
    let result = match mode {
        Mode::SelfTest => self_test(),
        Mode::WriteBaseline => scan(&root, true, json_path.as_deref(), github),
        Mode::Check => scan(&root, false, json_path.as_deref(), github),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(failures) => {
            for f in &failures {
                eprintln!("crayfish-lint: {}", f.text);
                if github {
                    if let Some((rel, line)) = &f.at {
                        println!(
                            "::error file={rel},line={line}::{}",
                            f.text.replace('\n', " ")
                        );
                    }
                }
            }
            eprintln!("crayfish-lint: {} failure(s)", failures.len());
            ExitCode::FAILURE
        }
    }
}

/// A lint failure: the message, plus a source location when one exists
/// (baseline bookkeeping failures have none).
pub struct Failure {
    pub text: String,
    pub at: Option<(String, usize)>,
}

impl Failure {
    fn bare(text: String) -> Failure {
        Failure { text, at: None }
    }

    fn of(v: &Violation) -> Failure {
        Failure {
            text: format!("{}: {}:{}: {}", v.rule, v.rel, v.line, v.msg),
            at: Some((v.rel.clone(), v.line)),
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("crayfish-lint: {msg}");
    eprintln!(
        "usage: crayfish-lint [--root <repo>] [--json <path>] [--github] \
         [--write-baseline | --self-test]"
    );
    ExitCode::from(2)
}

/// The workspace root: the nearest ancestor of the current directory
/// holding both `Cargo.toml` and `crates/`. `cargo run -p crayfish-lint`
/// starts at the workspace root already.
fn find_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err("not inside the workspace (no Cargo.toml + crates/ found)".into());
        }
    }
}

fn self_test() -> Result<(), Vec<Failure>> {
    let failures = selftest::run();
    if failures.is_empty() {
        println!("crayfish-lint: self-test passed (all seeded violations caught)");
        Ok(())
    } else {
        Err(failures.into_iter().map(Failure::bare).collect())
    }
}

/// One processed finding: the violation plus its suppression state.
pub struct Finding {
    pub v: Violation,
    /// `Some(reason)` when an in-source allow matched.
    pub suppressed: Option<String>,
}

/// Everything one full lint pass produces. Shared by the real scan and
/// `--self-test`, so the self-test exercises the same engine end to end.
pub struct LintOutput {
    /// Every finding, including suppressed ones (for the JSON report).
    pub findings: Vec<Finding>,
    /// Active (unsuppressed) findings of hard rules.
    pub hard: Vec<Violation>,
    /// Active findings of ratcheted rules, keyed `(rule, fingerprint)`.
    pub counts: Counts,
    /// Suppression misuse: missing reason, or matching no finding.
    pub suppression_errors: Vec<Failure>,
    pub project: analysis::Project,
}

/// Run every per-file rule and every interprocedural analysis over a file
/// set, then apply in-source suppressions.
pub fn lint_files(files: &[SourceFile]) -> LintOutput {
    let mut violations: Vec<Violation> = Vec::new();
    for file in files {
        violations.extend(rules::all_rules(file));
    }
    let (project, interproc) = analysis::analyze(files);
    violations.extend(interproc);
    violations.sort_by(|a, b| {
        (&a.rel, a.line, a.rule, &a.fingerprint).cmp(&(&b.rel, b.line, b.rule, &b.fingerprint))
    });

    // Suppressions: each may satisfy many findings (one `allow` above a
    // line with two unwraps covers both), but must satisfy at least one.
    let mut suppression_errors = Vec::new();
    let mut sups: Vec<(String, source::Suppression, bool)> = Vec::new();
    for file in files {
        // The lint's own sources (self-test seeds, the suppression
        // parser, docs) mention the marker without meaning it.
        if file.rel.starts_with("crates/lint/") {
            continue;
        }
        for s in source::suppressions(&file.raw) {
            if s.reason.is_none() {
                suppression_errors.push(Failure {
                    text: format!(
                        "suppression: {}:{}: allow({}) lacks a reason; write \
                         `// crayfish-lint: allow({}) -- <why this is sound>`",
                        file.rel, s.line, s.rule, s.rule
                    ),
                    at: Some((file.rel.clone(), s.line)),
                });
                continue;
            }
            sups.push((file.rel.clone(), s, false));
        }
    }
    let mut findings = Vec::new();
    for v in violations {
        let mut suppressed = None;
        for (rel, s, used) in sups.iter_mut() {
            if *rel == v.rel && s.rule == v.rule && (v.line == s.line || v.line == s.line + 1) {
                *used = true;
                suppressed = s.reason.clone();
                break;
            }
        }
        findings.push(Finding { v, suppressed });
    }
    for (rel, s, used) in &sups {
        if !used {
            suppression_errors.push(Failure {
                text: format!(
                    "suppression: {rel}:{}: allow({}) matches no finding on this or the \
                     next line — remove it",
                    s.line, s.rule
                ),
                at: Some((rel.clone(), s.line)),
            });
        }
    }

    let mut hard = Vec::new();
    let mut counts = Counts::new();
    for f in &findings {
        if f.suppressed.is_some() {
            continue;
        }
        if rules::BASELINED.contains(&f.v.rule) {
            *counts
                .entry((f.v.rule.to_string(), f.v.fingerprint.clone()))
                .or_insert(0) += 1;
        } else {
            hard.push(f.v.clone());
        }
    }
    LintOutput {
        findings,
        hard,
        counts,
        suppression_errors,
        project,
    }
}

fn scan(
    root: &Path,
    write: bool,
    json_path: Option<&Path>,
    github: bool,
) -> Result<(), Vec<Failure>> {
    // Scan src/ trees only: integration tests, benches, and examples may
    // unwrap and read the wall clock.
    let mut paths = Vec::new();
    let mut src_dirs = vec![root.join("src")];
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut crates: Vec<_> = entries.filter_map(|e| e.ok()).map(|e| e.path()).collect();
        crates.sort();
        for krate in crates {
            src_dirs.push(krate.join("src"));
        }
    }
    for dir in src_dirs {
        if let Err(e) = source::collect_rs(&dir, &mut paths) {
            return Err(vec![Failure::bare(format!("walk {}: {e}", dir.display()))]);
        }
    }
    let mut files = Vec::new();
    for path in paths {
        match SourceFile::load(root, path) {
            Ok(f) => files.push(f),
            Err(e) => return Err(vec![Failure::bare(format!("load: {e}"))]),
        }
    }
    let scanned = files.len();
    let out = lint_files(&files);

    if let Some(path) = json_path {
        if let Err(e) = json::write_report(path, &out) {
            return Err(vec![Failure::bare(e)]);
        }
    }
    if github {
        // Annotate every active finding inline on the PR diff: hard
        // failures as errors, ratcheted (baselined) debt as notices so a
        // passing run doesn't render error marks.
        for f in out.findings.iter().filter(|f| f.suppressed.is_none()) {
            let level = if rules::BASELINED.contains(&f.v.rule) {
                "notice"
            } else {
                "error"
            };
            println!(
                "::{level} file={},line={}::{}: {}",
                f.v.rel,
                f.v.line,
                f.v.rule,
                f.v.msg.replace('\n', " ")
            );
        }
    }

    let mut failures: Vec<Failure> = out.hard.iter().map(Failure::of).collect();
    failures.extend(out.suppression_errors);
    if write {
        if let Err(e) = baseline::write(root, &out.counts) {
            failures.push(Failure::bare(e));
            return Err(failures);
        }
        let total: usize = out.counts.values().sum();
        println!(
            "crayfish-lint: baseline written ({total} ratcheted finding(s) across {} entr(ies))",
            out.counts.len()
        );
        if failures.is_empty() {
            return Ok(());
        }
        return Err(failures);
    }
    let base = match baseline::load(root) {
        Ok(b) => b,
        Err(e) => return Err(vec![Failure::bare(e)]),
    };
    failures.extend(
        baseline::compare(&out.counts, &base)
            .into_iter()
            .map(Failure::bare),
    );
    if failures.is_empty() {
        let g = &out.project.graph;
        println!(
            "crayfish-lint: {scanned} files clean (baseline holds {} entries; call graph: \
             {} fns, {} resolved / {} ambiguous / {} unresolved call edges; \
             {} lock-order edges, acyclic)",
            base.len(),
            g.fns.len(),
            g.resolved_edges,
            g.ambiguous_edges,
            g.unresolved_edges,
            out.project.lock_edges.len()
        );
        Ok(())
    } else {
        Err(failures)
    }
}
