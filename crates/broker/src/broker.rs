//! The broker "cluster": topic registry, direct append/read, committed
//! offsets.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use crayfish_sync::RwLock;

use crayfish_sim::NetworkModel;

use crate::error::BrokerError;
use crate::topic::{FetchedRecord, Topic};
use crate::Result;

/// The in-process broker. Shared between all clients via [`Arc`].
///
/// Methods on `Broker` itself are *broker-side* and carry no network cost;
/// the client abstractions ([`crate::Producer`],
/// [`crate::PartitionConsumer`]) apply the [`NetworkModel`] per request, as
/// a remote client would experience it.
#[derive(Debug)]
pub struct Broker {
    topics: RwLock<HashMap<String, Arc<Topic>>>,
    /// Committed offsets: (group, topic, partition) → next offset to read.
    offsets: RwLock<HashMap<(String, String, u32), u64>>,
    network: NetworkModel,
    obs: crayfish_obs::ObsHandle,
    chaos: crayfish_chaos::ChaosHandle,
}

impl Broker {
    /// Create a broker whose clients experience `network` per request.
    pub fn new(network: NetworkModel) -> Arc<Broker> {
        Broker::with_obs(network, crayfish_obs::ObsHandle::disabled())
    }

    /// Like [`Broker::new`], with a live observability recorder. Client
    /// abstractions (producer/consumer) pick the handle up from here, so
    /// enabling obs on the broker instruments every client built on it.
    pub fn with_obs(network: NetworkModel, obs: crayfish_obs::ObsHandle) -> Arc<Broker> {
        Broker::with_parts(network, obs, crayfish_chaos::ChaosHandle::disabled())
    }

    /// Full constructor: observability plus a chaos handle. A broker built
    /// with a live chaos handle honours partition-outage and lost-ack fault
    /// windows, and its clients (producer/consumer) honour stalls; with the
    /// default disabled handle every chaos check is a single branch.
    pub fn with_parts(
        network: NetworkModel,
        obs: crayfish_obs::ObsHandle,
        chaos: crayfish_chaos::ChaosHandle,
    ) -> Arc<Broker> {
        Arc::new(Broker {
            topics: RwLock::new(HashMap::new()),
            offsets: RwLock::new(HashMap::new()),
            network,
            obs,
            chaos,
        })
    }

    /// The observability handle clients of this broker record into.
    pub fn obs(&self) -> &crayfish_obs::ObsHandle {
        &self.obs
    }

    /// The chaos handle clients of this broker consult for fault windows.
    pub fn chaos(&self) -> &crayfish_chaos::ChaosHandle {
        &self.chaos
    }

    /// The network model clients of this broker should apply.
    pub fn network(&self) -> NetworkModel {
        self.network
    }

    /// Create a topic with `partitions` partitions and default retention.
    pub fn create_topic(&self, name: &str, partitions: u32) -> Result<()> {
        self.create_topic_with_retention(name, partitions, crate::topic::DEFAULT_RETENTION_BYTES)
    }

    /// Offset of the earliest retained record of a partition (moves forward
    /// as size-based retention evicts old records).
    pub fn earliest_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        Ok(t.start_offset(p))
    }

    /// Create a topic with an explicit per-partition size-retention cap.
    pub fn create_topic_with_retention(
        &self,
        name: &str,
        partitions: u32,
        retention_bytes: usize,
    ) -> Result<()> {
        if partitions == 0 {
            return Err(BrokerError::UnknownPartition {
                topic: name.to_string(),
                partition: 0,
            });
        }
        let mut topics = self.topics.write();
        if topics.contains_key(name) {
            return Err(BrokerError::TopicExists(name.to_string()));
        }
        topics.insert(
            name.to_string(),
            Arc::new(Topic::with_retention(partitions, retention_bytes)),
        );
        Ok(())
    }

    /// Delete a topic (used by failure-injection tests; consumers see
    /// `UnknownTopic` afterwards).
    pub fn delete_topic(&self, name: &str) -> Result<()> {
        self.topics
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    pub(crate) fn topic(&self, name: &str) -> Result<Arc<Topic>> {
        self.topics
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| BrokerError::UnknownTopic(name.to_string()))
    }

    /// Number of partitions of a topic.
    pub fn partitions(&self, name: &str) -> Result<u32> {
        Ok(self.topic(name)?.partitions.len() as u32)
    }

    /// Broker-side append (no client network cost). Returns the first
    /// assigned offset and the `LogAppendTime` stamp.
    pub fn append(
        &self,
        topic: &str,
        partition: u32,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)> {
        if self.chaos.topic_unavailable(topic) {
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let out = t.append(p, values);
        self.chaos.note_success(crayfish_chaos::Domain::Broker);
        Ok(out)
    }

    /// Idempotent append: like [`append`](Self::append) with a producer id
    /// and the per-partition sequence number of the first record, so a
    /// retried batch whose first attempt actually landed (lost ack) is
    /// deduplicated instead of appended twice. During a network-degrade
    /// fault window the broker may deliberately "lose" the ack of a
    /// successful append and return `Unavailable` — the retry then lands in
    /// the dedup window.
    pub fn append_dedup(
        &self,
        topic: &str,
        partition: u32,
        producer_id: u64,
        first_seq: u64,
        values: Vec<(Bytes, f64)>,
    ) -> Result<(u64, f64)> {
        if self.chaos.topic_unavailable(topic) {
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let (offset, stamp, duplicates) = t.append_dedup(p, producer_id, first_seq, values);
        if duplicates > 0 {
            self.chaos.note_duplicates(duplicates);
            self.obs.counter("duplicates_dropped").add(duplicates);
        }
        if self.chaos.append_ack_lost() {
            // The records are in the log, but the producer never learns:
            // its retry exercises the dedup path above.
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        self.chaos.note_success(crayfish_chaos::Domain::Broker);
        Ok((offset, stamp))
    }

    /// Broker-side read (no client network cost).
    pub fn read(
        &self,
        topic: &str,
        partition: u32,
        offset: u64,
        max_records: usize,
        max_bytes: usize,
    ) -> Result<Vec<FetchedRecord>> {
        if self.chaos.topic_unavailable(topic) {
            return Err(BrokerError::Unavailable {
                topic: topic.to_string(),
                partition,
            });
        }
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        let out = t.read(p, offset, max_records, max_bytes);
        if !out.is_empty() {
            self.chaos.note_success(crayfish_chaos::Domain::Broker);
        }
        Ok(out)
    }

    /// Log-end offset of one partition.
    pub fn end_offset(&self, topic: &str, partition: u32) -> Result<u64> {
        let t = self.topic(topic)?;
        let p = partition as usize;
        if p >= t.partitions.len() {
            return Err(BrokerError::UnknownPartition {
                topic: topic.to_string(),
                partition,
            });
        }
        Ok(t.end_offset(p))
    }

    /// Sum of log-end offsets across all partitions — total records in the
    /// topic.
    pub fn total_records(&self, topic: &str) -> Result<u64> {
        let t = self.topic(topic)?;
        Ok((0..t.partitions.len()).map(|p| t.end_offset(p)).sum())
    }

    /// Commit a consumer group's next-offset for a partition.
    pub fn commit_offset(&self, group: &str, topic: &str, partition: u32, next: u64) {
        self.offsets
            .write()
            .insert((group.to_string(), topic.to_string(), partition), next);
    }

    /// The committed next-offset for a group/partition (0 if none).
    pub fn committed_offset(&self, group: &str, topic: &str, partition: u32) -> u64 {
        self.offsets
            .read()
            .get(&(group.to_string(), topic.to_string(), partition))
            .copied()
            .unwrap_or(0)
    }

    /// Total consumer lag of a group over a topic: log end minus committed,
    /// summed over partitions.
    pub fn group_lag(&self, group: &str, topic: &str) -> Result<u64> {
        let partitions = self.partitions(topic)?;
        let mut lag = 0u64;
        for p in 0..partitions {
            let end = self.end_offset(topic, p)?;
            let committed = self.committed_offset(group, topic, p);
            lag += end.saturating_sub(committed);
        }
        Ok(lag)
    }

    /// Static range assignment of `partitions` to `members` (the paper's
    /// engines assign partitions to parallel tasks this way).
    pub fn range_assignment(partitions: u32, members: usize) -> Vec<Vec<u32>> {
        let mut out = vec![Vec::new(); members.max(1)];
        for p in 0..partitions {
            out[(p as usize) % members.max(1)].push(p);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn broker() -> Arc<Broker> {
        Broker::new(NetworkModel::zero())
    }

    #[test]
    fn create_append_read() {
        let b = broker();
        b.create_topic("in", 4).unwrap();
        assert_eq!(b.partitions("in").unwrap(), 4);
        let (off, ts) = b
            .append("in", 2, vec![(Bytes::from_static(b"hello"), 1.0)])
            .unwrap();
        assert_eq!(off, 0);
        assert!(ts > 0.0);
        let recs = b.read("in", 2, 0, 10, usize::MAX).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(&recs[0].value[..], b"hello");
    }

    #[test]
    fn unknown_topic_and_partition_errors() {
        let b = broker();
        assert!(matches!(
            b.append("nope", 0, vec![]),
            Err(BrokerError::UnknownTopic(_))
        ));
        b.create_topic("t", 2).unwrap();
        assert!(matches!(
            b.append("t", 5, vec![]),
            Err(BrokerError::UnknownPartition { .. })
        ));
        assert!(matches!(
            b.create_topic("t", 2),
            Err(BrokerError::TopicExists(_))
        ));
    }

    #[test]
    fn delete_topic_breaks_clients() {
        let b = broker();
        b.create_topic("t", 1).unwrap();
        b.delete_topic("t").unwrap();
        assert!(b.read("t", 0, 0, 1, 1).is_err());
        assert!(b.delete_topic("t").is_err());
    }

    #[test]
    fn committed_offsets_and_lag() {
        let b = broker();
        b.create_topic("t", 2).unwrap();
        b.append(
            "t",
            0,
            vec![
                (Bytes::from_static(b"a"), 0.0),
                (Bytes::from_static(b"b"), 0.0),
            ],
        )
        .unwrap();
        b.append("t", 1, vec![(Bytes::from_static(b"c"), 0.0)])
            .unwrap();
        assert_eq!(b.group_lag("g", "t").unwrap(), 3);
        b.commit_offset("g", "t", 0, 2);
        assert_eq!(b.group_lag("g", "t").unwrap(), 1);
        assert_eq!(b.committed_offset("g", "t", 0), 2);
        assert_eq!(b.committed_offset("g", "t", 1), 0);
    }

    #[test]
    fn range_assignment_covers_all_partitions() {
        let assign = Broker::range_assignment(32, 3);
        assert_eq!(assign.len(), 3);
        let mut all: Vec<u32> = assign.concat();
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<_>>());
        // Balanced within one.
        let sizes: Vec<usize> = assign.iter().map(|a| a.len()).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn outage_window_makes_topic_unavailable_then_recovers() {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let b = Broker::with_parts(
            NetworkModel::zero(),
            crayfish_obs::ObsHandle::disabled(),
            chaos.clone(),
        );
        b.create_topic("in", 1).unwrap();
        b.create_topic("out", 1).unwrap();
        b.append("in", 0, vec![(Bytes::from_static(b"a"), 0.0)])
            .unwrap();
        chaos.set_topic_outage("in", true);
        assert!(matches!(
            b.append("in", 0, vec![(Bytes::from_static(b"b"), 0.0)]),
            Err(BrokerError::Unavailable { .. })
        ));
        assert!(matches!(
            b.read("in", 0, 0, 10, usize::MAX),
            Err(BrokerError::Unavailable { .. })
        ));
        // Other topics are unaffected.
        b.append("out", 0, vec![(Bytes::from_static(b"x"), 0.0)])
            .unwrap();
        chaos.set_topic_outage("in", false);
        b.append("in", 0, vec![(Bytes::from_static(b"b"), 0.0)])
            .unwrap();
        assert_eq!(b.end_offset("in", 0).unwrap(), 2);
    }

    #[test]
    fn lost_ack_append_lands_and_retry_dedups() {
        let chaos = crayfish_chaos::ChaosHandle::enabled();
        let obs = crayfish_obs::ObsHandle::enabled();
        let b = Broker::with_parts(NetworkModel::zero(), obs.clone(), chaos.clone());
        b.create_topic("t", 1).unwrap();
        // Lose every ack.
        chaos.set_net_degrade(std::time::Duration::ZERO, 0, 1);
        let batch = vec![(Bytes::from_static(b"a"), 0.0)];
        assert!(matches!(
            b.append_dedup("t", 0, 9, 0, batch.clone()),
            Err(BrokerError::Unavailable { .. })
        ));
        // The record actually landed.
        assert_eq!(b.end_offset("t", 0).unwrap(), 1);
        chaos.clear_net_degrade();
        // The producer's retry is recognised as a duplicate.
        b.append_dedup("t", 0, 9, 0, batch).unwrap();
        assert_eq!(b.end_offset("t", 0).unwrap(), 1);
        assert_eq!(chaos.duplicates_dropped(), 1);
        assert_eq!(obs.counter("duplicates_dropped").get(), 1);
    }

    #[test]
    fn total_records_sums_partitions() {
        let b = broker();
        b.create_topic("t", 3).unwrap();
        for p in 0..3 {
            b.append("t", p, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        }
        assert_eq!(b.total_records("t").unwrap(), 3);
    }
}
