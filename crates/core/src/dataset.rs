//! File-backed datasets for the input producer.
//!
//! §3.1 of the paper: the input producer can "(1) generate synthetic input
//! streams according to user-defined specifications or (2) read real
//! datasets". This module implements (2): a simple binary dataset file
//! (a JSON header describing the item shape and count, followed by raw
//! little-endian `f32` items) plus a cyclic reader the producer draws items
//! from.

use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use serde::{Deserialize, Serialize};

use crayfish_tensor::{Shape, Tensor};

use crate::error::CoreError;
use crate::Result;

const MAGIC: &[u8; 8] = b"CRFDATA1";

/// Dataset file header.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetHeader {
    /// Per-item shape (no batch dimension).
    pub shape: Vec<usize>,
    /// Number of items in the file.
    pub count: usize,
}

/// Write a dataset file from per-item tensors. All items must share the
/// dataset's shape.
pub fn write_dataset(path: &Path, shape: &Shape, items: &[Tensor]) -> Result<()> {
    if items.is_empty() {
        return Err(CoreError::Config(
            "dataset must contain at least one item".into(),
        ));
    }
    let header = DatasetHeader {
        shape: shape.dims().to_vec(),
        count: items.len(),
    };
    let header_json = serde_json::to_vec(&header)
        .map_err(|e| CoreError::Codec(format!("dataset header: {e}")))?;
    let file = std::fs::File::create(path)
        .map_err(|e| CoreError::Config(format!("create {}: {e}", path.display())))?;
    let mut w = BufWriter::new(file);
    let io = |e: std::io::Error| CoreError::Config(format!("write {}: {e}", path.display()));
    w.write_all(MAGIC).map_err(io)?;
    w.write_all(&(header_json.len() as u64).to_le_bytes())
        .map_err(io)?;
    w.write_all(&header_json).map_err(io)?;
    for item in items {
        if item.shape() != shape {
            return Err(CoreError::Config(format!(
                "dataset item of shape {} in a {} dataset",
                item.shape(),
                shape
            )));
        }
        for &v in item.data() {
            w.write_all(&v.to_le_bytes()).map_err(io)?;
        }
    }
    w.flush().map_err(io)?;
    Ok(())
}

/// An in-memory dataset loaded from a file, iterated cyclically.
#[derive(Debug, Clone)]
pub struct Dataset {
    shape: Shape,
    /// Flat item data, `count * shape.numel()` values.
    data: Vec<f32>,
    count: usize,
}

impl Dataset {
    /// Load a dataset file.
    pub fn load(path: &Path) -> Result<Dataset> {
        let file = std::fs::File::open(path)
            .map_err(|e| CoreError::Config(format!("open {}: {e}", path.display())))?;
        let mut r = BufReader::new(file);
        let io = |e: std::io::Error| CoreError::Codec(format!("read {}: {e}", path.display()));
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic).map_err(io)?;
        if &magic != MAGIC {
            return Err(CoreError::Codec("not a crayfish dataset file".into()));
        }
        let mut len = [0u8; 8];
        r.read_exact(&mut len).map_err(io)?;
        let hlen = u64::from_le_bytes(len) as usize;
        if hlen > 1 << 20 {
            return Err(CoreError::Codec("oversized dataset header".into()));
        }
        let mut header_json = vec![0u8; hlen];
        r.read_exact(&mut header_json).map_err(io)?;
        let header: DatasetHeader = serde_json::from_slice(&header_json)
            .map_err(|e| CoreError::Codec(format!("dataset header: {e}")))?;
        let shape = Shape::new(header.shape);
        let numel = shape.numel() * header.count;
        let mut raw = Vec::new();
        r.read_to_end(&mut raw).map_err(io)?;
        if raw.len() != numel * 4 {
            return Err(CoreError::Codec(format!(
                "dataset body is {} bytes, expected {}",
                raw.len(),
                numel * 4
            )));
        }
        let data = raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect();
        Ok(Dataset {
            shape,
            data,
            count: header.count,
        })
    }

    /// Per-item shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when the dataset holds no items (never, for loaded files).
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Borrow item `i % len` (cyclic access, as the producer replays the
    /// dataset for the duration of an experiment).
    pub fn item(&self, i: usize) -> &[f32] {
        let idx = i % self.count;
        let n = self.shape.numel();
        &self.data[idx * n..(idx + 1) * n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("crayfish-dataset-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip() {
        let shape = Shape::from([2, 3]);
        let items: Vec<Tensor> = (0..5)
            .map(|i| Tensor::seeded_uniform([2, 3], i, 0.0, 255.0))
            .collect();
        let path = tmp("roundtrip.crfd");
        write_dataset(&path, &shape, &items).unwrap();
        let ds = Dataset::load(&path).unwrap();
        assert_eq!(ds.len(), 5);
        assert_eq!(ds.shape(), &shape);
        for (i, item) in items.iter().enumerate() {
            assert_eq!(ds.item(i), item.data());
        }
        // Cyclic access wraps.
        assert_eq!(ds.item(7), items[2].data());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_mismatched_items_and_empty() {
        let path = tmp("bad.crfd");
        let shape = Shape::from([4]);
        assert!(write_dataset(&path, &shape, &[]).is_err());
        let wrong = vec![Tensor::zeros([5])];
        assert!(write_dataset(&path, &shape, &wrong).is_err());
    }

    #[test]
    fn rejects_corrupt_files() {
        let path = tmp("corrupt.crfd");
        std::fs::write(&path, b"definitely not a dataset").unwrap();
        assert!(Dataset::load(&path).is_err());
        // Truncated body.
        let good = tmp("trunc.crfd");
        write_dataset(&good, &Shape::from([4]), &[Tensor::zeros([4])]).unwrap();
        let mut bytes = std::fs::read(&good).unwrap();
        bytes.truncate(bytes.len() - 4);
        std::fs::write(&good, bytes).unwrap();
        assert!(Dataset::load(&good).is_err());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&good).ok();
    }
}
