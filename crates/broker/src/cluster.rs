//! Cluster topology: broker node ids and the replication configuration a
//! topic's partitions are laid out with.
//!
//! The reproduction keeps the whole "cluster" in one process — nodes are a
//! modelling construct, not OS processes — but the replication protocol
//! between them is real: per-partition replicated logs, ISR tracking, a
//! high watermark, leader-epoch fencing, and deterministic elections (see
//! [`crate::replication`]). Chaos can kill or isolate any node id and the
//! protocol must keep every committed record readable.

use crate::error::BrokerError;
use crate::Result;

/// Identifier of one broker node in the modelled cluster.
pub type BrokerId = u32;

/// Replication configuration for a broker and the topics created on it.
///
/// The default (`brokers: 1, replication_factor: 1, min_insync_replicas: 1`)
/// reproduces the original single-node broker exactly: every partition's
/// ISR is just its leader and the high watermark equals the log end, so
/// nothing changes for callers that never ask for replication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of broker nodes records can be placed on.
    pub brokers: u32,
    /// Replicas (leader included) per partition. Kafka's
    /// `replication.factor`; clamped to `brokers` at validation.
    pub replication_factor: u32,
    /// How many ISR members (leader included) must hold a record before it
    /// is committed. Kafka's `min.insync.replicas` under `acks=all`: with
    /// fewer in-sync replicas, appends fail with
    /// [`BrokerError::NotEnoughReplicas`] instead of risking loss.
    pub min_insync_replicas: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            brokers: 1,
            replication_factor: 1,
            min_insync_replicas: 1,
        }
    }
}

impl ClusterConfig {
    /// The fault-tolerant layout the chaos drills run on: 3 nodes,
    /// replication factor 3, `min.insync.replicas = 2` — the classic Kafka
    /// production setting that survives one dead node with zero loss.
    pub fn replicated() -> Self {
        ClusterConfig {
            brokers: 3,
            replication_factor: 3,
            min_insync_replicas: 2,
        }
    }

    /// Validate and normalise: at least one broker, replication factor in
    /// `1..=brokers`, `min_insync_replicas` in `1..=replication_factor`.
    pub fn validated(self) -> Result<ClusterConfig> {
        if self.brokers == 0 || self.replication_factor == 0 || self.min_insync_replicas == 0 {
            return Err(BrokerError::InvalidCluster(format!(
                "cluster sizes must be non-zero: {self:?}"
            )));
        }
        if self.replication_factor > self.brokers {
            return Err(BrokerError::InvalidCluster(format!(
                "replication factor {} exceeds broker count {}",
                self.replication_factor, self.brokers
            )));
        }
        if self.min_insync_replicas > self.replication_factor {
            return Err(BrokerError::InvalidCluster(format!(
                "min.insync.replicas {} exceeds replication factor {}",
                self.min_insync_replicas, self.replication_factor
            )));
        }
        Ok(self)
    }

    /// Replica placement for one partition: `replication_factor` distinct
    /// nodes starting at `partition % brokers`, leader first. This is
    /// Kafka's default round-robin assignment — consecutive partitions lead
    /// on consecutive nodes, so load (and the blast radius of one dead
    /// node) spreads across the cluster.
    pub fn replica_set(&self, partition: u32) -> Vec<BrokerId> {
        (0..self.replication_factor)
            .map(|k| (partition + k) % self.brokers)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_single_node_layout() {
        let c = ClusterConfig::default().validated().unwrap();
        assert_eq!(
            (c.brokers, c.replication_factor, c.min_insync_replicas),
            (1, 1, 1)
        );
        assert_eq!(c.replica_set(0), vec![0]);
        assert_eq!(c.replica_set(7), vec![0]);
    }

    #[test]
    fn replicated_layout_spreads_leaders() {
        let c = ClusterConfig::replicated().validated().unwrap();
        assert_eq!(c.replica_set(0), vec![0, 1, 2]);
        assert_eq!(c.replica_set(1), vec![1, 2, 0]);
        assert_eq!(c.replica_set(2), vec![2, 0, 1]);
        assert_eq!(c.replica_set(3), vec![0, 1, 2]);
    }

    #[test]
    fn validation_rejects_impossible_layouts() {
        assert!(ClusterConfig {
            brokers: 2,
            replication_factor: 3,
            min_insync_replicas: 1
        }
        .validated()
        .is_err());
        assert!(ClusterConfig {
            brokers: 3,
            replication_factor: 2,
            min_insync_replicas: 3
        }
        .validated()
        .is_err());
        assert!(ClusterConfig {
            brokers: 0,
            replication_factor: 1,
            min_insync_replicas: 1
        }
        .validated()
        .is_err());
    }
}
