//! Loom models for the flink exchange's counted buffer channel. Compiled
//! only under `RUSTFLAGS="--cfg loom"`. The channel is hand-built on the
//! `crayfish-sync` shim precisely so these models can exhaustively check
//! its three blocking handshakes: handoff under backpressure, end-of-stream
//! on sender drop, and sender unblocking on receiver drop.
#![cfg(loom)]

use std::time::Duration;

use bytes::Bytes;
use crayfish_flink::exchange::{bounded, channels, recv_buffer, EndOfStream, ExchangeSender};
use crayfish_sync::{model, thread};

/// Capacity-1 handoff: the second send must block until the first buffer is
/// drained, and every buffer arrives exactly once, then disconnect.
#[test]
fn counted_buffer_hands_off_every_buffer_in_order() {
    model(|| {
        let (tx, rx) = bounded::<u32>(1);
        let t = thread::spawn(move || {
            tx.send(1).unwrap();
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        t.join().unwrap();
        assert!(rx.recv().is_err(), "all senders gone must read as EOS");
    });
}

/// The downstream task loop: drain buffers until end-of-stream. Under loom
/// a timeout never fires, so termination proves the sender-drop
/// notification cannot be lost.
#[test]
fn receiver_observes_end_of_stream_after_upstream_terminates() {
    model(|| {
        let (txs, rxs) = channels(1, 1);
        let mut sender = ExchangeSender::new(txs, 1, Duration::ZERO);
        let t = thread::spawn(move || {
            sender.push(Bytes::from_static(b"a")).unwrap();
        });
        let mut records = 0;
        loop {
            match recv_buffer(&rxs[0], Duration::from_secs(3600)) {
                Ok(Some(buf)) => records += buf.len(),
                Ok(None) => unreachable!("loom condvars never time out"),
                Err(EndOfStream) => break,
            }
        }
        assert_eq!(records, 1);
        t.join().unwrap();
    });
}

/// A sender blocked on backpressure must observe the receiver going away
/// instead of waiting forever for queue space.
#[test]
fn dropping_the_receiver_unblocks_a_backpressured_sender() {
    model(|| {
        let (tx, rx) = bounded::<u8>(1);
        tx.send(0).unwrap();
        let t = thread::spawn(move || tx.send(1));
        drop(rx);
        assert!(
            t.join().unwrap().is_err(),
            "send into a receiver-less channel must fail, not hang"
        );
    });
}
