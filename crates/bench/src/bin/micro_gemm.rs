//! `micro_gemm` — the kernel-layer ablation: how much each rung of the
//! packed GEMM rewrite buys over the seed kernel, per layer shape.
//!
//! Variants, in the order the optimisations were stacked:
//!
//! * `naive`        — `matmul_naive`, the i-j-p oracle (allocates its output).
//! * `seed_ipj`     — `gemm_ipj`, the seed kernel this PR replaced (i-p-j
//!   with a row broadcast; already ~memory-friendly).
//! * `tiled`        — `gemm_tiled_unpacked`, KC/MC cache blocking only.
//! * `tiled_packed` — `gemm_st`, the full packed path (panel packing +
//!   MR×NR register-tiled microkernel), forced single-thread.
//! * `prepacked_weights` — `gemm_prepacked_b` with `B` packed once outside
//!   the loop: the executor steady state, where `Dense`/`Conv` weights are
//!   packed at plan-compile time and only the activations pack per call.
//! * `tiled_packed_mt2` / `mt4` — the packed path on a persistent worker
//!   pool with 2 / 4 participants.
//! * `q8_prepacked`  — `gemm_prepacked_qb`: weights per-channel int8 at
//!   pack time, activations quantized per call, i8×i8→i32 microkernel with
//!   dequant-on-store. Eighth the weight bytes of f32.
//! * `f16_prepacked` — `gemm_prepacked_b16`: f16 weight storage expanded to
//!   f32 panels per block, f32 arithmetic. Half the weight bytes.
//!
//! Shapes cover dense cubes plus the GEMMs behind the paper's two models:
//! ResNet50 conv layers after im2col (stem, layer2, layer4, the final FC)
//! and the FFNN's three dense layers at batch 128.
//!
//! ```sh
//! cargo run --release -p crayfish-bench --bin micro_gemm            # full
//! cargo run --release -p crayfish-bench --bin micro_gemm -- --quick # CI
//! ```
//!
//! Writes `bench_results/micro_gemm.json` and prints the table. Timing
//! goes through `crayfish_sim::Stopwatch` (the repo's clock authority).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::path::Path;

use crayfish_sim::Stopwatch;
use crayfish_tensor::kernels::gemm::{
    gemm_ipj, gemm_prepacked_b, gemm_prepacked_b16, gemm_prepacked_qb, gemm_st,
    gemm_tiled_unpacked, gemm_with_pool, matmul_naive,
};
use crayfish_tensor::{GemmScratch, PackedB, PackedB16, QuantizedB, Tensor, ThreadPool};

struct Shape {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

const SHAPES: &[Shape] = &[
    Shape {
        label: "cube64",
        m: 64,
        k: 64,
        n: 64,
    },
    Shape {
        label: "cube256",
        m: 256,
        k: 256,
        n: 256,
    },
    Shape {
        label: "cube512",
        m: 512,
        k: 512,
        n: 512,
    },
    Shape {
        label: "cube1024",
        m: 1024,
        k: 1024,
        n: 1024,
    },
    // ResNet50 conv layers as im2col GEMMs: out_c × (in_c·kh·kw) × (oh·ow).
    Shape {
        label: "resnet_stem_7x7",
        m: 64,
        k: 147,
        n: 12544,
    },
    Shape {
        label: "resnet_l2_3x3",
        m: 128,
        k: 1152,
        n: 784,
    },
    Shape {
        label: "resnet_l4_3x3",
        m: 512,
        k: 4608,
        n: 49,
    },
    Shape {
        label: "resnet_fc",
        m: 1,
        k: 2048,
        n: 1000,
    },
    // FFNN dense layers at batch 128: batch × in_features × out_features.
    Shape {
        label: "ffnn_l1_b128",
        m: 128,
        k: 784,
        n: 32,
    },
    Shape {
        label: "ffnn_l2_b128",
        m: 128,
        k: 32,
        n: 32,
    },
    Shape {
        label: "ffnn_l3_b128",
        m: 128,
        k: 32,
        n: 10,
    },
];

/// Quick mode (CI): small shapes only, short windows.
const QUICK_SHAPES: &[&str] = &["cube64", "cube256", "resnet_l4_3x3", "ffnn_l1_b128"];

struct Measured {
    variant: &'static str,
    ms: f64,
    gflops: f64,
    max_abs_err: f64,
}

/// Time `run` adaptively: one warmup, then enough reps to fill the
/// window, split into batches; report the *minimum* batch mean. The
/// minimum is the standard low-noise estimator for microbenchmarks — on a
/// shared host it discards the batches a noisy neighbour stole cycles
/// from, and it is applied identically to every variant.
fn time_variant(window_secs: f64, mut run: impl FnMut()) -> f64 {
    let warm = Stopwatch::start();
    run();
    let warm_ms = warm.elapsed_millis().max(1e-3);
    let reps = ((window_secs * 1e3 / warm_ms).ceil() as usize).clamp(1, 200);
    let batches = reps.min(4);
    let per_batch = reps.div_ceil(batches);
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let sw = Stopwatch::start();
        for _ in 0..per_batch {
            run();
        }
        best = best.min(sw.elapsed_millis() / per_batch as f64);
    }
    best
}

fn max_abs_err(got: &[f32], want: &[f32]) -> f64 {
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() as f64)
        .fold(0.0, f64::max)
}

fn json_escape_free(s: &str) -> &str {
    // Labels and variant names are ASCII identifiers; assert rather than escape.
    assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    s
}

/// The checked-out git revision, read straight from `.git` (no `git`
/// subprocess): `HEAD` either holds a hash or points at a ref file.
fn git_revision() -> String {
    let find_git = || {
        let mut dir = std::env::current_dir().ok()?;
        loop {
            let git = dir.join(".git");
            if git.is_dir() {
                return Some(git);
            }
            if !dir.pop() {
                return None;
            }
        }
    };
    let Some(git) = find_git() else {
        return "unknown".into();
    };
    let Ok(head) = std::fs::read_to_string(git.join("HEAD")) else {
        return "unknown".into();
    };
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        if let Ok(hash) = std::fs::read_to_string(git.join(refname)) {
            return hash.trim().to_string();
        }
        // Packed refs: scan for the ref name.
        if let Ok(packed) = std::fs::read_to_string(git.join("packed-refs")) {
            for line in packed.lines() {
                if let Some(hash) = line.strip_suffix(refname) {
                    return hash.trim().to_string();
                }
            }
        }
        return "unknown".into();
    }
    head.to_string()
}

/// `rustc -V`, or "unknown" when the toolchain is not on PATH.
fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("-V")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|v| v.trim().to_string())
        .unwrap_or_else(|| "unknown".into())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let window = if quick { 0.05 } else { 0.5 };
    let threads_available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let crayfish_threads = std::env::var("CRAYFISH_THREADS").unwrap_or_else(|_| "unset".into());
    let git_rev = git_revision();
    let rustc = rustc_version();
    let cpu = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|v| v.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());
    let pool2 = ThreadPool::new(2);
    let pool4 = ThreadPool::new(4);

    let mut rows = Vec::new();
    for shape in SHAPES {
        if quick && !QUICK_SHAPES.contains(&shape.label) {
            continue;
        }
        let &Shape { label, m, k, n } = shape;
        let flops = 2.0 * (m * k * n) as f64;
        let a = Tensor::seeded_uniform([m, k], 11, -1.0, 1.0);
        let b = Tensor::seeded_uniform([k, n], 13, -1.0, 1.0);
        let (a, b) = (a.data(), b.data());
        let oracle = matmul_naive(a, b, m, k, n);
        let mut c = vec![0.0f32; m * n];
        let mut scratch = GemmScratch::new();

        let mut measured: Vec<Measured> = Vec::new();
        let mut push = |variant, ms: f64, err: f64| {
            let gflops = flops / (ms * 1e6);
            measured.push(Measured {
                variant,
                ms,
                gflops,
                max_abs_err: err,
            });
        };

        // The naive oracle allocates its output; that is part of what the
        // rewrite removes, so it is timed as-is.
        let ms = time_variant(window, || {
            std::hint::black_box(matmul_naive(a, b, m, k, n));
        });
        push("naive", ms, 0.0);

        c.fill(0.0);
        gemm_ipj(a, b, &mut c, m, k, n);
        let err = max_abs_err(&c, &oracle);
        let ms = time_variant(window, || {
            c.fill(0.0);
            gemm_ipj(a, b, std::hint::black_box(&mut c), m, k, n);
        });
        push("seed_ipj", ms, err);

        c.fill(0.0);
        gemm_tiled_unpacked(a, b, &mut c, m, k, n);
        let err = max_abs_err(&c, &oracle);
        let ms = time_variant(window, || {
            c.fill(0.0);
            gemm_tiled_unpacked(a, b, std::hint::black_box(&mut c), m, k, n);
        });
        push("tiled", ms, err);

        c.fill(0.0);
        gemm_st(a, b, &mut c, m, k, n, &mut scratch);
        let err = max_abs_err(&c, &oracle);
        let ms = time_variant(window, || {
            c.fill(0.0);
            gemm_st(a, b, std::hint::black_box(&mut c), m, k, n, &mut scratch);
        });
        push("tiled_packed", ms, err);

        let pb = PackedB::pack(b, k, n);
        c.fill(0.0);
        gemm_prepacked_b(a, &pb, &mut c, m, &mut scratch);
        let err = max_abs_err(&c, &oracle);
        let ms = time_variant(window, || {
            c.fill(0.0);
            gemm_prepacked_b(a, std::hint::black_box(&pb), &mut c, m, &mut scratch);
        });
        push("prepacked_weights", ms, err);

        let qb = QuantizedB::from_f32(b, k, n);
        c.fill(0.0);
        gemm_prepacked_qb(a, &qb, &mut c, m, &mut scratch);
        let err = max_abs_err(&c, &oracle);
        let ms = time_variant(window, || {
            c.fill(0.0);
            gemm_prepacked_qb(a, std::hint::black_box(&qb), &mut c, m, &mut scratch);
        });
        push("q8_prepacked", ms, err);

        let pb16 = PackedB16::pack(b, k, n);
        c.fill(0.0);
        gemm_prepacked_b16(a, &pb16, &mut c, m, &mut scratch);
        let err = max_abs_err(&c, &oracle);
        let ms = time_variant(window, || {
            c.fill(0.0);
            gemm_prepacked_b16(a, std::hint::black_box(&pb16), &mut c, m, &mut scratch);
        });
        push("f16_prepacked", ms, err);

        for (variant, pool) in [("tiled_packed_mt2", &pool2), ("tiled_packed_mt4", &pool4)] {
            c.fill(0.0);
            gemm_with_pool(a, b, &mut c, m, k, n, &mut scratch, pool);
            let err = max_abs_err(&c, &oracle);
            let ms = time_variant(window, || {
                c.fill(0.0);
                gemm_with_pool(
                    a,
                    b,
                    std::hint::black_box(&mut c),
                    m,
                    k,
                    n,
                    &mut scratch,
                    pool,
                );
            });
            push(variant, ms, err);
        }

        println!("{label} ({m}x{k}x{n}):");
        let naive_ms = measured[0].ms;
        let seed_ms = measured[1].ms;
        for v in &measured {
            println!(
                "  {:<18} {:>9.3} ms  {:>7.2} GFLOP/s  {:>6.2}x vs naive  {:>6.2}x vs seed  err {:.2e}",
                v.variant,
                v.ms,
                v.gflops,
                naive_ms / v.ms,
                seed_ms / v.ms,
                v.max_abs_err
            );
        }
        rows.push((shape, measured));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"bench\": \"micro_gemm\",\n  \"quick\": {quick},\n  \"host\": {{\n    \"cpu\": {:?},\n    \"threads_available\": {threads_available},\n    \"crayfish_threads\": {:?},\n    \"git_revision\": {:?},\n    \"rustc\": {:?},\n    \"note\": \"timings are best-of-batches means; mt variants share one core when threads_available < pool size, so their speedups reflect pool overhead, not scaling\"\n  }},",
        cpu, crayfish_threads, git_rev, rustc
    );
    json.push_str("  \"results\": [\n");
    for (i, (shape, measured)) in rows.iter().enumerate() {
        let &Shape { label, m, k, n } = *shape;
        let _ = writeln!(
            json,
            "    {{\n      \"shape\": \"{}\", \"m\": {m}, \"k\": {k}, \"n\": {n},",
            json_escape_free(label)
        );
        json.push_str("      \"variants\": {\n");
        let naive_ms = measured[0].ms;
        let seed_ms = measured[1].ms;
        for (j, v) in measured.iter().enumerate() {
            let comma = if j + 1 == measured.len() { "" } else { "," };
            let _ = writeln!(
                json,
                "        \"{}\": {{ \"ms\": {:.4}, \"gflops\": {:.3}, \"speedup_vs_naive\": {:.3}, \"speedup_vs_seed\": {:.3}, \"max_abs_err\": {:.3e} }}{comma}",
                json_escape_free(v.variant),
                v.ms,
                v.gflops,
                naive_ms / v.ms,
                seed_ms / v.ms,
                v.max_abs_err
            );
        }
        json.push_str("      }\n");
        let comma = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(json, "    }}{comma}");
    }
    json.push_str("  ]\n}\n");

    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench_results");
    let path = dir.join("micro_gemm.json");
    if quick {
        // CI smoke run: print, but never clobber the committed full run.
        println!("--quick: skipping write of {}", path.display());
        return;
    }
    std::fs::create_dir_all(&dir).expect("create bench_results/");
    std::fs::write(&path, json).expect("write micro_gemm.json");
    println!("wrote {}", path.display());
}
