//! The Flink-style job: topology construction and task threads.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crayfish_broker::{Broker, PartitionConsumer, Producer, ProducerConfig};
use crayfish_core::chaos::{supervise, RetryPolicy, SupervisorConfig, WorkerExit};
use crayfish_core::scoring::{score_payload_obs, Scorer};
use crayfish_core::{CoreError, DataProcessor, ProcessorContext, Result, RunningJob};
use crayfish_sim::{calibration, Cost};

use crate::exchange::{channels, recv_buffer, ExchangeSender};

/// Explicit operator-level parallelism (`flink[source-N-sink]`, Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OperatorParallelism {
    /// Source task count (the paper matches it to the partition count, 32).
    pub source: usize,
    /// Sink task count.
    pub sink: usize,
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct FlinkOptions {
    /// Chain source → scoring → sink into one task (Flink's default). The
    /// paper's `flink[N-N-N]` runs chained; `flink[32-N-32]` disables
    /// chaining.
    pub chaining: bool,
    /// Source/sink parallelism when unchained; scoring always runs at `mp`.
    /// `None` uses `mp` for all three operators.
    pub operator_parallelism: Option<OperatorParallelism>,
    /// Network-buffer size between unchained operators.
    pub buffer_bytes: usize,
    /// Buffer timeout (Flink 1.13 default: 100 ms).
    pub buffer_timeout: Duration,
    /// Buffers in flight per exchange channel before backpressure.
    pub channel_capacity: usize,
    /// Calibrated per-record framework cost of the JVM task chain (see
    /// [`calibration::RECORD_OVERHEAD_FLINK`]); ablations set it to
    /// [`Cost::ZERO`] to measure the bare Rust substrate.
    pub record_overhead: Cost,
    /// Asynchronous-I/O capacity of the scoring operator (Flink's
    /// `AsyncDataStream`, which the paper deliberately did *not* use for
    /// fairness, §4.3). `0` keeps scoring calls blocking; `k > 0` lets each
    /// chained subtask keep up to `k` scoring calls in flight — the main
    /// lever real deployments have against external-serving round trips.
    pub async_io: usize,
}

impl Default for FlinkOptions {
    fn default() -> Self {
        FlinkOptions {
            chaining: true,
            operator_parallelism: None,
            buffer_bytes: 32 * 1024,
            buffer_timeout: Duration::from_millis(100),
            channel_capacity: 8,
            record_overhead: calibration::RECORD_OVERHEAD_FLINK,
            async_io: 0,
        }
    }
}

impl FlinkOptions {
    /// The paper's `flink[32-N-32]` configuration: operator-level
    /// parallelism with chaining disabled.
    pub fn operator_level(source: usize, sink: usize) -> FlinkOptions {
        FlinkOptions {
            chaining: false,
            operator_parallelism: Some(OperatorParallelism { source, sink }),
            ..Default::default()
        }
    }
}

/// The Flink-style `DataProcessor`.
#[derive(Debug, Default, Clone, Copy)]
pub struct FlinkProcessor {
    /// Engine options.
    pub options: FlinkOptions,
}

impl FlinkProcessor {
    /// Engine with default (chained) options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine with explicit options.
    pub fn with_options(options: FlinkOptions) -> Self {
        FlinkProcessor { options }
    }
}

struct FlinkJob {
    stop: Arc<AtomicBool>,
    /// Threads in upstream-to-downstream order; joined in that order so
    /// exchanges drain before downstream tasks observe disconnection.
    threads: Vec<JoinHandle<()>>,
}

impl RunningJob for FlinkJob {
    fn stop(mut self: Box<Self>) {
        self.stop.store(true, Ordering::SeqCst);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl DataProcessor for FlinkProcessor {
    fn name(&self) -> &'static str {
        "flink"
    }

    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
        ctx.validate()?;
        if self.options.async_io > 0 {
            start_async_chained(&ctx, self.options)
        } else if self.options.chaining {
            start_chained(&ctx, self.options)
        } else {
            start_unchained(&ctx, self.options)
        }
    }
}

/// Chained topology with asynchronous scoring I/O: each of the `mp`
/// subtasks keeps up to `async_io` scoring calls in flight on a pool of
/// async workers, so a slow external server no longer serialises the chain.
fn start_async_chained(
    ctx: &ProcessorContext,
    options: FlinkOptions,
) -> Result<Box<dyn RunningJob>> {
    use crossbeam::channel::bounded;

    let stop = Arc::new(AtomicBool::new(false));
    let partitions = ctx.broker.partitions(&ctx.input_topic)?;
    let assignment = Broker::range_assignment(partitions, ctx.mp);
    let capacity = options.async_io.max(1);
    let mut threads = Vec::new();
    for (i, assigned) in assignment.into_iter().enumerate() {
        // The bounded queue is the async operator's in-flight capacity:
        // the subtask blocks once `capacity` requests are outstanding.
        let (work_tx, work_rx) = bounded::<bytes::Bytes>(capacity);
        // Async scoring workers (Flink runs the callbacks on a pool). Once
        // a record leaves the source's commit scope it must not be dropped,
        // so transient scoring failures are retried in place.
        for w in 0..capacity {
            let rx = work_rx.clone();
            let mut scorer = ctx.scorer.build()?;
            let mut producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let obs = ctx.obs().clone();
            threads.push(spawn_task(format!("flink-async-{i}-{w}"), move || {
                let batches_scored = obs.counter("batches_scored");
                let records_out = obs.counter("records_out");
                let score_errors = obs.counter("score_errors");
                let retries = obs.counter("retries");
                let retry = RetryPolicy::patient();
                while let Ok(rec) = rx.recv() {
                    let outcome = retry.run(
                        CoreError::is_transient,
                        |_| retries.inc(),
                        || score_payload_obs(scorer.as_mut(), &rec, &obs),
                    );
                    match outcome {
                        Ok(out) => {
                            batches_scored.inc();
                            let span = obs.timer(crayfish_core::Stage::Emit);
                            let sent = producer.send(None, out);
                            span.stop();
                            if sent.is_err() {
                                return;
                            }
                            records_out.inc();
                        }
                        Err(_) => score_errors.inc(),
                    }
                }
            })?);
        }
        drop(work_rx);
        // The chain itself: source + record overhead + async dispatch.
        // Inserted at index `i` so all chain threads precede all worker
        // threads in the join order: stopping joins the chains first, their
        // `work_tx` drops, and the workers exit on disconnect. Supervised:
        // the exchange survives across incarnations, only the consumer is
        // rebuilt (resuming from committed offsets).
        let consumer = PartitionConsumer::new(
            ctx.broker.clone(),
            &ctx.input_topic,
            &ctx.group,
            assigned.clone(),
        )?;
        let mut slot = Some(consumer);
        let flag = stop.clone();
        let obs = ctx.obs().clone();
        let chaos = ctx.chaos().clone();
        let broker = ctx.broker.clone();
        let input_topic = ctx.input_topic.clone();
        let group = ctx.group.clone();
        threads.insert(
            i,
            supervise(
                format!("flink-chain-async-{i}"),
                stop.clone(),
                obs.clone(),
                chaos.clone(),
                SupervisorConfig::default(),
                move |_incarnation| {
                    let mut consumer = match slot.take() {
                        Some(c) => c,
                        None => match PartitionConsumer::new(
                            broker.clone(),
                            &input_topic,
                            &group,
                            assigned.clone(),
                        ) {
                            Ok(c) => c,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("rebuild consumer: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        },
                    };
                    while !flag.load(Ordering::SeqCst) {
                        if chaos.take_worker_crash() {
                            return WorkerExit::Failed("injected worker crash".into());
                        }
                        let records = match consumer.poll(Duration::from_millis(50)) {
                            Ok(r) => r,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("poll: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        };
                        for rec in records {
                            let span = obs.timer(crayfish_core::Stage::Ingest);
                            options.record_overhead.spend(rec.value.len());
                            span.stop();
                            if work_tx.send(rec.value).is_err() {
                                return WorkerExit::Stopped;
                            }
                        }
                        consumer.commit();
                    }
                    WorkerExit::Stopped
                },
            ),
        );
    }
    Ok(Box::new(FlinkJob { stop, threads }))
}

/// Chained topology: `mp` subtasks each running the whole pipeline. Each
/// subtask is supervised: a transient fabric failure or an injected crash
/// ends the incarnation *before* the offset commit, and the restarted
/// incarnation rebuilds its consumer/producer/scorer and resumes from the
/// committed offsets (at-least-once).
fn start_chained(ctx: &ProcessorContext, options: FlinkOptions) -> Result<Box<dyn RunningJob>> {
    let stop = Arc::new(AtomicBool::new(false));
    let partitions = ctx.broker.partitions(&ctx.input_topic)?;
    let assignment = Broker::range_assignment(partitions, ctx.mp);
    let mut threads = Vec::with_capacity(ctx.mp);
    for (i, assigned) in assignment.into_iter().enumerate() {
        // Built eagerly so startup errors surface from start().
        let consumer = PartitionConsumer::new(
            ctx.broker.clone(),
            &ctx.input_topic,
            &ctx.group,
            assigned.clone(),
        )?;
        let producer = Producer::new(
            ctx.broker.clone(),
            &ctx.output_topic,
            ProducerConfig::default(),
        )?;
        let scorer = ctx.scorer.build()?;
        let mut parts: Option<(PartitionConsumer, Producer, Box<dyn Scorer>)> =
            Some((consumer, producer, scorer));

        let flag = stop.clone();
        let obs = ctx.obs().clone();
        let chaos = ctx.chaos().clone();
        let broker = ctx.broker.clone();
        let input_topic = ctx.input_topic.clone();
        let output_topic = ctx.output_topic.clone();
        let group = ctx.group.clone();
        let spec = ctx.scorer.clone();
        let batches_scored = obs.counter("batches_scored");
        let records_out = obs.counter("records_out");
        let score_errors = obs.counter("score_errors");
        threads.push(supervise(
            format!("flink-chain-{i}"),
            stop.clone(),
            obs.clone(),
            chaos.clone(),
            SupervisorConfig::default(),
            move |_incarnation| {
                let (mut consumer, mut producer, mut scorer) = match parts.take() {
                    Some(built) => built,
                    None => {
                        let consumer = match PartitionConsumer::new(
                            broker.clone(),
                            &input_topic,
                            &group,
                            assigned.clone(),
                        ) {
                            Ok(c) => c,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("rebuild consumer: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        };
                        let producer = match Producer::new(
                            broker.clone(),
                            &output_topic,
                            ProducerConfig::default(),
                        ) {
                            Ok(p) => p,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("rebuild producer: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        };
                        let scorer = match spec.build() {
                            Ok(s) => s,
                            Err(e) if e.is_transient() => {
                                return WorkerExit::Failed(format!("rebuild scorer: {e}"))
                            }
                            Err(_) => return WorkerExit::Stopped,
                        };
                        (consumer, producer, scorer)
                    }
                };
                while !flag.load(Ordering::SeqCst) {
                    if chaos.take_worker_crash() {
                        return WorkerExit::Failed("injected worker crash".into());
                    }
                    let records = match consumer.poll(Duration::from_millis(50)) {
                        Ok(r) => r,
                        Err(e) if e.is_transient() => {
                            return WorkerExit::Failed(format!("poll: {e}"))
                        }
                        Err(_) => return WorkerExit::Stopped,
                    };
                    for rec in records {
                        // JVM task-chain framework cost per record.
                        let span = obs.timer(crayfish_core::Stage::Ingest);
                        options.record_overhead.spend(rec.value.len());
                        span.stop();
                        match score_payload_obs(scorer.as_mut(), &rec.value, &obs) {
                            Ok(out) => {
                                batches_scored.inc();
                                let span = obs.timer(crayfish_core::Stage::Emit);
                                let sent = producer.send(None, out);
                                span.stop();
                                if sent.is_err() {
                                    return WorkerExit::Stopped;
                                }
                                records_out.inc();
                            }
                            // Fail without committing: the restart
                            // refetches and rescores this batch.
                            Err(e) if e.is_transient() => {
                                score_errors.inc();
                                return WorkerExit::Failed(format!("score: {e}"));
                            }
                            Err(_) => score_errors.inc(),
                        }
                    }
                    // Checkpoint-style offset commit after each fetch.
                    consumer.commit();
                }
                WorkerExit::Stopped
            },
        ));
    }
    Ok(Box::new(FlinkJob { stop, threads }))
}

/// Unchained topology: source tasks → exchange → scoring tasks → exchange →
/// sink tasks.
fn start_unchained(ctx: &ProcessorContext, options: FlinkOptions) -> Result<Box<dyn RunningJob>> {
    let stop = Arc::new(AtomicBool::new(false));
    let partitions = ctx.broker.partitions(&ctx.input_topic)?;
    let op = options.operator_parallelism.unwrap_or(OperatorParallelism {
        source: ctx.mp,
        sink: ctx.mp,
    });
    let sources = op.source.max(1);
    let sinks = op.sink.max(1);
    let scorers = ctx.mp;

    let (score_txs, score_rxs) = channels(scorers, options.channel_capacity);
    let (sink_txs, sink_rxs) = channels(sinks, options.channel_capacity);

    let mut threads = Vec::new();

    // The chain's framework cost splits across the now-independent
    // operators (see `calibration::FLINK_SOURCE_SHARE` and friends).
    let source_cost = options
        .record_overhead
        .scaled(calibration::FLINK_SOURCE_SHARE);
    let scoring_cost = options
        .record_overhead
        .scaled(calibration::FLINK_SCORING_SHARE);
    let sink_cost = options
        .record_overhead
        .scaled(calibration::FLINK_SINK_SHARE);

    // Source tasks. Supervised: the exchange sender survives across
    // incarnations, only the consumer is rebuilt (resuming from the
    // committed offsets).
    let assignment = Broker::range_assignment(partitions, sources);
    for (i, assigned) in assignment.into_iter().enumerate() {
        let consumer = PartitionConsumer::new(
            ctx.broker.clone(),
            &ctx.input_topic,
            &ctx.group,
            assigned.clone(),
        )?;
        let mut slot = Some(consumer);
        let mut out = ExchangeSender::new(
            score_txs.clone(),
            options.buffer_bytes,
            options.buffer_timeout,
        );
        let flag = stop.clone();
        let obs = ctx.obs().clone();
        let chaos = ctx.chaos().clone();
        let broker = ctx.broker.clone();
        let input_topic = ctx.input_topic.clone();
        let group = ctx.group.clone();
        threads.push(supervise(
            format!("flink-source-{i}"),
            stop.clone(),
            obs.clone(),
            chaos.clone(),
            SupervisorConfig::default(),
            move |_incarnation| {
                let mut consumer = match slot.take() {
                    Some(c) => c,
                    None => match PartitionConsumer::new(
                        broker.clone(),
                        &input_topic,
                        &group,
                        assigned.clone(),
                    ) {
                        Ok(c) => c,
                        Err(e) if e.is_transient() => {
                            return WorkerExit::Failed(format!("rebuild consumer: {e}"))
                        }
                        Err(_) => return WorkerExit::Stopped,
                    },
                };
                while !flag.load(Ordering::SeqCst) {
                    if chaos.take_worker_crash() {
                        return WorkerExit::Failed("injected worker crash".into());
                    }
                    let records = match consumer.poll(Duration::from_millis(10)) {
                        Ok(r) => r,
                        Err(e) if e.is_transient() => {
                            return WorkerExit::Failed(format!("poll: {e}"))
                        }
                        Err(_) => return WorkerExit::Stopped,
                    };
                    for rec in records {
                        let span = obs.timer(crayfish_core::Stage::Ingest);
                        source_cost.spend(rec.value.len());
                        span.stop();
                        if out.push(rec.value).is_err() {
                            return WorkerExit::Stopped;
                        }
                    }
                    consumer.commit();
                    if out.maybe_flush().is_err() {
                        return WorkerExit::Stopped;
                    }
                }
                let _ = out.flush();
                WorkerExit::Stopped
            },
        ));
    }
    drop(score_txs);

    // Scoring tasks.
    for (i, rx) in score_rxs.into_iter().enumerate() {
        let mut scorer = ctx.scorer.build()?;
        let mut out = ExchangeSender::new(
            sink_txs.clone(),
            options.buffer_bytes,
            options.buffer_timeout,
        );
        let obs = ctx.obs().clone();
        threads.push(spawn_task(format!("flink-score-{i}"), move || {
            let batches_scored = obs.counter("batches_scored");
            let score_errors = obs.counter("score_errors");
            let retries = obs.counter("retries");
            // Records past the source's commit scope must not be dropped:
            // transient scoring failures retry in place.
            let retry = RetryPolicy::patient();
            loop {
                match recv_buffer(&rx, Duration::from_millis(10)) {
                    Ok(Some(buffer)) => {
                        for rec in buffer {
                            let span = obs.timer(crayfish_core::Stage::Ingest);
                            scoring_cost.spend(rec.len());
                            span.stop();
                            let outcome = retry.run(
                                CoreError::is_transient,
                                |_| retries.inc(),
                                || score_payload_obs(scorer.as_mut(), &rec, &obs),
                            );
                            match outcome {
                                Ok(scored) => {
                                    batches_scored.inc();
                                    if out.push(scored).is_err() {
                                        return;
                                    }
                                }
                                Err(_) => score_errors.inc(),
                            }
                        }
                        if out.maybe_flush().is_err() {
                            return;
                        }
                    }
                    Ok(None) => {
                        if out.maybe_flush().is_err() {
                            return;
                        }
                    }
                    // All sources gone: drain done.
                    Err(_) => break,
                }
            }
            let _ = out.flush();
        })?);
    }
    drop(sink_txs);

    // Sink tasks.
    for (i, rx) in sink_rxs.into_iter().enumerate() {
        let mut producer = Producer::new(
            ctx.broker.clone(),
            &ctx.output_topic,
            ProducerConfig::default(),
        )?;
        let obs = ctx.obs().clone();
        threads.push(spawn_task(format!("flink-sink-{i}"), move || {
            let records_out = obs.counter("records_out");
            loop {
                match recv_buffer(&rx, Duration::from_millis(50)) {
                    Ok(Some(buffer)) => {
                        for rec in buffer {
                            let span = obs.timer(crayfish_core::Stage::Emit);
                            sink_cost.spend(rec.len());
                            let sent = producer.send(None, rec);
                            span.stop();
                            if sent.is_err() {
                                return;
                            }
                            records_out.inc();
                        }
                    }
                    Ok(None) => {}
                    Err(_) => return,
                }
            }
        })?);
    }

    Ok(Box::new(FlinkJob { stop, threads }))
}

fn spawn_task(name: String, body: impl FnOnce() + Send + 'static) -> Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name(name.clone())
        .spawn(body)
        .map_err(|e| CoreError::Config(format!("spawn {name}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use crayfish_core::batch::{CrayfishDataBatch, ScoredBatch};
    use crayfish_core::scoring::ScorerSpec;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::{now_millis_f64, NetworkModel};
    use crayfish_tensor::Tensor;

    /// Options with the JVM framework cost zeroed, so unit tests measure
    /// only the mechanisms they target.
    fn bare_options() -> FlinkOptions {
        FlinkOptions {
            record_overhead: Cost::ZERO,
            ..Default::default()
        }
    }

    fn make_ctx(mp: usize) -> ProcessorContext {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 8).unwrap();
        broker.create_topic("out", 8).unwrap();
        ProcessorContext {
            broker,
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp,
        }
    }

    fn feed(broker: &Broker, n: u64) {
        for id in 0..n {
            let t = Tensor::seeded_uniform([1, 8, 8], id, 0.0, 1.0);
            let payload = CrayfishDataBatch::from_tensor(id, now_millis_f64(), &t)
                .encode()
                .unwrap();
            broker
                .append("in", (id % 8) as u32, vec![(payload, now_millis_f64())])
                .unwrap();
        }
    }

    fn drain_scored(broker: &Broker, expect: usize) -> Vec<ScoredBatch> {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut out = Vec::new();
        let mut offsets = [0u64; 8];
        while out.len() < expect && std::time::Instant::now() < deadline {
            for p in 0..8u32 {
                let recs = broker
                    .read("out", p, offsets[p as usize], 1000, usize::MAX)
                    .unwrap();
                if let Some(last) = recs.last() {
                    offsets[p as usize] = last.offset + 1;
                }
                for r in recs {
                    out.push(ScoredBatch::decode(&r.value).unwrap());
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        out
    }

    fn exactly_once_ids(scored: &[ScoredBatch], n: u64) {
        let mut ids: Vec<u64> = scored.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n as usize, "duplicate or missing ids");
        assert_eq!(ids.first(), Some(&0));
        assert_eq!(ids.last(), Some(&(n - 1)));
    }

    #[test]
    fn chained_pipeline_scores_every_batch() {
        let ctx = make_ctx(2);
        let broker = ctx.broker.clone();
        let job = FlinkProcessor::with_options(bare_options())
            .start(ctx)
            .unwrap();
        feed(&broker, 40);
        let scored = drain_scored(&broker, 40);
        assert_eq!(scored.len(), 40);
        exactly_once_ids(&scored, 40);
        job.stop();
    }

    #[test]
    fn unchained_pipeline_scores_every_batch() {
        let ctx = make_ctx(2);
        let broker = ctx.broker.clone();
        let options = FlinkOptions {
            buffer_timeout: Duration::from_millis(5),
            record_overhead: Cost::ZERO,
            ..FlinkOptions::operator_level(4, 3)
        };
        let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
        feed(&broker, 60);
        let scored = drain_scored(&broker, 60);
        assert_eq!(scored.len(), 60);
        exactly_once_ids(&scored, 60);
        job.stop();
    }

    #[test]
    fn stop_is_graceful_and_idempotent_work() {
        let ctx = make_ctx(1);
        let broker = ctx.broker.clone();
        let job = FlinkProcessor::with_options(bare_options())
            .start(ctx)
            .unwrap();
        feed(&broker, 5);
        drain_scored(&broker, 5);
        job.stop();
        // Feeding after stop produces nothing new.
        feed(&broker, 5);
        std::thread::sleep(Duration::from_millis(100));
        let total = broker.total_records("out").unwrap();
        assert_eq!(total, 5);
    }

    #[test]
    fn malformed_records_are_skipped_not_fatal() {
        let ctx = make_ctx(1);
        let broker = ctx.broker.clone();
        let job = FlinkProcessor::with_options(bare_options())
            .start(ctx)
            .unwrap();
        broker
            .append("in", 0, vec![(Bytes::from_static(b"not json"), 0.0)])
            .unwrap();
        feed(&broker, 3);
        let scored = drain_scored(&broker, 3);
        assert_eq!(scored.len(), 3);
        job.stop();
    }

    #[test]
    fn async_io_scores_everything_exactly_once() {
        let ctx = make_ctx(2);
        let broker = ctx.broker.clone();
        let options = FlinkOptions {
            async_io: 4,
            ..bare_options()
        };
        let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
        feed(&broker, 50);
        let scored = drain_scored(&broker, 50);
        assert_eq!(scored.len(), 50);
        exactly_once_ids(&scored, 50);
        job.stop();
    }

    #[test]
    fn async_io_overlaps_slow_external_calls() {
        // A server pool with 4 workers and blocking calls from one subtask
        // serialises; async_io = 4 overlaps the calls. Compare wall time to
        // score a fixed backlog.
        let graph = tiny::tiny_mlp(1);
        let server = crayfish_serving::tf_serving::start(
            &graph,
            crayfish_serving::ServingConfig {
                workers: 4,
                ..Default::default()
            },
        )
        .unwrap();
        // A slow modelled LAN makes each call ~10 ms.
        let slow_net = NetworkModel {
            base_latency_s: 0.005,
            bandwidth_bytes_per_s: f64::INFINITY,
        };
        let mut elapsed = Vec::new();
        for async_io in [0usize, 4] {
            let broker = Broker::new(NetworkModel::zero());
            broker.create_topic("in", 8).unwrap();
            broker.create_topic("out", 8).unwrap();
            let ctx = ProcessorContext {
                broker: broker.clone(),
                input_topic: "in".into(),
                output_topic: "out".into(),
                group: "sut".into(),
                scorer: ScorerSpec::External {
                    kind: crayfish_serving::ExternalKind::TfServing,
                    addr: server.addr(),
                    network: slow_net,
                },
                mp: 1,
            };
            let options = FlinkOptions {
                async_io,
                ..bare_options()
            };
            let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
            let sw = crayfish_sim::Stopwatch::start();
            feed(&broker, 40);
            let scored = drain_scored(&broker, 40);
            assert_eq!(scored.len(), 40, "async_io={async_io}");
            elapsed.push(sw.elapsed_millis());
            job.stop();
        }
        assert!(
            elapsed[1] < elapsed[0] / 2.0,
            "async {} ms not faster than blocking {} ms",
            elapsed[1],
            elapsed[0]
        );
        server.shutdown();
    }

    #[test]
    fn buffer_timeout_shapes_unchained_latency() {
        // With a long buffer timeout and small records, unchained latency
        // must include the buffering delay.
        let ctx = make_ctx(1);
        let broker = ctx.broker.clone();
        let options = FlinkOptions {
            buffer_timeout: Duration::from_millis(120),
            record_overhead: Cost::ZERO,
            ..FlinkOptions::operator_level(1, 1)
        };
        let job = FlinkProcessor::with_options(options).start(ctx).unwrap();
        let start = now_millis_f64();
        feed(&broker, 1);
        let scored = drain_scored(&broker, 1);
        let elapsed = now_millis_f64() - start;
        assert_eq!(scored.len(), 1);
        assert!(elapsed >= 100.0, "buffered latency only {elapsed} ms");
        job.stop();
    }
}
