//! The neural-network graph IR.
//!
//! Models in Crayfish are static inference graphs: a list of nodes in
//! topological order, each applying one [`Op`] to the outputs of earlier
//! nodes. The IR carries its weights (shared via [`Arc`] so cloning a graph
//! for another worker is cheap) and knows how to infer activation shapes and
//! count FLOPs — the latter feeds the simulated-GPU cost model.
//!
//! Execution strategies live in `crayfish-runtime`; this module only defines
//! structure and validation.

use std::sync::Arc;

use crate::error::TensorError;
use crate::kernels::conv::Conv2dParams;
use crate::kernels::norm::BnParams;
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::Result;

/// Index of a node within its graph.
pub type NodeId = usize;

/// One graph operation. Weight-bearing ops own their parameters.
#[derive(Debug, Clone)]
pub enum Op {
    /// Graph input with the per-item shape (no batch dimension), e.g.
    /// `[28, 28]` for the FFNN or `[3, 224, 224]` for ResNet50.
    Input {
        /// Per-item input shape.
        shape: Shape,
    },
    /// Fully connected layer; `w` is `[in, out]`, `b` is `[out]`.
    Dense {
        /// Weight matrix.
        w: Arc<Tensor>,
        /// Bias vector.
        b: Arc<Tensor>,
    },
    /// 2-D convolution; `w` is `[out_c, in_c, k, k]`.
    Conv2d {
        /// Filter weights.
        w: Arc<Tensor>,
        /// Optional bias (`[out_c]`); ResNet convs have none (folded in BN).
        b: Option<Arc<Tensor>>,
        /// Static convolution parameters.
        params: Conv2dParams,
    },
    /// Inference batch normalisation over the channel dimension.
    BatchNorm {
        /// Frozen parameters.
        params: Arc<BnParams>,
    },
    /// Rectified linear unit.
    Relu,
    /// 2-D max pooling.
    MaxPool {
        /// Window size.
        k: usize,
        /// Stride.
        s: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Global average pooling `[b,c,h,w] → [b,c]`.
    GlobalAvgPool,
    /// Elementwise sum of exactly two inputs (residual connection).
    Add,
    /// Flatten all trailing dimensions into one feature axis.
    Flatten,
    /// Row-wise softmax over `[b, classes]`.
    Softmax,
}

impl Op {
    /// Short kind name used in diagnostics and serialized formats.
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Input { .. } => "input",
            Op::Dense { .. } => "dense",
            Op::Conv2d { .. } => "conv2d",
            Op::BatchNorm { .. } => "batchnorm",
            Op::Relu => "relu",
            Op::MaxPool { .. } => "maxpool",
            Op::GlobalAvgPool => "gavgpool",
            Op::Add => "add",
            Op::Flatten => "flatten",
            Op::Softmax => "softmax",
        }
    }

    /// Number of learned parameters carried by this op.
    pub fn param_count(&self) -> usize {
        match self {
            Op::Dense { w, b } => w.numel() + b.numel(),
            Op::Conv2d { w, b, .. } => w.numel() + b.as_ref().map_or(0, |t| t.numel()),
            Op::BatchNorm { params } => 4 * params.channels(),
            _ => 0,
        }
    }
}

/// A node: one op applied to the outputs of `inputs`.
#[derive(Debug, Clone)]
pub struct Node {
    /// This node's id (its position in the node list).
    pub id: NodeId,
    /// Human-readable name (e.g. `"layer2.0.conv1"`).
    pub name: String,
    /// The operation.
    pub op: Op,
    /// Ids of the nodes whose outputs feed this op, in order.
    pub inputs: Vec<NodeId>,
}

/// A static inference graph in topological order.
#[derive(Debug, Clone)]
pub struct NnGraph {
    name: String,
    nodes: Vec<Node>,
    output: NodeId,
}

impl NnGraph {
    /// Start an empty graph. Add nodes with [`NnGraph::add`], then declare
    /// the output with [`NnGraph::set_output`].
    pub fn new(name: impl Into<String>) -> Self {
        NnGraph {
            name: name.into(),
            nodes: Vec::new(),
            output: 0,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Append a node; `inputs` must reference earlier nodes.
    ///
    /// # Panics
    /// Panics if an input id is not yet defined (a programming error when
    /// building a model).
    pub fn add(&mut self, name: impl Into<String>, op: Op, inputs: Vec<NodeId>) -> NodeId {
        let id = self.nodes.len();
        for &i in &inputs {
            assert!(i < id, "node input {i} not yet defined (adding node {id})");
        }
        self.nodes.push(Node {
            id,
            name: name.into(),
            op,
            inputs,
        });
        self.output = id;
        id
    }

    /// Declare which node produces the model output (defaults to the last
    /// added node).
    pub fn set_output(&mut self, id: NodeId) {
        assert!(id < self.nodes.len(), "output node {id} does not exist");
        self.output = id;
    }

    /// The output node id.
    pub fn output(&self) -> NodeId {
        self.output
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Total learned parameters.
    pub fn param_count(&self) -> usize {
        self.nodes.iter().map(|n| n.op.param_count()).sum()
    }

    /// The graph's input node and per-item shape.
    pub fn input_shape(&self) -> Result<Shape> {
        self.nodes
            .iter()
            .find_map(|n| match &n.op {
                Op::Input { shape } => Some(shape.clone()),
                _ => None,
            })
            .ok_or_else(|| TensorError::Graph("graph has no input node".into()))
    }

    /// Infer the activation shape of every node for a given batch size.
    /// Fails if any op receives incompatible input shapes — this is the
    /// graph validator.
    pub fn infer_shapes(&self, batch: usize) -> Result<Vec<Shape>> {
        let mut shapes: Vec<Shape> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let shape = self.infer_node_shape(node, batch, &shapes)?;
            shapes.push(shape);
        }
        Ok(shapes)
    }

    /// Output shape of the whole graph for a given batch size.
    pub fn output_shape(&self, batch: usize) -> Result<Shape> {
        let shapes = self.infer_shapes(batch)?;
        Ok(shapes[self.output].clone())
    }

    /// Total forward-pass FLOPs for a given batch size.
    pub fn flops(&self, batch: usize) -> Result<u64> {
        let shapes = self.infer_shapes(batch)?;
        let mut total = 0u64;
        for node in &self.nodes {
            total += self.node_flops(node, &shapes);
        }
        Ok(total)
    }

    /// FLOPs of a single node given all inferred shapes.
    pub fn node_flops(&self, node: &Node, shapes: &[Shape]) -> u64 {
        let out_numel = shapes[node.id].numel() as u64;
        match &node.op {
            Op::Input { .. } | Op::Flatten => 0,
            Op::Dense { w, .. } => {
                let batch = shapes[node.id].dim(0) as u64;
                2 * batch * w.shape().dim(0) as u64 * w.shape().dim(1) as u64
            }
            Op::Conv2d { params, .. } => {
                let in_shape = &shapes[node.inputs[0]];
                let batch = in_shape.dim(0) as u64;
                batch * params.flops(in_shape.dim(2), in_shape.dim(3))
            }
            Op::BatchNorm { .. } => 2 * out_numel,
            Op::Relu | Op::Add | Op::GlobalAvgPool => out_numel,
            Op::MaxPool { k, .. } => out_numel * (*k as u64) * (*k as u64),
            Op::Softmax => 5 * out_numel,
        }
    }

    fn infer_node_shape(&self, node: &Node, batch: usize, shapes: &[Shape]) -> Result<Shape> {
        let arity = |n: usize| -> Result<()> {
            if node.inputs.len() != n {
                return Err(TensorError::Graph(format!(
                    "node {} ({}) expects {n} inputs, has {}",
                    node.name,
                    node.op.kind(),
                    node.inputs.len()
                )));
            }
            Ok(())
        };
        let input = |i: usize| -> &Shape { &shapes[node.inputs[i]] };
        match &node.op {
            Op::Input { shape } => {
                arity(0)?;
                let mut dims = vec![batch];
                dims.extend_from_slice(shape.dims());
                Ok(Shape::new(dims))
            }
            Op::Dense { w, b } => {
                arity(1)?;
                let in_shape = input(0);
                if in_shape.rank() != 2 {
                    return Err(TensorError::RankMismatch {
                        op: "dense",
                        expected: 2,
                        actual: in_shape.rank(),
                    });
                }
                let (inf, outf) = (w.shape().dim(0), w.shape().dim(1));
                if in_shape.dim(1) != inf || b.numel() != outf {
                    return Err(TensorError::ShapeMismatch {
                        op: "dense",
                        expected: Shape::from([in_shape.dim(0), inf]),
                        actual: in_shape.clone(),
                    });
                }
                Ok(Shape::from([in_shape.dim(0), outf]))
            }
            Op::Conv2d { w, params, .. } => {
                arity(1)?;
                let s = input(0);
                if s.rank() != 4 {
                    return Err(TensorError::RankMismatch {
                        op: "conv2d",
                        expected: 4,
                        actual: s.rank(),
                    });
                }
                if s.dim(1) != params.in_c || w.shape().dim(0) != params.out_c {
                    return Err(TensorError::ShapeMismatch {
                        op: "conv2d",
                        expected: Shape::from([s.dim(0), params.in_c, s.dim(2), s.dim(3)]),
                        actual: s.clone(),
                    });
                }
                let (oh, ow) = params.out_hw(s.dim(2), s.dim(3));
                Ok(Shape::from([s.dim(0), params.out_c, oh, ow]))
            }
            Op::BatchNorm { params } => {
                arity(1)?;
                let s = input(0);
                if s.rank() < 2 || s.dim(1) != params.channels() {
                    return Err(TensorError::Graph(format!(
                        "batchnorm {}: expected {} channels, input shape {s}",
                        node.name,
                        params.channels()
                    )));
                }
                Ok(s.clone())
            }
            Op::Relu | Op::Softmax => {
                arity(1)?;
                Ok(input(0).clone())
            }
            Op::MaxPool { k, s, pad } => {
                arity(1)?;
                let sh = input(0);
                if sh.rank() != 4 {
                    return Err(TensorError::RankMismatch {
                        op: "maxpool",
                        expected: 4,
                        actual: sh.rank(),
                    });
                }
                let oh = (sh.dim(2) + 2 * pad - k) / s + 1;
                let ow = (sh.dim(3) + 2 * pad - k) / s + 1;
                Ok(Shape::from([sh.dim(0), sh.dim(1), oh, ow]))
            }
            Op::GlobalAvgPool => {
                arity(1)?;
                let s = input(0);
                if s.rank() != 4 {
                    return Err(TensorError::RankMismatch {
                        op: "gavgpool",
                        expected: 4,
                        actual: s.rank(),
                    });
                }
                Ok(Shape::from([s.dim(0), s.dim(1)]))
            }
            Op::Add => {
                arity(2)?;
                if input(0) != input(1) {
                    return Err(TensorError::ShapeMismatch {
                        op: "add",
                        expected: input(0).clone(),
                        actual: input(1).clone(),
                    });
                }
                Ok(input(0).clone())
            }
            Op::Flatten => {
                arity(1)?;
                let s = input(0);
                Ok(Shape::from([s.dim(0), s.per_item().numel()]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-layer MLP used across the tests.
    fn tiny_mlp() -> NnGraph {
        let mut g = NnGraph::new("tiny");
        let input = g.add(
            "input",
            Op::Input {
                shape: Shape::from([4]),
            },
            vec![],
        );
        let flat = g.add("flatten", Op::Flatten, vec![input]);
        let w1 = Arc::new(Tensor::seeded_he([4, 8], 1, 4));
        let b1 = Arc::new(Tensor::zeros([8]));
        let d1 = g.add("fc1", Op::Dense { w: w1, b: b1 }, vec![flat]);
        let r1 = g.add("relu1", Op::Relu, vec![d1]);
        let w2 = Arc::new(Tensor::seeded_he([8, 3], 2, 8));
        let b2 = Arc::new(Tensor::zeros([3]));
        let d2 = g.add("fc2", Op::Dense { w: w2, b: b2 }, vec![r1]);
        g.add("softmax", Op::Softmax, vec![d2]);
        g
    }

    #[test]
    fn shape_inference_through_mlp() {
        let g = tiny_mlp();
        let shapes = g.infer_shapes(5).unwrap();
        assert_eq!(shapes.last().unwrap().dims(), &[5, 3]);
        assert_eq!(g.output_shape(2).unwrap().dims(), &[2, 3]);
    }

    #[test]
    fn param_count_sums_layers() {
        let g = tiny_mlp();
        // fc1: 4*8+8 = 40, fc2: 8*3+3 = 27
        assert_eq!(g.param_count(), 67);
    }

    #[test]
    fn flops_counts_dense_macs() {
        let g = tiny_mlp();
        let flops = g.flops(1).unwrap();
        // fc1: 2*4*8=64, relu: 8, fc2: 2*8*3=48, softmax: 15 => 135
        assert_eq!(flops, 135);
    }

    #[test]
    fn input_shape_is_discoverable() {
        let g = tiny_mlp();
        assert_eq!(g.input_shape().unwrap().dims(), &[4]);
    }

    #[test]
    fn dense_shape_mismatch_is_detected() {
        let mut g = NnGraph::new("bad");
        let input = g.add(
            "input",
            Op::Input {
                shape: Shape::from([5]),
            },
            vec![],
        );
        let flat = g.add("flatten", Op::Flatten, vec![input]);
        let w = Arc::new(Tensor::zeros([4, 2])); // expects 4 features, gets 5
        let b = Arc::new(Tensor::zeros([2]));
        g.add("fc", Op::Dense { w, b }, vec![flat]);
        assert!(g.infer_shapes(1).is_err());
    }

    #[test]
    fn add_requires_equal_shapes() {
        let mut g = NnGraph::new("res");
        let a = g.add(
            "input",
            Op::Input {
                shape: Shape::from([2, 2, 2]),
            },
            vec![],
        );
        let pooled = g.add("pool", Op::MaxPool { k: 2, s: 2, pad: 0 }, vec![a]);
        g.add("add", Op::Add, vec![a, pooled]);
        assert!(g.infer_shapes(1).is_err());
    }

    #[test]
    #[should_panic(expected = "not yet defined")]
    fn forward_references_panic() {
        let mut g = NnGraph::new("bad");
        g.add("relu", Op::Relu, vec![3]);
    }

    #[test]
    fn conv_and_pool_shapes() {
        let mut g = NnGraph::new("conv");
        let input = g.add(
            "input",
            Op::Input {
                shape: Shape::from([3, 8, 8]),
            },
            vec![],
        );
        let w = Arc::new(Tensor::zeros([4, 3, 3, 3]));
        let conv = g.add(
            "conv",
            Op::Conv2d {
                w,
                b: None,
                params: Conv2dParams {
                    in_c: 3,
                    out_c: 4,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
            },
            vec![input],
        );
        let pool = g.add("pool", Op::MaxPool { k: 2, s: 2, pad: 0 }, vec![conv]);
        g.add("gap", Op::GlobalAvgPool, vec![pool]);
        let shapes = g.infer_shapes(2).unwrap();
        assert_eq!(shapes[conv].dims(), &[2, 4, 8, 8]);
        assert_eq!(shapes[pool].dims(), &[2, 4, 4, 4]);
        assert_eq!(shapes.last().unwrap().dims(), &[2, 4]);
    }
}
