//! **Figure 12** — operator-level parallelism on Flink (§6.1):
//! `flink[N-N-N]` (default chained parallelism) vs `flink[32-N-32]`
//! (sources/sinks pinned to the partition count, chaining disabled, only
//! the scoring operator scaled). FFNN, offered 30 k events/s.

use crayfish::prelude::*;
use crayfish_bench::*;

fn main() {
    let tools = [
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ];
    let mut table = Table::new(
        "Figure 12: Flink operator-level parallelism (events/s, FFNN, ir=30k)",
        &["serving tool", "topology", "mp", "measured"],
    );
    let mut dump = Vec::new();
    for (tool, serving) in tools {
        for mp in mp_sweep() {
            // flink[N-N-N]: chained, uniform parallelism.
            let chained = FlinkProcessor::new();
            let mut spec = base_spec(ModelSpec::Ffnn, serving);
            spec.mp = mp;
            spec.workload = Workload::Constant {
                rate: OVERLOAD_FFNN,
            };
            let result = run(&format!("fig12/{tool}/[N-N-N]/mp{mp}"), &chained, &spec);
            table.row(vec![
                tool.into(),
                "[N-N-N]".into(),
                mp.to_string(),
                eps(result.throughput_eps),
            ]);
            dump.push(Measurement::of(format!("{tool}/[N-N-N]/mp{mp}"), &result));

            // flink[32-N-32]: operator parallelism, chaining disabled, short
            // buffer timeout so the exchange does not dominate latency.
            let mut options = FlinkOptions::operator_level(32, 32);
            options.buffer_timeout = std::time::Duration::from_millis(10);
            let unchained = FlinkProcessor::with_options(options);
            let result = run(&format!("fig12/{tool}/[32-N-32]/mp{mp}"), &unchained, &spec);
            table.row(vec![
                tool.into(),
                "[32-N-32]".into(),
                mp.to_string(),
                eps(result.throughput_eps),
            ]);
            dump.push(Measurement::of(format!("{tool}/[32-N-32]/mp{mp}"), &result));
        }
    }
    table.print();
    println!("\nPaper shape: [32-N-32] beats [N-N-N] consistently (the paper measures");
    println!("~3.8x at one scoring task: 5373 vs 1393 events/s) — sources and sinks");
    println!("stop being the bottleneck, so scaling the scoring operator pays off.");
    save_json("fig12", &dump);
}
