//! Steady-state allocation discipline: after one warmup call, repeated
//! inference at the same batch size must not reallocate any arena buffer,
//! `im2col` scratch, or GEMM packing scratch — every `(ptr, capacity)`
//! fingerprint has to stay bit-identical. Together with the weights being
//! packed at plan-compile time, this is the "zero packing, zero allocation
//! steady state" the fused executor advertises.

use crayfish_models::{ffnn, tiny};
use crayfish_runtime::exec::{FusedExec, UnfusedExec};
use crayfish_tensor::Tensor;

#[test]
fn fused_cnn_steady_state_reuses_arena() {
    let g = tiny::tiny_cnn(4);
    let mut exec = FusedExec::new(&g).unwrap();
    let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, -1.0, 1.0);
    let first = exec.run(&input).unwrap();
    let fp = exec.arena_fingerprint();
    for _ in 0..4 {
        let again = exec.run(&input).unwrap();
        assert_eq!(first, again, "steady-state output drifted");
        assert_eq!(exec.arena_fingerprint(), fp, "fused arena reallocated");
    }
}

#[test]
fn fused_ffnn_steady_state_reuses_arena() {
    let g = ffnn::build(6);
    let mut exec = FusedExec::new(&g).unwrap();
    // Batch 8 exercises the packed (non-skinny) dense path.
    let input = Tensor::seeded_uniform([8, 28, 28], 3, 0.0, 1.0);
    exec.run(&input).unwrap();
    let fp = exec.arena_fingerprint();
    for _ in 0..4 {
        exec.run(&input).unwrap();
        assert_eq!(exec.arena_fingerprint(), fp, "fused arena reallocated");
    }
}

#[test]
fn unfused_reusing_executor_reuses_arena() {
    let g = tiny::tiny_cnn(4);
    let mut exec = UnfusedExec::new(g, true, None).unwrap();
    let input = Tensor::seeded_uniform([2, 3, 8, 8], 2, -1.0, 1.0);
    let first = exec.run(&input).unwrap();
    let fp = exec.arena_fingerprint();
    for _ in 0..4 {
        let again = exec.run(&input).unwrap();
        assert_eq!(first, again, "steady-state output drifted");
        assert_eq!(exec.arena_fingerprint(), fp, "unfused arena reallocated");
    }
}

#[test]
fn batch_change_resizes_then_restabilises() {
    let g = tiny::tiny_cnn(4);
    let mut exec = FusedExec::new(&g).unwrap();
    let small = Tensor::seeded_uniform([1, 3, 8, 8], 4, -1.0, 1.0);
    let big = Tensor::seeded_uniform([5, 3, 8, 8], 5, -1.0, 1.0);
    exec.run(&small).unwrap();
    // Growing the batch may reallocate once...
    exec.run(&big).unwrap();
    let fp = exec.arena_fingerprint();
    // ...after which both batch sizes must run inside the grown arena.
    exec.run(&small).unwrap();
    exec.run(&big).unwrap();
    assert_eq!(
        exec.arena_fingerprint(),
        fp,
        "arena reallocated after it had grown to the high-water mark"
    );
}
