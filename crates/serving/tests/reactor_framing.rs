//! Wire-framing robustness of the reactor servers.
//!
//! The reactor parses messages out of whatever byte fragments the kernel
//! delivers, so these tests drive the real servers with adversarially
//! fragmented writes — every possible split boundary of a frame — and
//! with byte-at-a-time reads of the responses. A server that assumed
//! "one read = one message" (the luxury the old blocking `BufReader`
//! loops had) fails these immediately.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use crayfish_models::tiny;
use crayfish_serving::protocol::{
    encode_tensor_binary, frame_bytes, read_frame, read_http_message, write_frame,
};
use crayfish_serving::{ray_serve, tf_serving, ServingConfig};
use crayfish_tensor::Tensor;

fn small_frame() -> Vec<u8> {
    // A deliberately wrong-shaped tensor keeps the frame tiny; the server
    // answers with an error frame, which is all a framing test needs.
    frame_bytes(&encode_tensor_binary(
        &Tensor::from_vec([2], vec![1.0, 2.0]).unwrap(),
    ))
    .unwrap()
}

#[test]
fn grpc_reactor_parses_across_every_split_boundary() {
    let server = tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    let frame = small_frame();
    for cut in 1..frame.len() {
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.set_nodelay(true).unwrap();
        c.write_all(&frame[..cut]).unwrap();
        c.flush().unwrap();
        // Give the reactor a poll cycle to observe the partial frame.
        std::thread::sleep(Duration::from_micros(300));
        c.write_all(&frame[cut..]).unwrap();
        c.flush().unwrap();
        let reply = read_frame(&mut c).unwrap();
        assert!(reply.is_some(), "no reply for frame split at byte {cut}");
    }
    server.shutdown();
}

#[test]
fn grpc_reactor_survives_byte_at_a_time_writes() {
    let server = tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    let mut c = TcpStream::connect(server.addr()).unwrap();
    c.set_nodelay(true).unwrap();
    let frame = small_frame();
    for &b in &frame {
        c.write_all(&[b]).unwrap();
        c.flush().unwrap();
    }
    assert!(read_frame(&mut c).unwrap().is_some());
    server.shutdown();
}

#[test]
fn grpc_responses_survive_byte_at_a_time_reads() {
    let server = tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    let mut c = TcpStream::connect(server.addr()).unwrap();
    write_frame(
        &mut c,
        &encode_tensor_binary(&Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0)),
    )
    .unwrap();
    // Read the length prefix, then the payload, one byte per syscall.
    let mut len = [0u8; 4];
    for i in 0..4 {
        c.read_exact(&mut len[i..i + 1]).unwrap();
    }
    let n = u32::from_le_bytes(len) as usize;
    let mut payload = vec![0u8; n];
    for i in 0..n {
        c.read_exact(&mut payload[i..i + 1]).unwrap();
    }
    assert_eq!(payload[0], 0, "expected an ok status byte");
    server.shutdown();
}

#[test]
fn grpc_pipelined_burst_with_trailing_partial_frame() {
    let server = tf_serving::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    let mut c = TcpStream::connect(server.addr()).unwrap();
    c.set_nodelay(true).unwrap();
    let frame = small_frame();
    // Three complete frames plus the first half of a fourth, in one write.
    let mut burst = Vec::new();
    for _ in 0..3 {
        burst.extend_from_slice(&frame);
    }
    let half = frame.len() / 2;
    burst.extend_from_slice(&frame[..half]);
    c.write_all(&burst).unwrap();
    c.flush().unwrap();
    for i in 0..3 {
        assert!(
            read_frame(&mut c).unwrap().is_some(),
            "pipelined reply {i} missing"
        );
    }
    // Completing the fourth frame later still yields its reply.
    c.write_all(&frame[half..]).unwrap();
    c.flush().unwrap();
    assert!(read_frame(&mut c).unwrap().is_some());
    server.shutdown();
}

#[test]
fn http_reactor_parses_across_every_split_boundary() {
    let server = ray_serve::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    let body = br#"{"dims":[2],"data":[1.0,2.0]}"#;
    let mut req = format!(
        "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    for cut in 1..req.len() {
        let mut c = TcpStream::connect(server.addr()).unwrap();
        c.set_nodelay(true).unwrap();
        c.write_all(&req[..cut]).unwrap();
        c.flush().unwrap();
        std::thread::sleep(Duration::from_micros(300));
        c.write_all(&req[cut..]).unwrap();
        c.flush().unwrap();
        let mut r = std::io::BufReader::new(c);
        let msg = read_http_message(&mut r).unwrap();
        assert!(msg.is_some(), "no response for request split at byte {cut}");
    }
    server.shutdown();
}

#[test]
fn http_reactor_survives_byte_at_a_time_writes() {
    let server = ray_serve::start(&tiny::tiny_mlp(1), ServingConfig::default()).unwrap();
    let body = br#"{"dims":[2],"data":[1.0,2.0]}"#;
    let mut req = format!(
        "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    req.extend_from_slice(body);
    let mut c = TcpStream::connect(server.addr()).unwrap();
    c.set_nodelay(true).unwrap();
    for &b in &req {
        c.write_all(&[b]).unwrap();
        c.flush().unwrap();
    }
    let mut r = std::io::BufReader::new(c);
    assert!(read_http_message(&mut r).unwrap().is_some());
    server.shutdown();
}
