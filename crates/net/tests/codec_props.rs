//! Property tests for the incremental frame codec.
//!
//! The reactor feeds `poll_parse` whatever byte fragments the kernel
//! delivers, so the codec must decode the same message stream no matter
//! how the bytes are sliced: byte-at-a-time, at every possible split
//! boundary, or as pipelined bursts with trailing partial frames. These
//! tests run the codec through a harness that mirrors the reactor's
//! buffer management (append, parse loop, compact) and check that every
//! chunking of a frame stream yields exactly the original payloads.

use proptest::prelude::*;

use crayfish_net::codec::{poll_parse, poll_parse_grpc, ParseStep};
use crayfish_net::{frame_bytes, Wire};

/// The reactor's per-connection decode state, minus the socket: buffered
/// bytes, a parsed watermark, and the same compaction policy.
struct IncrementalDecoder {
    wire: Wire,
    inbuf: Vec<u8>,
    parsed: usize,
    messages: Vec<Vec<u8>>,
    bad: bool,
}

impl IncrementalDecoder {
    fn new(wire: Wire) -> IncrementalDecoder {
        IncrementalDecoder {
            wire,
            inbuf: Vec::new(),
            parsed: 0,
            messages: Vec::new(),
            bad: false,
        }
    }

    /// Feed one read's worth of bytes and decode whatever completes.
    fn push(&mut self, chunk: &[u8]) {
        assert!(!self.bad, "decoder fed after a framing violation");
        self.inbuf.extend_from_slice(chunk);
        loop {
            match poll_parse(self.wire, &self.inbuf[self.parsed..]) {
                ParseStep::Msg {
                    start,
                    end,
                    consumed,
                } => {
                    let (abs_start, abs_end) = (self.parsed + start, self.parsed + end);
                    self.messages.push(self.inbuf[abs_start..abs_end].to_vec());
                    self.parsed += consumed;
                }
                ParseStep::Incomplete => break,
                ParseStep::Bad => {
                    self.bad = true;
                    break;
                }
            }
        }
        // The reactor's steady-state compaction: reclaim the buffer once
        // everything parsed so indices stay small across long streams.
        if self.parsed == self.inbuf.len() {
            self.inbuf.clear();
            self.parsed = 0;
        }
    }
}

/// Deterministic payload of `len` bytes derived from `seed`.
fn payload(seed: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| (seed.wrapping_mul(31).wrapping_add(i as u64) % 251) as u8)
        .collect()
}

fn grpc_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for p in payloads {
        stream.extend_from_slice(&frame_bytes(p).expect("payload under cap"));
    }
    stream
}

fn http_stream(payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut stream = Vec::new();
    for p in payloads {
        stream.extend_from_slice(
            format!(
                "POST /infer HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                p.len()
            )
            .as_bytes(),
        );
        stream.extend_from_slice(p);
    }
    stream
}

/// Feed `stream` to a fresh decoder in chunks whose sizes cycle through
/// `chunk_sizes`, then assert the decoded messages equal `payloads`.
fn check_chunking(
    wire: Wire,
    stream: &[u8],
    chunk_sizes: &[usize],
    payloads: &[Vec<u8>],
) -> Result<(), proptest::test_runner::TestCaseError> {
    let mut dec = IncrementalDecoder::new(wire);
    let mut fed = 0;
    let mut i = 0;
    while fed < stream.len() {
        let size = chunk_sizes[i % chunk_sizes.len()].max(1);
        let end = (fed + size).min(stream.len());
        dec.push(&stream[fed..end]);
        fed = end;
        i += 1;
        prop_assert!(!dec.bad, "well-formed stream flagged bad at byte {fed}");
    }
    prop_assert_eq!(
        dec.messages.len(),
        payloads.len(),
        "decoded {} of {} messages",
        dec.messages.len(),
        payloads.len()
    );
    for (got, want) in dec.messages.iter().zip(payloads) {
        prop_assert_eq!(got, want);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any chunking of any gRPC frame stream decodes to the original
    /// payloads — pipelined bursts (large chunks spanning several frames)
    /// and trickles (chunks splitting frames mid-prefix) alike.
    #[test]
    fn grpc_stream_decodes_under_any_chunking(
        seed in proptest::arbitrary::any::<u64>(),
        lens in proptest::collection::vec(0usize..200, 1..8),
        chunks in proptest::collection::vec(1usize..64, 1..12),
    ) {
        let payloads: Vec<Vec<u8>> =
            lens.iter().enumerate().map(|(i, &l)| payload(seed.wrapping_add(i as u64), l)).collect();
        let stream = grpc_stream(&payloads);
        check_chunking(Wire::Grpc, &stream, &chunks, &payloads)?;
    }

    /// Same property for the HTTP wire: header/body splits at arbitrary
    /// positions never lose or corrupt a message body.
    #[test]
    fn http_stream_decodes_under_any_chunking(
        seed in proptest::arbitrary::any::<u64>(),
        lens in proptest::collection::vec(0usize..200, 1..6),
        chunks in proptest::collection::vec(1usize..48, 1..12),
    ) {
        let payloads: Vec<Vec<u8>> =
            lens.iter().enumerate().map(|(i, &l)| payload(seed.wrapping_add(i as u64), l)).collect();
        let stream = http_stream(&payloads);
        check_chunking(Wire::Http, &stream, &chunks, &payloads)?;
    }

    /// frame_bytes/poll_parse round-trip: a framed payload parses back to
    /// itself with nothing left over, and every strict prefix is
    /// `Incomplete` — never `Bad`, never a phantom message.
    #[test]
    fn grpc_frame_roundtrips_and_every_prefix_is_incomplete(
        seed in proptest::arbitrary::any::<u64>(),
        len in 0usize..300,
    ) {
        let p = payload(seed, len);
        let frame = frame_bytes(&p).expect("payload under cap");
        for cut in 0..frame.len() {
            prop_assert!(
                matches!(poll_parse_grpc(&frame[..cut]), ParseStep::Incomplete),
                "prefix of {} bytes not Incomplete", cut
            );
        }
        match poll_parse_grpc(&frame) {
            ParseStep::Msg { start, end, consumed } => {
                prop_assert_eq!(&frame[start..end], &p[..]);
                prop_assert_eq!(consumed, frame.len());
            }
            _ => prop_assert!(false, "complete frame did not parse"),
        }
    }
}

/// Exhaustive (non-random) split coverage in the style the reactor tests
/// use: a three-frame stream cut at every boundary, fed as two pushes.
#[test]
fn every_split_boundary_of_a_multi_frame_stream() {
    for wire in [Wire::Grpc, Wire::Http] {
        let payloads = vec![b"alpha".to_vec(), Vec::new(), b"gamma-longer".to_vec()];
        let stream = match wire {
            Wire::Grpc => grpc_stream(&payloads),
            Wire::Http => http_stream(&payloads),
        };
        for cut in 0..=stream.len() {
            let mut dec = IncrementalDecoder::new(wire);
            dec.push(&stream[..cut]);
            dec.push(&stream[cut..]);
            assert!(!dec.bad, "{wire:?} stream flagged bad at split {cut}");
            assert_eq!(dec.messages, payloads, "{wire:?} split at {cut}");
        }
    }
}

/// Byte-at-a-time delivery — the harshest chunking — decodes losslessly.
#[test]
fn byte_at_a_time_delivery_decodes_losslessly() {
    for wire in [Wire::Grpc, Wire::Http] {
        let payloads = vec![payload(7, 33), payload(8, 0), payload(9, 129)];
        let stream = match wire {
            Wire::Grpc => grpc_stream(&payloads),
            Wire::Http => http_stream(&payloads),
        };
        let mut dec = IncrementalDecoder::new(wire);
        for &b in &stream {
            dec.push(&[b]);
        }
        assert!(!dec.bad);
        assert_eq!(dec.messages, payloads, "{wire:?} byte-at-a-time");
    }
}
