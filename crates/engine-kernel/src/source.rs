//! The commit-owning source half of a split topology.
//!
//! When an engine separates ingestion from scoring (unchained Flink, async
//! Flink chains, Ray actor pipelines), the record lifecycle splits at the
//! offset commit: everything up to the commit is a supervised
//! [`source_pump`] here, and everything past it is assembled from
//! [`crate::score`] pieces behind a personality-owned transport. The
//! transport — exchange, mailbox, task channel — is abstracted as a
//! [`RecordSink`], which is the only part the personality implements.

use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::Sender;

use crayfish_broker::PartitionConsumer;
use crayfish_core::chaos::WorkerExit;
use crayfish_core::{ProcessorContext, Result};
use crayfish_sim::Cost;

use crate::score::charge_ingest;
use crate::worker::{Rebuild, WorkerSet};

/// The downstream side of a sink or transport has gone away; the stage
/// winds down gracefully.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkClosed;

/// Where a source pump hands records off to: an engine's transport into
/// its scoring stage.
pub trait RecordSink: Send {
    /// Forward one record (blocking on backpressure).
    fn deliver(&mut self, value: Bytes) -> std::result::Result<(), SinkClosed>;
    /// Called once per poll cycle, after the offset commit — buffered
    /// transports flush aged buffers here.
    fn after_cycle(&mut self) -> std::result::Result<(), SinkClosed> {
        Ok(())
    }
    /// Called on graceful shutdown — buffered transports drain here.
    fn on_stop(&mut self) {}
}

/// A plain bounded/unbounded channel is a valid transport (async Flink's
/// in-flight queue, Ray's actor mailbox).
impl RecordSink for Sender<Bytes> {
    fn deliver(&mut self, value: Bytes) -> std::result::Result<(), SinkClosed> {
        self.send(value).map_err(|_| SinkClosed)
    }
}

/// Source-pump tunables.
#[derive(Debug, Clone, Copy)]
pub struct PumpSettings {
    /// Poll timeout per cycle.
    pub poll_timeout: Duration,
    /// Per-record framework cost charged inside an `ingest` span before
    /// the handoff; `None` opens no span (the engine charges ingestion
    /// elsewhere, e.g. Ray's object-store get on the receiving actor).
    pub ingest_cost: Option<Cost>,
}

impl Default for PumpSettings {
    fn default() -> Self {
        PumpSettings {
            poll_timeout: Duration::from_millis(50),
            ingest_cost: None,
        }
    }
}

/// Register a supervised source pump: poll the assigned partitions,
/// forward every record into `sink`, commit, repeat. The sink lives across
/// incarnations — a restarted pump rebuilds only its consumer, resuming
/// from the committed offsets, while records already handed off continue
/// downstream.
pub fn source_pump<S>(
    set: &mut WorkerSet,
    ctx: &ProcessorContext,
    name: String,
    assigned: Vec<u32>,
    settings: PumpSettings,
    mut sink: S,
) -> Result<()>
where
    S: RecordSink + 'static,
{
    let broker = ctx.broker.clone();
    let input = ctx.input_topic.clone();
    let group = ctx.group.clone();
    let resources = Rebuild::eager(move || {
        Ok(PartitionConsumer::new(
            broker.clone(),
            &input,
            &group,
            assigned.clone(),
        )?)
    })?;
    let obs = ctx.obs().clone();
    let commits = obs.counter("engine_commits");
    set.supervised(ctx, name, resources, move |consumer, ctl| loop {
        if let Some(exit) = ctl.checkpoint() {
            if exit == WorkerExit::Stopped {
                sink.on_stop();
            }
            return exit;
        }
        let records = match consumer.poll(settings.poll_timeout) {
            Ok(r) => r,
            Err(e) if e.is_transient() => return WorkerExit::Failed(format!("poll: {e}")),
            Err(_) => {
                sink.on_stop();
                return WorkerExit::Stopped;
            }
        };
        for rec in records {
            if let Some(cost) = settings.ingest_cost {
                charge_ingest(&obs, cost, rec.value.len());
            }
            if sink.deliver(rec.value).is_err() {
                return WorkerExit::Stopped;
            }
        }
        consumer.commit();
        commits.inc();
        if sink.after_cycle().is_err() {
            return WorkerExit::Stopped;
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    use crayfish_broker::Broker;
    use crayfish_core::batch::testkit::onnx_ctx;
    use crayfish_sim::NetworkModel;

    fn make_ctx() -> ProcessorContext {
        onnx_ctx(Broker::new(NetworkModel::zero()), 4, 1)
    }

    #[test]
    fn pump_forwards_records_and_commits() {
        let ctx = make_ctx();
        let broker = ctx.broker.clone();
        let (tx, rx) = crossbeam::channel::unbounded::<Bytes>();
        let mut set = WorkerSet::new();
        source_pump(
            &mut set,
            &ctx,
            "pump-0".into(),
            vec![0, 1, 2, 3],
            PumpSettings::default(),
            tx,
        )
        .unwrap();
        for id in 0..10u64 {
            broker
                .append(
                    "in",
                    (id % 4) as u32,
                    vec![(Bytes::from(vec![id as u8]), 0.0)],
                )
                .unwrap();
        }
        for _ in 0..10 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        crayfish_core::chaos::testkit::poll_until(Duration::from_secs(5), || {
            broker.group_lag("sut", "in").unwrap() == 0
        });
        assert_eq!(broker.group_lag("sut", "in").unwrap(), 0);
        set.into_job().stop();
    }

    #[test]
    fn pump_stops_when_sink_disconnects() {
        let ctx = make_ctx();
        let broker = ctx.broker.clone();
        // Keep only the sender: the receiving side is gone from the start.
        let tx = {
            let (tx, _rx) = crossbeam::channel::unbounded::<Bytes>();
            tx
        };
        let mut set = WorkerSet::new();
        source_pump(
            &mut set,
            &ctx,
            "pump-0".into(),
            vec![0, 1, 2, 3],
            PumpSettings::default(),
            tx,
        )
        .unwrap();
        broker
            .append("in", 0, vec![(Bytes::from_static(b"x"), 0.0)])
            .unwrap();
        // The pump notices the disconnect and exits; stop() returns
        // promptly instead of hanging on a live thread.
        set.into_job().stop();
    }
}
