//! Admission-stage observability.
//!
//! One [`AdmissionMetrics`] bundle per deployment, resolved once from the
//! server's [`crayfish_obs::ObsHandle`] so the queue and dispatcher hot
//! paths touch only pre-fetched handles (single relaxed atomics, no
//! registry locks). With a disabled handle every operation is a no-op.

use crayfish_obs::{Counter, Gauge, HistHandle, HistogramSnapshot, ObsHandle};

/// Pre-resolved handles for the four admission metrics:
///
/// | metric                 | kind      | meaning                            |
/// |------------------------|-----------|------------------------------------|
/// | `admission_queue_depth`| gauge     | requests waiting in the queue      |
/// | `admission_shed`       | counter   | requests rejected with `Overloaded`|
/// | `admission_batch_size` | histogram | requests per scored batch (counts) |
/// | `admission_wait`       | histogram | queue-entry → drain latency (ns)   |
///
/// `admission_batch_size` reuses the nanosecond histogram machinery to
/// store dimensionless batch sizes; readers (`crayfish-top`, the
/// saturation bench) interpret its values as raw counts.
#[derive(Clone, Debug, Default)]
pub struct AdmissionMetrics {
    pub(crate) queue_depth: Gauge,
    pub(crate) shed: Counter,
    pub(crate) batch_size: HistHandle,
    pub(crate) wait: HistHandle,
}

impl AdmissionMetrics {
    /// Resolve the admission metric family on `obs`.
    pub fn new(obs: &ObsHandle) -> AdmissionMetrics {
        AdmissionMetrics {
            queue_depth: obs.gauge("admission_queue_depth"),
            shed: obs.counter("admission_shed"),
            batch_size: obs.histogram_ns("admission_batch_size"),
            wait: obs.histogram_ns("admission_wait"),
        }
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> i64 {
        self.queue_depth.get()
    }

    /// Requests rejected with `Overloaded` so far.
    pub fn shed_total(&self) -> u64 {
        self.shed.get()
    }

    /// Distribution of requests per scored batch (values are counts, not
    /// nanoseconds).
    pub fn batch_size_snapshot(&self) -> HistogramSnapshot {
        self.batch_size.snapshot()
    }

    /// Distribution of time spent queued before a worker drained the
    /// request (nanoseconds).
    pub fn wait_snapshot(&self) -> HistogramSnapshot {
        self.wait.snapshot()
    }
}
