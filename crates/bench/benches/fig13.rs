//! **Figure 13 / §6.2** — the overhead Crayfish itself introduces by
//! routing input and output through the broker, vs an equivalent
//! self-contained pipeline (`no-kafka`): a standalone Flink-style job that
//! generates data, scores it with embedded ONNX, and records timestamps
//! in-process.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crayfish::framework::metrics::{summarize, Summary};
use crayfish::framework::scoring::ScorerSpec;
use crayfish::prelude::*;
use crayfish::sim::{calibration, now_millis_f64, RatePacer};
use crayfish::tensor::Tensor;
use crayfish_bench::*;
use crayfish_core::batch::CrayfishDataBatch;

/// The standalone pipeline: same per-record framework cost and the same
/// scoring path, but no broker, no JSON wire, no network hops.
fn run_standalone(bsz: usize, rate: f64, window: Duration) -> (f64, Summary) {
    let graph = Arc::new(ModelSpec::Ffnn.build(42));
    let spec = ScorerSpec::Embedded {
        lib: EmbeddedLib::Onnx,
        graph,
        device: Device::Cpu,
    };
    let mut scorer = spec.build().expect("build scorer");
    let mut pacer = RatePacer::new(rate);
    let mut latencies = Vec::new();
    let start = Instant::now();
    let mut count = 0u64;
    while start.elapsed() < window {
        pacer.pace();
        let t = Tensor::seeded_uniform([bsz, 28, 28], count, 0.0, 255.0);
        let batch = CrayfishDataBatch::from_tensor(count, now_millis_f64(), &t);
        // The same JVM task-chain cost the Crayfish Flink adapter charges.
        calibration::RECORD_OVERHEAD_FLINK.spend(t.numel() * 4);
        let input = batch.to_tensor().expect("tensor");
        let _ = scorer.score(&input).expect("score");
        latencies.push(now_millis_f64() - batch.created_ms);
        count += 1;
    }
    let eps = count as f64 / start.elapsed().as_secs_f64();
    (eps, summarize(&latencies))
}

fn main() {
    let flink = FlinkProcessor::new();
    let rate = match profile() {
        Profile::Quick => 4.0,
        Profile::Paper => 1.0,
    };
    let mut table = Table::new(
        "Figure 13: Crayfish (kafka) vs standalone (no-kafka) latency (ms, FFNN+ONNX, mp=1)",
        &[
            "bsz",
            "kafka (mean ± std)",
            "no-kafka (mean ± std)",
            "overhead",
        ],
    );
    let mut dump = Vec::new();
    for bsz in [1usize, 32, 128, 512] {
        let mut spec = base_spec(
            ModelSpec::Ffnn,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.bsz = bsz;
        spec.workload = Workload::Constant { rate };
        spec.duration = ffnn_window().mul_f64(1.5);
        let kafka = run(&format!("fig13/kafka/bsz{bsz}"), &flink, &spec);
        let (_, standalone) = run_standalone(bsz, rate, spec.duration);
        let overhead = if standalone.mean > 0.0 {
            format!(
                "+{:.0}%",
                100.0 * (kafka.latency.mean - standalone.mean) / kafka.latency.mean.max(1e-9)
            )
        } else {
            "-".into()
        };
        table.row(vec![
            bsz.to_string(),
            ms_pm(&kafka.latency),
            ms_pm(&standalone),
            overhead,
        ]);
        dump.push(serde_json::json!({
            "bsz": bsz,
            "kafka_mean_ms": kafka.latency.mean,
            "standalone_mean_ms": standalone.mean,
        }));
    }

    // Throughput overhead (paper: 2.42 %): saturate both pipelines.
    let mut spec = base_spec(
        ModelSpec::Ffnn,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
    );
    spec.workload = Workload::Constant {
        rate: OVERLOAD_FFNN,
    };
    let kafka_eps = run("fig13/kafka/throughput", &flink, &spec).throughput_eps;
    let (standalone_eps, _) = run_standalone(1, OVERLOAD_FFNN, ffnn_window());
    table.print();
    println!(
        "\nThroughput: kafka {kafka_eps:.0} events/s vs standalone {standalone_eps:.0} events/s \
         ({:+.1}% overhead; paper measured 2.42%).",
        100.0 * (standalone_eps - kafka_eps) / standalone_eps.max(1e-9)
    );
    println!("Paper shape: the broker costs little throughput but adds up to ~59% extra");
    println!("latency at low rates — the price of realistic, decoupled measurement.");
    dump.push(serde_json::json!({
        "kafka_eps": kafka_eps,
        "standalone_eps": standalone_eps,
    }));
    save_json("fig13", &dump);
}
