//! Property tests of the serialized model formats: arbitrary generated
//! MLPs round-trip through every format, and the decoded graph computes the
//! same function.

use std::sync::Arc;

use proptest::prelude::*;

use crayfish_models::formats::{decode, encode, sniff};
use crayfish_models::ModelFormat;
use crayfish_tensor::{NnGraph, Op, Shape, Tensor};

/// Build a random MLP from a layer-width specification.
fn random_mlp(widths: &[usize], seed: u64) -> NnGraph {
    let mut g = NnGraph::new(format!("mlp-{seed}"));
    let input = g.add(
        "input",
        Op::Input {
            shape: Shape::from([widths[0]]),
        },
        vec![],
    );
    let mut x = g.add("flatten", Op::Flatten, vec![input]);
    for (i, pair) in widths.windows(2).enumerate() {
        let (inf, outf) = (pair[0], pair[1]);
        let w = Arc::new(Tensor::seeded_uniform(
            [inf, outf],
            seed.wrapping_add(i as u64),
            -0.5,
            0.5,
        ));
        let b = Arc::new(Tensor::seeded_uniform(
            [outf],
            seed ^ (i as u64 + 99),
            -0.1,
            0.1,
        ));
        let d = g.add(format!("fc{i}"), Op::Dense { w, b }, vec![x]);
        x = g.add(format!("relu{i}"), Op::Relu, vec![d]);
    }
    g.add("softmax", Op::Softmax, vec![x]);
    g
}

/// Execute an MLP graph directly (small reference interpreter, independent
/// of `crayfish-runtime`).
fn forward(g: &NnGraph, input: &Tensor) -> Vec<f32> {
    let batch = input.batch();
    let mut outputs: Vec<Vec<f32>> = Vec::new();
    for node in g.nodes() {
        let value = match &node.op {
            Op::Input { .. } => input.data().to_vec(),
            Op::Flatten => outputs[node.inputs[0]].clone(),
            Op::Dense { w, b } => {
                let x = &outputs[node.inputs[0]];
                let (inf, outf) = (w.shape().dim(0), w.shape().dim(1));
                let mut out = vec![0.0f32; batch * outf];
                for r in 0..batch {
                    for o in 0..outf {
                        let mut acc = b.data()[o];
                        for i in 0..inf {
                            acc += x[r * inf + i] * w.data()[i * outf + o];
                        }
                        out[r * outf + o] = acc;
                    }
                }
                out
            }
            Op::Relu => outputs[node.inputs[0]].iter().map(|v| v.max(0.0)).collect(),
            Op::Softmax => {
                let x = &outputs[node.inputs[0]];
                let cols = x.len() / batch;
                let mut out = x.clone();
                crayfish_tensor::kernels::activation::softmax_rows(&mut out, batch, cols);
                out
            }
            other => panic!("unexpected op {}", other.kind()),
        };
        outputs.push(value);
    }
    outputs[g.output()].clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_mlps_roundtrip_every_format(
        widths in proptest::collection::vec(1usize..12, 2..5),
        seed in any::<u64>(),
    ) {
        let g = random_mlp(&widths, seed);
        let input = Tensor::seeded_uniform([2, widths[0]], seed ^ 0xF00D, -1.0, 1.0);
        let reference = forward(&g, &input);
        for format in ModelFormat::ALL {
            let bytes = encode(&g, format).unwrap();
            prop_assert_eq!(sniff(&bytes).unwrap(), format);
            let back = decode(&bytes).unwrap();
            prop_assert_eq!(back.param_count(), g.param_count());
            let replay = forward(&back, &input);
            for (a, b) in reference.iter().zip(&replay) {
                prop_assert!((a - b).abs() < 1e-5, "{} vs {} in {}", a, b, format.name());
            }
        }
    }

    #[test]
    fn format_sizes_rank_consistently(
        widths in proptest::collection::vec(4usize..32, 2..4),
        seed in any::<u64>(),
    ) {
        // For any model: onnx <= torch <= h5 <= saved_model (Table 2's
        // ordering holds structurally, not just for the paper's two models).
        let g = random_mlp(&widths, seed);
        let onnx = encode(&g, ModelFormat::Onnx).unwrap().len();
        let torch = encode(&g, ModelFormat::Torch).unwrap().len();
        let h5 = encode(&g, ModelFormat::H5).unwrap().len();
        let saved = encode(&g, ModelFormat::SavedModel).unwrap().len();
        prop_assert!(onnx <= torch);
        prop_assert!(torch <= h5);
        prop_assert!(h5 <= saved);
    }

    #[test]
    fn truncated_models_never_decode(
        widths in proptest::collection::vec(1usize..8, 2..4),
        seed in any::<u64>(),
        cut_fraction in 0.1f64..0.95,
    ) {
        let g = random_mlp(&widths, seed);
        let bytes = encode(&g, ModelFormat::Onnx).unwrap();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < bytes.len());
        prop_assert!(decode(&bytes[..cut]).is_err());
    }
}
