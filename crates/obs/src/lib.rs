//! `crayfish-obs`: live observability for the Crayfish pipeline.
//!
//! Crayfish's post-hoc metrics (`crayfish-core::metrics`) answer "how did
//! the run go"; this crate answers "where is time going right now". It
//! provides:
//!
//! * a fixed per-record **stage taxonomy** ([`Stage`]) with a RAII
//!   [`StageTimer`] that records nanosecond spans into lock-free, sharded,
//!   log-bucketed histograms ([`hist::Histogram`]);
//! * **counters** and **gauges** for records in/out, errors, consumer lag,
//!   queue depths and in-flight requests;
//! * a **Prometheus text-exposition endpoint** ([`export::serve`]) over
//!   localhost TCP, plus a parser for that format ([`text`]) shared by the
//!   `crayfish-top` terminal reporter and the test-suite.
//!
//! Everything is reached through an [`ObsHandle`]. A disabled handle
//! (`ObsHandle::disabled()`, also `Default`) is a `None` and every
//! operation on it is a no-op that never reads the clock, so instrumented
//! hot paths cost nothing when observability is off.
//!
//! ```
//! use crayfish_obs::{ObsHandle, Stage};
//!
//! let obs = ObsHandle::enabled();
//! {
//!     let _span = obs.timer(Stage::Inference); // records on drop
//! }
//! obs.counter("records_out").inc();
//! assert_eq!(obs.stage_snapshot(Stage::Inference).count(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod export;
pub mod hist;
mod stage;
pub mod text;

pub use hist::{Histogram, HistogramSnapshot};
pub use stage::Stage;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Identity of a registered counter/gauge/histogram: a name plus at most
/// one label pair (e.g. `records_in{engine="flink"}`).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    label: Option<(String, String)>,
}

impl MetricKey {
    fn render(&self) -> String {
        match &self.label {
            None => self.name.clone(),
            Some((k, v)) => format!("{}{{{}=\"{}\"}}", self.name, k, v),
        }
    }
}

/// The shared recorder behind an enabled [`ObsHandle`].
pub struct ObsCore {
    stages: [Histogram; Stage::COUNT],
    e2e: Histogram,
    counters: RwLock<BTreeMap<MetricKey, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<MetricKey, Arc<AtomicI64>>>,
    named_hists: RwLock<BTreeMap<MetricKey, Arc<Histogram>>>,
}

impl ObsCore {
    fn new() -> ObsCore {
        ObsCore {
            stages: std::array::from_fn(|_| Histogram::new()),
            e2e: Histogram::new(),
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            named_hists: RwLock::new(BTreeMap::new()),
        }
    }

    fn counter(&self, key: MetricKey) -> Arc<AtomicU64> {
        if let Some(c) = self.counters.read().expect("obs lock").get(&key) {
            return c.clone();
        }
        let mut map = self.counters.write().expect("obs lock");
        map.entry(key).or_default().clone()
    }

    fn gauge(&self, key: MetricKey) -> Arc<AtomicI64> {
        if let Some(g) = self.gauges.read().expect("obs lock").get(&key) {
            return g.clone();
        }
        let mut map = self.gauges.write().expect("obs lock");
        map.entry(key).or_default().clone()
    }

    fn named_hist(&self, key: MetricKey) -> Arc<Histogram> {
        if let Some(h) = self.named_hists.read().expect("obs lock").get(&key) {
            return h.clone();
        }
        let mut map = self.named_hists.write().expect("obs lock");
        map.entry(key)
            .or_insert_with(|| Arc::new(Histogram::new()))
            .clone()
    }
}

impl std::fmt::Debug for ObsCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObsCore {{ e2e: {:?} }}", self.e2e)
    }
}

/// Cheap, cloneable entry point; `None` inside means "disabled" and every
/// method is a branch-and-return no-op.
#[derive(Clone, Debug, Default)]
pub struct ObsHandle(Option<Arc<ObsCore>>);

impl ObsHandle {
    /// A handle on which every operation is a no-op. `Default` gives this.
    pub fn disabled() -> ObsHandle {
        ObsHandle(None)
    }

    /// A fresh live recorder.
    pub fn enabled() -> ObsHandle {
        ObsHandle(Some(Arc::new(ObsCore::new())))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Start a span for `stage`; the elapsed time is recorded when the
    /// returned guard drops (or [`StageTimer::stop`] is called). Disabled
    /// handles return an inert guard without reading the clock.
    #[inline]
    pub fn timer(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer {
            inner: self.0.as_deref().map(|core| (core, stage, Instant::now())),
        }
    }

    /// Record an already-measured span.
    #[inline]
    pub fn observe_stage_ns(&self, stage: Stage, ns: u64) {
        if let Some(core) = &self.0 {
            core.stages[stage.index()].record(ns);
        }
    }

    /// Record one end-to-end record latency.
    #[inline]
    pub fn observe_e2e_ns(&self, ns: u64) {
        if let Some(core) = &self.0 {
            core.e2e.record(ns);
        }
    }

    /// A counter handle. Resolution hits a registry lock, so fetch the
    /// handle once outside hot loops; `inc`/`add` on it are single relaxed
    /// atomics.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, None)
    }

    /// A counter with one label pair, e.g.
    /// `counter_with("records_in", "engine", "flink")`.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Counter {
        self.counter_labeled(name, Some((key, value)))
    }

    fn counter_labeled(&self, name: &str, label: Option<(&str, &str)>) -> Counter {
        Counter(
            self.0
                .as_ref()
                .map(|core| core.counter(metric_key(name, label))),
        )
    }

    /// A gauge handle (same caching guidance as [`ObsHandle::counter`]).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, None)
    }

    pub fn gauge_with(&self, name: &str, key: &str, value: &str) -> Gauge {
        self.gauge_labeled(name, Some((key, value)))
    }

    fn gauge_labeled(&self, name: &str, label: Option<(&str, &str)>) -> Gauge {
        Gauge(
            self.0
                .as_ref()
                .map(|core| core.gauge(metric_key(name, label))),
        )
    }

    /// A named histogram (nanosecond values) outside the stage taxonomy,
    /// e.g. broker long-poll wait time.
    pub fn histogram_ns(&self, name: &str) -> HistHandle {
        HistHandle(
            self.0
                .as_ref()
                .map(|core| core.named_hist(metric_key(name, None))),
        )
    }

    /// Snapshot of one stage's span histogram (empty when disabled).
    pub fn stage_snapshot(&self, stage: Stage) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::empty(),
            Some(core) => core.stages[stage.index()].snapshot(),
        }
    }

    /// Snapshot of the end-to-end latency histogram.
    pub fn e2e_snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::empty(),
            Some(core) => core.e2e.snapshot(),
        }
    }

    /// Current counter values as `(rendered_name, value)`, sorted by name.
    pub fn counter_values(&self) -> Vec<(String, u64)> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => core
                .counters
                .read()
                .expect("obs lock")
                .iter()
                .map(|(k, v)| (k.render(), v.load(Relaxed)))
                .collect(),
        }
    }

    /// Current gauge values as `(rendered_name, value)`, sorted by name.
    pub fn gauge_values(&self) -> Vec<(String, i64)> {
        match &self.0 {
            None => Vec::new(),
            Some(core) => core
                .gauges
                .read()
                .expect("obs lock")
                .iter()
                .map(|(k, v)| (k.render(), v.load(Relaxed)))
                .collect(),
        }
    }

    /// Render the full state in Prometheus text exposition format 0.0.4.
    /// Histogram buckets are cumulative and in **seconds** (recorded values
    /// are nanoseconds).
    pub fn render_prometheus(&self) -> String {
        let core = match &self.0 {
            None => return String::new(),
            Some(core) => core,
        };
        let mut out = String::with_capacity(4096);

        out.push_str("# HELP crayfish_stage_latency_seconds Per-stage span latency.\n");
        out.push_str("# TYPE crayfish_stage_latency_seconds histogram\n");
        for stage in Stage::ALL {
            let snap = core.stages[stage.index()].snapshot();
            render_histogram(
                &mut out,
                "crayfish_stage_latency_seconds",
                &format!("stage=\"{}\"", stage.name()),
                &snap,
            );
        }

        out.push_str("# HELP crayfish_e2e_latency_seconds End-to-end record latency.\n");
        out.push_str("# TYPE crayfish_e2e_latency_seconds histogram\n");
        render_histogram(
            &mut out,
            "crayfish_e2e_latency_seconds",
            "",
            &core.e2e.snapshot(),
        );

        for (key, hist) in core.named_hists.read().expect("obs lock").iter() {
            let name = format!("crayfish_{}_seconds", key.name);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let label = match &key.label {
                None => String::new(),
                Some((k, v)) => format!("{k}=\"{v}\""),
            };
            render_histogram(&mut out, &name, &label, &hist.snapshot());
        }

        for (key, value) in core.counters.read().expect("obs lock").iter() {
            let name = format!("crayfish_{}_total", key.name);
            out.push_str(&format!("# TYPE crayfish_{}_total counter\n", key.name));
            render_scalar(&mut out, &name, &key.label, value.load(Relaxed) as f64);
        }

        for (key, value) in core.gauges.read().expect("obs lock").iter() {
            let name = format!("crayfish_{}", key.name);
            out.push_str(&format!("# TYPE crayfish_{} gauge\n", key.name));
            render_scalar(&mut out, &name, &key.label, value.load(Relaxed) as f64);
        }

        out
    }
}

fn metric_key(name: &str, label: Option<(&str, &str)>) -> MetricKey {
    MetricKey {
        name: name.to_string(),
        label: label.map(|(k, v)| (k.to_string(), v.to_string())),
    }
}

fn render_scalar(out: &mut String, name: &str, label: &Option<(String, String)>, value: f64) {
    match label {
        None => out.push_str(&format!("{name} {value}\n")),
        Some((k, v)) => out.push_str(&format!("{name}{{{k}=\"{v}\"}} {value}\n")),
    }
}

fn render_histogram(out: &mut String, name: &str, label: &str, snap: &HistogramSnapshot) {
    let sep = if label.is_empty() { "" } else { "," };
    let mut cum = 0u64;
    for (high, count) in snap.nonzero_buckets() {
        cum += count;
        let le = high as f64 * 1e-9;
        out.push_str(&format!("{name}_bucket{{{label}{sep}le=\"{le}\"}} {cum}\n"));
    }
    out.push_str(&format!(
        "{name}_bucket{{{label}{sep}le=\"+Inf\"}} {}\n",
        snap.count()
    ));
    let sum_label = if label.is_empty() {
        String::new()
    } else {
        format!("{{{label}}}")
    };
    out.push_str(&format!(
        "{name}_sum{sum_label} {}\n",
        snap.sum() as f64 * 1e-9
    ));
    out.push_str(&format!("{name}_count{sum_label} {}\n", snap.count()));
}

/// RAII span guard returned by [`ObsHandle::timer`].
pub struct StageTimer<'a> {
    inner: Option<(&'a ObsCore, Stage, Instant)>,
}

impl StageTimer<'_> {
    /// Record the span now (equivalent to dropping the guard).
    pub fn stop(self) {}

    /// Discard the span without recording it (e.g. the operation it was
    /// timing turned out to be an idle poll).
    pub fn cancel(mut self) {
        self.inner = None;
    }
}

impl Drop for StageTimer<'_> {
    #[inline]
    fn drop(&mut self) {
        if let Some((core, stage, start)) = self.inner.take() {
            core.stages[stage.index()].record(start.elapsed().as_nanos() as u64);
        }
    }
}

/// Monotonic counter handle; a no-op when obtained from a disabled handle.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    pub fn get(&self) -> u64 {
        self.0.as_ref().map(|c| c.load(Relaxed)).unwrap_or(0)
    }
}

/// Signed gauge handle; a no-op when obtained from a disabled handle.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Relaxed);
        }
    }

    #[inline]
    pub fn add(&self, delta: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(delta, Relaxed);
        }
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn dec(&self) {
        self.add(-1);
    }

    pub fn get(&self) -> i64 {
        self.0.as_ref().map(|g| g.load(Relaxed)).unwrap_or(0)
    }
}

/// Handle to a named (non-stage) nanosecond histogram.
#[derive(Clone, Debug, Default)]
pub struct HistHandle(Option<Arc<Histogram>>);

impl HistHandle {
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        if let Some(h) = &self.0 {
            h.record(ns);
        }
    }

    /// Clock read helper: `Some(now)` only when recording is live, so
    /// disabled handles skip `Instant::now()` entirely.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        self.0.is_some().then(Instant::now)
    }

    /// Record the time since a [`HistHandle::start`] result.
    #[inline]
    pub fn observe_since(&self, start: Option<Instant>) {
        if let (Some(h), Some(t0)) = (&self.0, start) {
            h.record(t0.elapsed().as_nanos() as u64);
        }
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        match &self.0 {
            None => HistogramSnapshot::empty(),
            Some(h) => h.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn disabled_handle_is_inert() {
        let obs = ObsHandle::disabled();
        assert!(!obs.is_enabled());
        {
            let t = obs.timer(Stage::Inference);
            t.stop();
        }
        obs.counter("records_in").inc();
        obs.gauge("lag").set(5);
        obs.histogram_ns("wait").observe_ns(10);
        obs.observe_e2e_ns(1);
        assert!(obs.stage_snapshot(Stage::Inference).is_empty());
        assert!(obs.e2e_snapshot().is_empty());
        assert!(obs.counter_values().is_empty());
        assert_eq!(obs.render_prometheus(), "");
    }

    #[test]
    fn timer_records_into_the_right_stage() {
        let obs = ObsHandle::enabled();
        {
            let _t = obs.timer(Stage::Decode);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = obs.stage_snapshot(Stage::Decode);
        assert_eq!(snap.count(), 1);
        assert!(
            snap.min() >= 1_000_000,
            "at least the 2ms sleep: {}",
            snap.min()
        );
        for stage in Stage::ALL {
            if stage != Stage::Decode {
                assert!(obs.stage_snapshot(stage).is_empty(), "{stage:?} untouched");
            }
        }
    }

    #[test]
    fn cancelled_timer_records_nothing() {
        let obs = ObsHandle::enabled();
        obs.timer(Stage::BrokerFetch).cancel();
        assert!(obs.stage_snapshot(Stage::BrokerFetch).is_empty());
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let obs = ObsHandle::enabled();
        let c = obs.counter("records_in");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same underlying counter.
        assert_eq!(obs.counter("records_in").get(), 5);
        let labeled = obs.counter_with("records_in", "engine", "flink");
        labeled.inc();
        assert_eq!(labeled.get(), 1, "label creates a distinct series");

        let g = obs.gauge("queue_depth");
        g.set(7);
        g.dec();
        assert_eq!(g.get(), 6);
        assert_eq!(
            obs.counter_values(),
            vec![
                ("records_in".to_string(), 5),
                ("records_in{engine=\"flink\"}".to_string(), 1)
            ]
        );
        assert_eq!(obs.gauge_values(), vec![("queue_depth".to_string(), 6)]);
    }

    #[test]
    fn prometheus_render_parses_back() {
        let obs = ObsHandle::enabled();
        obs.observe_stage_ns(Stage::Ingest, 1_500);
        obs.observe_stage_ns(Stage::Ingest, 2_500_000);
        obs.observe_e2e_ns(5_000_000);
        obs.counter("records_out").add(3);
        obs.gauge("consumer_lag").set(12);
        obs.histogram_ns("broker_poll_wait").observe_ns(800);

        let body = obs.render_prometheus();
        let samples = text::parse(&body).expect("render output parses");

        let ingest_count = samples
            .iter()
            .find(|s| {
                s.name == "crayfish_stage_latency_seconds_count"
                    && s.label("stage") == Some("ingest")
            })
            .expect("ingest count present");
        assert_eq!(ingest_count.value, 2.0);

        let inf = samples
            .iter()
            .find(|s| {
                s.name == "crayfish_stage_latency_seconds_bucket"
                    && s.label("stage") == Some("ingest")
                    && s.label("le") == Some("+Inf")
            })
            .expect("+Inf bucket present");
        assert_eq!(inf.value, 2.0);

        // Cumulative bucket counts never decrease.
        let mut prev = 0.0;
        for s in samples.iter().filter(|s| {
            s.name == "crayfish_e2e_latency_seconds_bucket" && s.label("le") != Some("+Inf")
        }) {
            assert!(s.value >= prev);
            prev = s.value;
        }

        assert!(samples
            .iter()
            .any(|s| s.name == "crayfish_records_out_total" && s.value == 3.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "crayfish_consumer_lag" && s.value == 12.0));
        assert!(samples
            .iter()
            .any(|s| s.name == "crayfish_broker_poll_wait_seconds_count" && s.value == 1.0));
    }
}
