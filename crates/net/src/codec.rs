//! Incremental wire-format parsing and blocking frame I/O.
//!
//! Two message shapes, one codec:
//!
//! * **gRPC-like** — `u32 LE length ++ payload`, the frame used by the
//!   TF-Serving / TorchServe analogs and the broker RPC service;
//! * **HTTP-like** — HTTP/1.1 with a `Content-Length` body (Ray Serve
//!   analog).
//!
//! The `poll_parse*` functions are the reactor's hot path: they carve one
//! complete message out of a connection's buffered bytes without consuming
//! input or allocating (covered by the `HOT_PATH_ALLOC` lint), and report
//! `Incomplete` until a full message is buffered — any split boundary,
//! byte-at-a-time included, resumes cleanly. The blocking
//! [`write_frame`]/[`read_frame`] pair is the client-side counterpart over
//! an ordinary socket.

use std::io::{Read, Write};

use crate::{NetError, Result};

/// Maximum accepted frame/body size (mirrors the paper's 50 MB Kafka cap).
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// One step of wire parsing over `buf` (the unparsed tail of a
/// connection's input buffer). Indices are relative to `buf`.
#[derive(Debug)]
pub enum ParseStep {
    /// A complete message: payload at `[start..end)`, `consumed` bytes
    /// total (framing included).
    Msg {
        /// Payload start, relative to the parsed buffer.
        start: usize,
        /// Payload end (exclusive).
        end: usize,
        /// Total bytes consumed, framing included.
        consumed: usize,
    },
    /// Need more bytes.
    Incomplete,
    /// Unrecoverable framing violation; kill the connection.
    Bad,
}

/// Try to carve one complete message of `wire` shape out of `buf`.
pub fn poll_parse(wire: crate::reactor::Wire, buf: &[u8]) -> ParseStep {
    match wire {
        crate::reactor::Wire::Grpc => poll_parse_grpc(buf),
        crate::reactor::Wire::Http => poll_parse_http(buf),
    }
}

/// Length-prefixed frame: `u32 LE length ++ payload`.
pub fn poll_parse_grpc(buf: &[u8]) -> ParseStep {
    let Some(len_bytes) = buf.first_chunk::<4>() else {
        return ParseStep::Incomplete;
    };
    let len = u32::from_le_bytes(*len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return ParseStep::Bad;
    }
    if buf.len() < 4 + len {
        return ParseStep::Incomplete;
    }
    ParseStep::Msg {
        start: 4,
        end: 4 + len,
        consumed: 4 + len,
    }
}

/// HTTP/1.1 message with a `Content-Length` body. The payload handed to
/// dispatch is the body; the request line and headers are framing (every
/// request hits the one `/infer` route).
pub fn poll_parse_http(buf: &[u8]) -> ParseStep {
    let Some(head_end) = find_double_crlf(buf) else {
        return ParseStep::Incomplete;
    };
    let Some(len) = http_content_length(&buf[..head_end]) else {
        return ParseStep::Bad;
    };
    if len > MAX_FRAME_BYTES {
        return ParseStep::Bad;
    }
    let body_start = head_end + 4;
    if buf.len() < body_start + len {
        return ParseStep::Incomplete;
    }
    ParseStep::Msg {
        start: body_start,
        end: body_start + len,
        consumed: body_start + len,
    }
}

/// Offset of the first `\r\n\r\n` in `buf`, if any.
pub fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Parse the `Content-Length` header out of a raw header block without
/// allocating.
pub fn http_content_length(head: &[u8]) -> Option<usize> {
    const KEY: &[u8] = b"content-length:";
    for line in head.split(|&b| b == b'\n') {
        if line.len() < KEY.len() {
            continue;
        }
        if !line[..KEY.len()].eq_ignore_ascii_case(KEY) {
            continue;
        }
        let mut value: usize = 0;
        let mut seen = false;
        for &b in &line[KEY.len()..] {
            match b {
                b' ' | b'\t' if !seen => {}
                b'\r' => break,
                b'0'..=b'9' => {
                    seen = true;
                    value = value.checked_mul(10)?.checked_add((b - b'0') as usize)?;
                }
                _ => return None,
            }
        }
        return seen.then_some(value);
    }
    None
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!(
            "frame of {} bytes exceeds cap",
            payload.len()
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Build one length-prefixed frame as a byte vector — what [`write_frame`]
/// puts on the wire, for transports (the reactor) that queue response
/// bytes instead of writing them inline.
pub fn frame_bytes(payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!(
            "frame of {} bytes exceeds cap",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Read one length-prefixed frame. Returns `None` on clean EOF at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(NetError::Frame(format!("frame of {len} bytes exceeds cap")));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_bytes_matches_write_frame() {
        let mut written = Vec::new();
        write_frame(&mut written, b"payload").unwrap();
        assert_eq!(frame_bytes(b"payload").unwrap(), written);
        assert!(frame_bytes(&vec![0u8; MAX_FRAME_BYTES + 1]).is_err());
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frames_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
        assert!(matches!(
            poll_parse_grpc(&(u32::MAX).to_le_bytes()),
            ParseStep::Bad
        ));
    }

    #[test]
    fn content_length_is_parsed_case_insensitively() {
        assert_eq!(
            http_content_length(b"POST / HTTP/1.1\r\ncOnTeNt-LeNgTh:  42\r"),
            Some(42)
        );
        assert_eq!(http_content_length(b"POST / HTTP/1.1\r\nHost: x\r"), None);
        assert_eq!(http_content_length(b"content-length: 1x\r"), None);
    }
}
