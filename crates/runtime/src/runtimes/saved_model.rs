//! TensorFlow SavedModel analog: the format-specialised embedded library.

use crayfish_models::ModelFormat;
use crayfish_sim::calibration;
use crayfish_tensor::{NnGraph, Tensor};

use crate::device::Device;
use crate::exec::{GpuExec, UnfusedExec};
use crate::precision::{Precision, QuantConfig};
use crate::runtimes::{EmbeddedRuntime, GpuModel, LoadedModel};
use crate::Result;

/// The SavedModel-style embedded library.
///
/// Executes the graph directly (no cross-op fusion) but keeps per-node
/// buffers alive across calls, as TensorFlow's session executor does for a
/// static graph, and pays the calibrated `session.run` feed/fetch dispatch
/// per apply. Slightly slower than the ONNX analog, well ahead of the
/// marshalling-bound DL4J analog — the ordering the paper measures in
/// Table 4.
#[derive(Debug, Default, Clone, Copy)]
pub struct SavedModelRuntime {
    quant: QuantConfig,
}

impl SavedModelRuntime {
    /// Create the runtime (f32 plans).
    pub fn new() -> Self {
        SavedModelRuntime::default()
    }

    /// Compile CPU plans at `precision` with the default calibration gate
    /// (the GPU path always stays f32).
    pub fn with_precision(precision: Precision) -> Self {
        Self::with_quant(QuantConfig::with_precision(precision))
    }

    /// Compile CPU plans with an explicit quantization config.
    pub fn with_quant(quant: QuantConfig) -> Self {
        SavedModelRuntime { quant }
    }
}

impl EmbeddedRuntime for SavedModelRuntime {
    fn name(&self) -> &'static str {
        "saved_model"
    }

    fn expected_format(&self) -> ModelFormat {
        ModelFormat::SavedModel
    }

    fn load_graph(&self, graph: &NnGraph, device: Device) -> Result<Box<dyn LoadedModel>> {
        match device {
            Device::Cpu => Ok(Box::new(SessionModel {
                exec: UnfusedExec::with_precision(graph.clone(), true, None, self.quant)?,
            })),
            Device::Gpu(spec) => Ok(Box::new(GpuModel {
                name: self.name(),
                exec: GpuExec::new(graph, spec)?,
            })),
        }
    }
}

/// An unfused executor behind a TensorFlow-style session boundary.
struct SessionModel {
    exec: UnfusedExec,
}

impl LoadedModel for SessionModel {
    fn runtime_name(&self) -> &'static str {
        "saved_model"
    }
    fn apply(&mut self, input: &Tensor) -> Result<Tensor> {
        // session.run dispatch: feed/fetch marshalling machinery.
        calibration::TF_SESSION_RUN.spend(input.numel() * 4);
        self.exec.run(input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;
    use crayfish_tensor::Tensor;

    #[test]
    fn loads_and_scores() {
        let rt = SavedModelRuntime::new();
        let mut model = rt.load_graph(&tiny::tiny_cnn(1), Device::Cpu).unwrap();
        let out = model
            .apply(&Tensor::seeded_uniform([1, 3, 8, 8], 3, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[1, 4]);
    }

    #[test]
    fn expected_format_is_saved_model() {
        assert_eq!(
            SavedModelRuntime::new().expected_format(),
            ModelFormat::SavedModel
        );
    }
}
