//! Loom models for the chaos crate's concurrency-bearing pieces: the
//! circuit breaker's trip/probe races and the supervisor's crash/restart
//! handoff. Compiled only under `RUSTFLAGS="--cfg loom"`; each `model`
//! closure is executed under every feasible thread interleaving.
#![cfg(loom)]

use std::time::Duration;

use crayfish_chaos::{
    supervise, BreakerConfig, ChaosHandle, CircuitBreaker, CircuitState, SupervisorConfig,
    WorkerExit,
};
use crayfish_obs::ObsHandle;
use crayfish_sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crayfish_sync::{model, thread, Arc};

/// Regression model for the double-trip bug: two failures racing past the
/// threshold must open the circuit exactly once. The original `on_failure`
/// tripped unconditionally, so the loser of the race re-stamped `opened_at`
/// and stretched the cooldown.
#[test]
fn racing_failures_trip_the_breaker_exactly_once() {
    model(|| {
        let b = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_secs(3600),
            half_open_probes: 1,
        }));
        let b2 = Arc::clone(&b);
        let t = thread::spawn(move || b2.on_failure());
        b.on_failure();
        t.join().unwrap();
        assert_eq!(b.state(), CircuitState::Open);
        assert_eq!(b.trips(), 1, "a burst of failures must trip once");
    });
}

/// Two callers racing into a cooled-down circuit: exactly one wins the
/// half-open probe slot.
#[test]
fn half_open_admits_exactly_one_probe() {
    model(|| {
        let b = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
            half_open_probes: 1,
        }));
        b.on_failure();
        assert_eq!(b.state(), CircuitState::Open);
        let b2 = Arc::clone(&b);
        let t = thread::spawn(move || b2.try_acquire());
        let mine = b.try_acquire();
        let theirs = t.join().unwrap();
        assert!(
            mine ^ theirs,
            "exactly one probe may pass a half-open circuit (got {mine}/{theirs})"
        );
    });
}

/// Commit-after-crash handoff: an incarnation that commits and then fails
/// must hand the committed state to its replacement, under every
/// interleaving with a concurrently raised stop flag.
#[test]
fn supervisor_restart_observes_pre_crash_commit() {
    model(|| {
        let stop = Arc::new(AtomicBool::new(false));
        let committed = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&committed);
        let mut first = true;
        let h = supervise(
            "loom-worker".into(),
            Arc::clone(&stop),
            ObsHandle::disabled(),
            ChaosHandle::disabled(),
            SupervisorConfig {
                restart_backoff: Duration::from_nanos(1),
                max_backoff: Duration::from_nanos(1),
            },
            move |_incarnation| {
                if first {
                    first = false;
                    c2.store(1, Ordering::SeqCst);
                    WorkerExit::Failed("crash after commit".into())
                } else {
                    assert_eq!(c2.load(Ordering::SeqCst), 1, "restart lost the commit");
                    WorkerExit::Stopped
                }
            },
        );
        // Racing stop: the supervisor may restart the worker or exit from
        // the backoff sleep, but either way it must terminate and the
        // commit must survive.
        stop.store(true, Ordering::SeqCst);
        h.join().unwrap();
        assert_eq!(committed.load(Ordering::SeqCst), 1);
    });
}
