//! **Table 5** — FFNN sustainable throughput across the four stream
//! processors, with embedded ONNX and external TF-Serving (`bsz=1`, `mp=1`).

use crayfish::prelude::*;
use crayfish_bench::*;

fn paper(engine: &str, tool: &str) -> f64 {
    match (engine, tool) {
        ("flink", "onnx (e)") => 1373.07,
        ("flink", "tf-serving (x)") => 617.2,
        ("kstreams", "onnx (e)") => 2054.21,
        ("kstreams", "tf-serving (x)") => 702.12,
        ("sparkss", "onnx (e)") => 4044.99,
        ("sparkss", "tf-serving (x)") => 3924.49,
        ("ray", "onnx (e)") => 157.4,
        ("ray", "tf-serving (x)") => 122.44,
        _ => 0.0,
    }
}

fn main() {
    let tools = [
        (
            "onnx (e)",
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        ),
        (
            "tf-serving (x)",
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        ),
    ];
    let mut table = Table::new(
        "Table 5: FFNN throughput across stream processors (events/s, bsz=1, mp=1)",
        &["engine", "serving tool", "measured", "paper"],
    );
    let mut dump = Vec::new();
    for (engine, processor) in registry::all_processors() {
        for (tool, serving) in tools {
            let mut spec = base_spec(ModelSpec::Ffnn, serving);
            spec.workload = Workload::Constant {
                rate: OVERLOAD_FFNN,
            };
            let result = run(
                &format!("table5/{engine}/{tool}"),
                processor.as_ref(),
                &spec,
            );
            table.row(vec![
                engine.into(),
                tool.into(),
                eps(result.throughput_eps),
                eps(paper(engine, tool)),
            ]);
            dump.push(Measurement::of(format!("{engine}/{tool}"), &result));
        }
    }
    table.print();
    println!("\nPaper shape: sparkss highest (micro-batching amortises overheads and");
    println!("nearly erases the embedded/external gap); kstreams > flink; ray lowest.");
    save_json("table5", &dump);
}
