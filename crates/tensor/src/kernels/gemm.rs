//! General matrix multiplication and the dense (fully connected) layer.
//!
//! Three tiers, slowest to fastest, all kept callable because the bench
//! ablation (`crayfish-bench`, `micro_gemm`) measures each step:
//!
//! 1. [`matmul_naive`] — textbook `i-j-p` oracle, tests only;
//! 2. [`gemm_ipj`] — the original streaming kernel ("seed"); still the best
//!    choice for tiny products where packing overhead dominates;
//! 3. the blocked path — operands packed into strip panels
//!    ([`crate::kernels::pack`]), driven through the `MR×NR` register-tiled
//!    microkernel ([`crate::kernels::microkernel`]) with `KC`/`MC`/`NC`
//!    cache blocking, optionally spread across the worker pool
//!    ([`crate::par`]).
//!
//! The public [`gemm`] keeps the historic signature and routes by problem
//! size; hot paths (the executors) call the `_scratch`/`_prepacked` entry
//! points instead so packing buffers come from a caller-owned
//! [`GemmScratch`] and weight operands are packed once at plan-compile
//! time.

use crate::kernels::microkernel::{microkernel, store_tile_add, KC, MC_STRIPS, MR, NC_STRIPS, NR};
use crate::kernels::pack::{
    a_strips, b_strips, pack_a_into, pack_b_into, packed_a_len, packed_b_len,
};
use crate::packed::{with_tls_scratch, GemmScratch, PackedA, PackedB};
use crate::par::ThreadPool;

/// Below this `m·k·n` the packed path's pack+store overhead outweighs its
/// FLOP rate and [`gemm_ipj`] wins (measured in `micro_gemm`; a 32³ GEMM
/// sits right at the crossover).
pub(crate) const SMALL_GEMM_WORK: usize = 32 * 32 * 32;

/// Below this `m·k·n` a single core finishes faster than the pool's
/// submit/merge handshake can pay for itself (~a 128³ GEMM per worker).
pub(crate) const MT_MIN_WORK: usize = 2 * 1024 * 1024;

/// `C += A * B` where `A` is `m×k`, `B` is `k×n`, `C` is `m×n`, all
/// row-major.
///
/// Compatibility entry point: routes to [`gemm_ipj`] for small problems and
/// otherwise to the blocked path with a thread-local scratch (and the
/// global worker pool when the problem is large enough). Callers with a hot
/// loop should hold their own [`GemmScratch`] and use [`gemm_scratch`] or
/// the prepacked variants.
///
/// # Panics
/// Panics if the slice lengths do not match the given dimensions.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    if m * k * n <= SMALL_GEMM_WORK {
        gemm_ipj(a, b, c, m, k, n);
    } else {
        with_tls_scratch(|scratch| gemm_scratch(a, b, c, m, k, n, scratch));
    }
}

/// The original streaming kernel: `i-p-j` loop order keeps the innermost
/// loop running over contiguous rows of `B` and `C`, which LLVM
/// auto-vectorises. No packing, no blocking — optimal for small problems,
/// memory-bound on large ones (every pass over `B` misses cache once `B`
/// outgrows L2). Kept verbatim as the ablation baseline and small-size
/// path.
pub fn gemm_ipj(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// Cache-blocked `i-p-j` without packing: the `K` dimension is tiled by
/// [`KC`] and rows by `MC` so the touched slice of `B` stays cache-resident
/// across the row block. The middle rung of the ablation ladder — isolates
/// the benefit of blocking from the benefit of packing.
pub fn gemm_tiled_unpacked(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    let mc = MC_STRIPS * MR;
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        for ic in (0..m).step_by(mc) {
            let ic_end = (ic + mc).min(m);
            for i in ic..ic_end {
                let a_row = &a[i * k + pc..i * k + pc + kc];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (p, &av) in a_row.iter().enumerate() {
                    let b_row = &b[(pc + p) * n..(pc + p + 1) * n];
                    for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

/// The blocked driver over packed operands: `C += A * B` restricted to row
/// strips `[s0, s1)` of `A`, writing into `c` whose row 0 is global row
/// `c_row0` (leading dimension `n`). The loop nest is the classic
/// `jc → pc → ic → jr → ir` order so a [`KC`]`×NC` slice of packed `B`
/// stays in L2/L3, an `MC×`[`KC`] slice of packed `A` in L2, and one `B`
/// strip slice in L1 across the `ir` loop.
#[allow(clippy::too_many_arguments)] // a GEMM driver's natural signature
pub(crate) fn gemm_packed_region(
    pa: &[f32],
    pb: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    s0: usize,
    s1: usize,
    c_row0: usize,
) {
    let bs = b_strips(n);
    for jcb in (0..bs).step_by(NC_STRIPS) {
        let jc_end = (jcb + NC_STRIPS).min(bs);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for icb in (s0..s1).step_by(MC_STRIPS) {
                let ic_end = (icb + MC_STRIPS).min(s1);
                for js in jcb..jc_end {
                    let b_panel = &pb[js * k * NR + pc * NR..][..kc * NR];
                    let col0 = js * NR;
                    let nr_eff = NR.min(n - col0);
                    for is in icb..ic_end {
                        let a_panel = &pa[is * k * MR + pc * MR..][..kc * MR];
                        let acc = microkernel(a_panel, b_panel, kc);
                        let row0 = is * MR;
                        let mr_eff = MR.min(m - row0);
                        store_tile_add(&acc, c, n, row0 - c_row0, col0, mr_eff, nr_eff);
                    }
                }
            }
        }
    }
}

fn pack_both(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, scratch: &mut GemmScratch) {
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(b.len(), k * n, "gemm: B length");
    pack_a_into(a, m, k, scratch.pa_mut(packed_a_len(m, k)));
    pack_b_into(b, k, n, scratch.pb_mut(packed_b_len(k, n)));
}

/// Blocked `C += A * B` with caller-owned packing scratch; uses the global
/// worker pool when the problem is large enough ([`MT_MIN_WORK`]) and a
/// pool is configured.
pub fn gemm_scratch(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_both(a, b, m, k, n, scratch);
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(scratch.pa_arc(), scratch.pb_arc(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(
        scratch.pa_arc(),
        scratch.pb_arc(),
        c,
        m,
        k,
        n,
        0,
        a_strips(m),
        0,
    );
}

/// Blocked `C += A * B`, forced single-threaded. Ablation rung
/// "tiled+packed"; also what [`gemm_scratch`] degrades to without a pool.
pub fn gemm_st(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) {
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_both(a, b, m, k, n, scratch);
    gemm_packed_region(
        scratch.pa_arc(),
        scratch.pb_arc(),
        c,
        m,
        k,
        n,
        0,
        a_strips(m),
        0,
    );
}

/// Blocked `C += A * B` on an explicit pool regardless of problem size.
/// Used by the bench ablation and the loom models, which need the
/// threading path exercised deterministically.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_pool(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
    pool: &ThreadPool,
) {
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_both(a, b, m, k, n, scratch);
    pool.gemm(scratch.pa_arc(), scratch.pb_arc(), c, m, k, n);
}

/// `C += A * B` with `A` pre-packed (convolution weights in executor
/// plans). Only `B` — the per-call activation operand — is packed here,
/// into the caller's scratch.
pub fn gemm_prepacked_a(
    pa: &PackedA,
    b: &[f32],
    c: &mut [f32],
    n: usize,
    scratch: &mut GemmScratch,
) {
    let (m, k) = (pa.m(), pa.k());
    assert_eq!(b.len(), k * n, "gemm: B length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_b_into(b, k, n, scratch.pb_mut(packed_b_len(k, n)));
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(pa.data(), scratch.pb_arc(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(pa.data(), scratch.pb_arc(), c, m, k, n, 0, a_strips(m), 0);
}

/// `C += A * B` with `B` pre-packed (dense weights in executor plans).
pub fn gemm_prepacked_b(
    a: &[f32],
    pb: &PackedB,
    c: &mut [f32],
    m: usize,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (pb.k(), pb.n());
    assert_eq!(a.len(), m * k, "gemm: A length");
    assert_eq!(c.len(), m * n, "gemm: C length");
    pack_a_into(a, m, k, scratch.pa_mut(packed_a_len(m, k)));
    if m * k * n >= MT_MIN_WORK {
        if let Some(pool) = crate::par::global() {
            pool.gemm(scratch.pa_arc(), pb.data(), c, m, k, n);
            return;
        }
    }
    gemm_packed_region(scratch.pa_arc(), pb.data(), c, m, k, n, 0, a_strips(m), 0);
}

/// Textbook triple-loop matmul returning a fresh buffer. Used only as the
/// reference implementation in tests and property checks.
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Fully connected layer: `out = x * w + bias` where `x` is
/// `[batch, in_features]`, `w` is `[in_features, out_features]`, and `bias`
/// has `out_features` elements broadcast across the batch. Allocating
/// compatibility wrapper over [`dense_into`].
pub fn dense(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    inf: usize,
    outf: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * outf];
    with_tls_scratch(|scratch| dense_into(x, w, bias, batch, inf, outf, &mut out, scratch));
    out
}

/// [`dense`] into a caller-provided buffer with caller-owned scratch — the
/// allocation-free form the executors drive from their arenas.
#[allow(clippy::too_many_arguments)]
pub fn dense_into(
    x: &[f32],
    w: &[f32],
    bias: &[f32],
    batch: usize,
    inf: usize,
    outf: usize,
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    assert_eq!(bias.len(), outf, "dense: bias length");
    assert_eq!(out.len(), batch * outf, "dense: out length");
    for row in out.chunks_exact_mut(outf) {
        row.copy_from_slice(bias);
    }
    if batch * inf * outf <= SMALL_GEMM_WORK || batch < MR {
        // Tiny or skinny batches: packing A wastes MR/batch of the panel;
        // the streaming kernel reads x exactly once either way.
        gemm_ipj(x, w, out, batch, inf, outf);
    } else {
        gemm_scratch(x, w, out, batch, inf, outf, scratch);
    }
}

/// [`dense_into`] against a weight matrix packed once at plan-compile
/// time. Steady-state inference does zero weight packing; only the
/// activation rows are packed, into the caller's scratch.
pub fn dense_prepacked_into(
    x: &[f32],
    w: &PackedB,
    bias: &[f32],
    batch: usize,
    out: &mut [f32],
    scratch: &mut GemmScratch,
) {
    let outf = w.n();
    assert_eq!(bias.len(), outf, "dense: bias length");
    assert_eq!(out.len(), batch * outf, "dense: out length");
    for row in out.chunks_exact_mut(outf) {
        row.copy_from_slice(bias);
    }
    gemm_prepacked_b(x, w, out, batch, scratch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_matches_hand_computed() {
        // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        gemm(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm(&a, &b, &mut c, 1, 1, 1);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    fn dense_applies_bias_per_row() {
        // x = [[1, 1], [2, 2]], w = identity, bias = [10, 20]
        let x = vec![1.0, 1.0, 2.0, 2.0];
        let w = vec![1.0, 0.0, 0.0, 1.0];
        let out = dense(&x, &w, &[10.0, 20.0], 2, 2, 2);
        assert_eq!(out, vec![11.0, 21.0, 12.0, 22.0]);
    }

    #[test]
    fn non_square_shapes() {
        // 1x3 * 3x2
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut c = vec![0.0; 2];
        gemm(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, vec![22.0, 28.0]);
    }

    #[test]
    fn packed_paths_match_naive_on_edge_remainders() {
        // Dimensions straddling every MR/NR strip boundary near one strip.
        let mut scratch = GemmScratch::new();
        let dims = [1usize, 2, MR - 1, MR, MR + 1, NR - 1, NR, NR + 1, 33];
        for &m in &dims {
            for &k in &[1usize, 3, 17] {
                for &n in &dims {
                    let a = crate::Tensor::seeded_uniform([m, k], 11, -1.0, 1.0);
                    let b = crate::Tensor::seeded_uniform([k, n], 13, -1.0, 1.0);
                    let reference = matmul_naive(a.data(), b.data(), m, k, n);
                    let mut c = vec![0.0f32; m * n];
                    gemm_st(a.data(), b.data(), &mut c, m, k, n, &mut scratch);
                    for i in 0..m * n {
                        assert!(
                            (c[i] - reference[i]).abs() < 1e-4,
                            "st ({m},{k},{n})[{i}]: {} vs {}",
                            c[i],
                            reference[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepacked_variants_match_dense_and_gemm() {
        let mut scratch = GemmScratch::new();
        let (m, k, n) = (10usize, 19usize, 21usize);
        let a = crate::Tensor::seeded_uniform([m, k], 3, -1.0, 1.0);
        let b = crate::Tensor::seeded_uniform([k, n], 4, -1.0, 1.0);
        let reference = matmul_naive(a.data(), b.data(), m, k, n);

        let pa = crate::packed::PackedA::pack(a.data(), m, k);
        let mut c1 = vec![0.0f32; m * n];
        gemm_prepacked_a(&pa, b.data(), &mut c1, n, &mut scratch);

        let pb = crate::packed::PackedB::pack(b.data(), k, n);
        let mut c2 = vec![0.0f32; m * n];
        gemm_prepacked_b(a.data(), &pb, &mut c2, m, &mut scratch);

        for i in 0..m * n {
            assert!((c1[i] - reference[i]).abs() < 1e-4, "prepacked_a [{i}]");
            assert!((c2[i] - reference[i]).abs() < 1e-4, "prepacked_b [{i}]");
        }

        let bias: Vec<f32> = (0..n).map(|v| v as f32 / 7.0).collect();
        let via_dense = dense(a.data(), b.data(), &bias, m, k, n);
        let mut via_packed = vec![0.0f32; m * n];
        dense_prepacked_into(a.data(), &pb, &bias, m, &mut via_packed, &mut scratch);
        for i in 0..m * n {
            assert!(
                (via_dense[i] - via_packed[i]).abs() < 1e-4,
                "dense prepacked [{i}]"
            );
        }
    }

    proptest! {
        #[test]
        fn gemm_matches_naive(
            m in 1usize..6,
            k in 1usize..6,
            n in 1usize..6,
            seed in any::<u64>(),
        ) {
            let a = crate::Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], seed.wrapping_add(1), -1.0, 1.0);
            let mut c = vec![0.0f32; m * n];
            gemm(a.data(), b.data(), &mut c, m, k, n);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);
            for (x, y) in c.iter().zip(&reference) {
                prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }

        #[test]
        fn tiled_and_packed_match_naive(
            m in 1usize..40,
            k in 1usize..40,
            n in 1usize..40,
            seed in any::<u64>(),
        ) {
            let a = crate::Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
            let b = crate::Tensor::seeded_uniform([k, n], seed.wrapping_add(1), -1.0, 1.0);
            let c0 = crate::Tensor::seeded_uniform([m, n], seed.wrapping_add(2), -1.0, 1.0);
            let reference = matmul_naive(a.data(), b.data(), m, k, n);

            let mut c_tiled = c0.data().to_vec();
            gemm_tiled_unpacked(a.data(), b.data(), &mut c_tiled, m, k, n);

            let mut scratch = GemmScratch::new();
            let mut c_packed = c0.data().to_vec();
            gemm_st(a.data(), b.data(), &mut c_packed, m, k, n, &mut scratch);

            for i in 0..m * n {
                let expect = c0.data()[i] + reference[i];
                prop_assert!((c_tiled[i] - expect).abs() < 1e-4, "tiled [{i}]");
                prop_assert!((c_packed[i] - expect).abs() < 1e-4, "packed [{i}]");
            }
        }
    }
}
