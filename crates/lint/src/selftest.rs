//! `--self-test`: seeded violations each rule must flag, plus clean
//! snippets it must not. A lint that cannot catch a planted bug is worse
//! than no lint — CI runs this before trusting the real pass.
//!
//! Every case runs through `lint_files` — the same engine as the real
//! scan, per-file rules, interprocedural analyses, and suppressions
//! included — over a small synthetic project (one or more files).

use crate::analysis;
use crate::rules;
use crate::source::SourceFile;

struct Case {
    rule: &'static str,
    /// `(rel, code)` pairs forming a synthetic project.
    files: &'static [(&'static str, &'static str)],
    /// Expected number of *active* findings of `rule`.
    expect: usize,
}

const CASES: &[Case] = &[
    Case {
        rule: rules::CLOCK_AUTHORITY,
        files: &[(
            "crates/core/src/seeded.rs",
            "fn f() { let t = std::time::Instant::now(); }",
        )],
        expect: 1,
    },
    Case {
        rule: rules::CLOCK_AUTHORITY,
        files: &[(
            "crates/core/src/seeded.rs",
            // Test code and comments are exempt.
            "// Instant::now()\n#[cfg(test)]\nmod tests { fn f() { Instant::now(); } }\n",
        )],
        expect: 0,
    },
    Case {
        rule: rules::CLOCK_AUTHORITY,
        files: &[(
            "crates/sim/src/time.rs",
            // The clock authority itself is exempt.
            "pub fn now() -> Instant { Instant::now() }",
        )],
        expect: 0,
    },
    Case {
        rule: analysis::LOCK_RANK,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Version (rank 40) held, then registry (rank 10): inverted.
            "struct B; impl B { fn f(&self) { let v = self.version.lock(); \
             let t = self.topics.read(); } }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::LOCK_RANK,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Rank-ascending, and re-acquisition after drop: both fine.
            "struct B; impl B { fn f(&self) { let t = self.topics.read(); \
             let v = self.version.lock(); drop(v); drop(t); \
             let o = self.offsets.write(); } }",
        )],
        expect: 0,
    },
    Case {
        rule: analysis::LOCK_RANK,
        files: &[(
            "crates/broker/src/seeded.rs",
            // `if let`-bound guards are held too (old parser missed this).
            "struct B; impl B { fn f(&self) { \
             if let Some(v) = self.version.lock().as_ref() { \
             let t = self.topics.read(); } } }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::LOCK_RANK,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Destructured guards bind positionally.
            "struct B; impl B { fn f(&self) { \
             let (v, n) = (self.version.lock(), 0); \
             let t = self.topics.read(); } }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::LOCK_RANK,
        files: &[(
            "crates/broker/src/seeded.rs",
            // `std::mem::drop(g)` releases like bare `drop(g)`.
            "struct B; impl B { fn f(&self) { let g = self.version.lock(); \
             std::mem::drop(g); let t = self.topics.read(); } }",
        )],
        expect: 0,
    },
    Case {
        rule: analysis::LOCK_RANK_CHAIN,
        files: &[(
            "crates/broker/src/seeded.rs",
            // The inversion hides behind a call edge: f holds version
            // (rank 40) and calls helper, which takes topics (rank 10).
            "struct B; impl B { \
             fn f(&self) { let v = self.version.lock(); self.helper(); } \
             fn helper(&self) { let t = self.topics.read(); } }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::LOCK_RANK_CHAIN,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Two hops: f -> mid -> leaf.
            "struct B; impl B { \
             fn f(&self) { let v = self.repl.lock(); self.mid(); } \
             fn mid(&self) { self.leaf(); } \
             fn leaf(&self) { let g = self.groups.lock(); } }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::LOCK_RANK_CHAIN,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Rank-ascending through the call edge: clean.
            "struct B; impl B { \
             fn f(&self) { let t = self.topics.read(); self.helper(); } \
             fn helper(&self) { let v = self.version.lock(); } }",
        )],
        expect: 0,
    },
    Case {
        rule: analysis::LOCK_ORDER_CYCLE,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Two unranked locks taken in both orders: no rank table
            // catches this, the empirical graph does.
            "struct B; impl B { \
             fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } \
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); } }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::LOCK_ORDER_CYCLE,
        files: &[(
            "crates/broker/src/seeded.rs",
            // Same order in both fns: consistent, acyclic.
            "struct B; impl B { \
             fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } \
             fn g(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } }",
        )],
        expect: 0,
    },
    Case {
        rule: rules::SPAN_COVERAGE,
        files: &[(
            "crates/engine-kernel/src/seeded.rs",
            "fn run(&mut self) { loop { let r = self.consumer.poll(t); emit(r); } }",
        )],
        expect: 1,
    },
    Case {
        rule: rules::SPAN_COVERAGE,
        files: &[(
            "crates/engine-kernel/src/seeded.rs",
            "fn run(&mut self, ctl: &Ctl) { loop { \
             if let Some(e) = ctl.checkpoint() { return e; } \
             let r = self.consumer.poll(t); charge_ingest(obs, c, r.len()); } }",
        )],
        expect: 0,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        files: &[(
            "crates/tensor/src/kernels/seeded.rs",
            // Four distinct allocation spellings in one kernel body.
            "fn k(x: &[f32]) -> Vec<f32> { let s = Vec::new(); let t = vec![0.0; 4]; \
             let u = x.to_vec(); let v: Vec<f32> = x.iter().map(|a| a + 1.0).collect(); v }",
        )],
        expect: 4,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        files: &[(
            "crates/tensor/src/kernels/seeded.rs",
            // `_into` style with caller-owned output, and test code, are fine.
            "fn k_into(x: &[f32], out: &mut [f32]) { out.copy_from_slice(x); }\n\
             #[cfg(test)]\nmod tests { fn t() { let v = vec![0.0; 4]; } }\n",
        )],
        expect: 0,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        files: &[(
            "crates/net/src/reactor.rs",
            // Reactor poll helpers must reuse connection buffers.
            "fn poll_read(c: &mut Conn) -> bool { let tmp = c.buf.to_vec(); tmp.len() > 0 }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::HOT_PATH_ALLOC_TRANSITIVE,
        files: &[
            (
                "crates/tensor/src/kernels/seeded.rs",
                // The kernel itself is clean; its helper two crates-files
                // away allocates.
                "pub fn k(x: &[f32], out: &mut [f32]) { pack_panel(x, out); }",
            ),
            (
                "crates/tensor/src/packed.rs",
                "pub fn pack_panel(x: &[f32], out: &mut [f32]) { \
                 let tmp = x.to_vec(); out.copy_from_slice(&tmp); }",
            ),
        ],
        expect: 1,
    },
    Case {
        rule: analysis::HOT_PATH_ALLOC_TRANSITIVE,
        files: &[
            (
                "crates/tensor/src/kernels/seeded.rs",
                "pub fn k(x: &[f32], out: &mut [f32]) { pack_panel(x, out); }",
            ),
            (
                "crates/tensor/src/packed.rs",
                // Allocation-free helper: clean. The allocating fn is not
                // reachable from any kernel.
                "pub fn pack_panel(x: &[f32], out: &mut [f32]) { out.copy_from_slice(x); }\n\
                 pub fn debug_dump(x: &[f32]) -> Vec<f32> { x.to_vec() }",
            ),
        ],
        expect: 0,
    },
    Case {
        rule: rules::HOT_PATH_ALLOC,
        files: &[(
            // The quantize pack helpers live under `kernels/` and are
            // hot-path roots like every other kernel: allocating a staging
            // buffer inside one is flagged directly.
            "crates/tensor/src/kernels/pack.rs",
            "pub fn quantize_a_into(a: &[f32], out: &mut [f32]) { \
             let staging = a.to_vec(); out.copy_from_slice(&staging); }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::HOT_PATH_ALLOC_TRANSITIVE,
        files: &[
            (
                // A quantized GEMM driver is a hot-path root; an allocation
                // in the scratch accessor it calls (outside `kernels/`) must
                // surface transitively.
                "crates/tensor/src/kernels/gemm.rs",
                "pub fn gemm_prepacked_qb(a: &[f32], s: &mut GemmScratch) { \
                 let (qa, qs) = qa_qs_mut(s, a.len(), 4); }",
            ),
            (
                "crates/tensor/src/packed.rs",
                "pub fn qa_qs_mut(s: &mut GemmScratch, qa_len: usize, qs_len: usize) \
                 -> (Vec<i16>, Vec<f32>) { (s.qa.to_vec(), s.qs.to_vec()) }",
            ),
        ],
        expect: 2,
    },
    Case {
        rule: analysis::HOT_PATH_ALLOC_TRANSITIVE,
        files: &[
            (
                // The sanctioned shape: quantize into caller-owned scratch
                // (`.resize`/`.fill` on a reusable buffer are not
                // allocations in steady state).
                "crates/tensor/src/kernels/pack.rs",
                "pub fn quantize_b_into(b: &[f32], qs: &mut Vec<i16>) { \
                 qs.resize(b.len(), 0); for (o, &v) in qs.iter_mut().zip(b) { *o = v as i16; } }",
            ),
            (
                "crates/tensor/src/kernels/gemm.rs",
                "pub fn gemm_prepacked_qb(a: &[f32], qs: &mut Vec<i16>) { \
                 quantize_b_into(a, qs); }",
            ),
        ],
        expect: 0,
    },
    Case {
        rule: analysis::BLOCKING_IN_REACTOR,
        files: &[(
            "crates/net/src/reactor.rs",
            // Blocking sleep hidden one call deep under the poll thread.
            "pub fn run_reactor(s: &Shared) { loop { tick(s); } }\n\
             fn tick(s: &Shared) { std::thread::sleep(BACKOFF); }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::BLOCKING_IN_REACTOR,
        files: &[(
            "crates/net/src/reactor.rs",
            // Bounded waits are the sanctioned idle strategy.
            "pub fn run_reactor(s: &Shared) { loop { s.waker.wait_timeout(PARK); } }",
        )],
        expect: 0,
    },
    Case {
        rule: analysis::PANIC_REACHABILITY,
        files: &[(
            "crates/broker/src/rpc.rs",
            // unwrap reachable from an RPC handler, two hops down.
            "pub fn dispatch(b: &Broker, req: Request) -> Response { route(b, req) }\n\
             fn route(b: &Broker, req: Request) -> Response { decode(req) }\n\
             fn decode(req: Request) -> Response { req.payload.unwrap() }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::PANIC_REACHABILITY,
        files: &[(
            "crates/broker/src/rpc.rs",
            // The unwrap sits in a fn no handler reaches: clean.
            "pub fn dispatch(b: &Broker, req: Request) -> Response { route(b, req) }\n\
             fn route(b: &Broker, req: Request) -> Response { Response::ok() }\n\
             fn offline_tool(req: Request) -> Response { req.payload.unwrap() }",
        )],
        expect: 0,
    },
    Case {
        rule: analysis::PANIC_REACHABILITY,
        files: &[(
            "crates/engine-kernel/src/seeded.rs",
            // Worker entry point reaches a panic! through a helper.
            "struct PipelineWorker; impl PipelineWorker { \
             pub fn run(&mut self) { step(self) } }\n\
             fn step(w: &mut PipelineWorker) { panic!(\"boom\") }",
        )],
        expect: 1,
    },
    Case {
        rule: analysis::PANIC_REACHABILITY,
        files: &[(
            "crates/broker/src/rpc.rs",
            // A reasoned suppression silences the finding.
            "pub fn dispatch(b: &Broker, req: Request) -> Response { decode(req) }\n\
             fn decode(req: Request) -> Response {\n\
             // crayfish-lint: allow(panic-reachability) -- seeded self-test case\n\
             req.payload.unwrap()\n\
             }",
        )],
        expect: 0,
    },
    Case {
        rule: rules::FORBID_UNSAFE,
        files: &[("crates/broker/src/lib.rs", "//! Docs.\npub mod topic;\n")],
        expect: 1,
    },
    Case {
        rule: rules::FORBID_UNSAFE,
        files: &[(
            "crates/broker/src/lib.rs",
            "//! Docs.\n#![forbid(unsafe_code)]\npub mod topic;\n",
        )],
        expect: 0,
    },
];

/// Suppression misuse must fail: a reasonless allow, and an allow that
/// matches nothing.
const SUPPRESSION_ERROR_CASES: &[(&str, &str)] = &[
    (
        "crates/broker/src/rpc.rs",
        "pub fn dispatch(req: Request) -> Response {\n\
         // crayfish-lint: allow(panic-reachability)\n\
         req.payload.unwrap()\n\
         }",
    ),
    (
        "crates/core/src/seeded.rs",
        "// crayfish-lint: allow(clock-authority) -- stale, nothing here\n\
         fn f() {}\n",
    ),
];

/// Run every case; returns failure descriptions (empty = pass).
pub fn run() -> Vec<String> {
    let mut failures = Vec::new();
    for (i, case) in CASES.iter().enumerate() {
        let files: Vec<SourceFile> = case
            .files
            .iter()
            .map(|(rel, code)| SourceFile::synthetic(rel, code))
            .collect();
        let out = crate::lint_files(&files);
        let active = out
            .findings
            .iter()
            .filter(|f| f.suppressed.is_none() && f.v.rule == case.rule)
            .count();
        if active != case.expect {
            failures.push(format!(
                "self-test case {i} ({}): expected {} finding(s), got {active} in {:?}",
                case.rule, case.expect, case.files
            ));
        }
        if !out.suppression_errors.is_empty() {
            failures.push(format!(
                "self-test case {i} ({}): unexpected suppression errors: {:?}",
                case.rule,
                out.suppression_errors
                    .iter()
                    .map(|f| f.text.as_str())
                    .collect::<Vec<_>>()
            ));
        }
    }
    for (i, (rel, code)) in SUPPRESSION_ERROR_CASES.iter().enumerate() {
        let files = vec![SourceFile::synthetic(rel, code)];
        let out = crate::lint_files(&files);
        if out.suppression_errors.is_empty() {
            failures.push(format!(
                "self-test suppression case {i}: expected a suppression error, got none in {code:?}"
            ));
        }
    }
    failures
}
