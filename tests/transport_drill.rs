//! Transport equivalence: the leader-failover drill must behave
//! identically whether the broker is reached directly, through a
//! `RemoteBroker` over the in-process transport, or through a
//! `RemoteBroker` over real TCP sockets.
//!
//! The drill is the chaos-matrix LeaderKill case: records flow while
//! partition 0's leader node dies mid-stream; the cluster fails over, the
//! producer's patient retries ride out the window, and every record must
//! arrive exactly once (the broker's idempotence window absorbs retries).
//! `CHAOS_SEED` varies the flush cadence like the in-proc drill.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use crayfish::broker::{
    rpc, Broker, BrokerApi, PartitionConsumer, Producer, ProducerConfig, RemoteBroker,
};
use crayfish::chaos::poll_until;
use crayfish::net::{InProcTransport, RpcHandler};
use crayfish::prelude::*;

const TOTAL: u64 = 120;

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A replicated in-process cluster the transports will front.
fn backing_cluster(chaos: &ChaosHandle) -> Arc<Broker> {
    let broker = Broker::with_cluster(
        NetworkModel::zero(),
        ObsHandle::disabled(),
        chaos.clone(),
        ClusterConfig::replicated(),
    )
    .unwrap();
    broker.create_topic("t", 4).unwrap();
    broker
}

/// Run the LeaderKill drill through `client`, asserting zero loss, zero
/// duplicates, failover, and a measured MTTR on `chaos`.
fn drill(client: Arc<dyn BrokerApi>, chaos: &ChaosHandle, label: &str) {
    let seed = chaos_seed();
    let mut producer = Producer::new(
        client.clone(),
        "t",
        ProducerConfig {
            retry: RetryPolicy::patient(),
            ..Default::default()
        },
    )
    .unwrap();

    // The drain side goes through the same transport; its lag-zero probe
    // is also what closes the incident and yields the MTTR.
    let mut consumer =
        PartitionConsumer::new(client.clone(), "t", "drill", (0..4).collect()).unwrap();
    let mut all: Vec<u64> = Vec::new();
    let mut drain = |all: &mut Vec<u64>| {
        for r in consumer.poll(Duration::from_millis(20)).unwrap_or_default() {
            all.push(u64::from_le_bytes(r.value[..8].try_into().unwrap()));
        }
        consumer.commit();
    };

    let mut incident = None;
    for id in 0..TOTAL {
        producer
            .send(None, id.to_le_bytes().to_vec().into())
            .unwrap();
        if id % 8 == seed % 8 {
            producer.flush();
        }
        if id == TOTAL / 3 {
            incident = chaos.open_incident(FaultKind::LeaderKill);
            chaos.set_broker_dead(0, true);
        }
        if id == 2 * TOTAL / 3 {
            chaos.set_broker_dead(0, false);
            chaos.end_fault(incident.take());
        }
        drain(&mut all);
    }
    producer.flush();

    let drained = poll_until(Duration::from_secs(20), || {
        drain(&mut all);
        all.iter().copied().collect::<HashSet<_>>().len() as u64 >= TOTAL
    });
    let seen: HashSet<u64> = all.iter().copied().collect();
    assert!(
        drained,
        "{label}: only {} of {TOTAL} ids arrived",
        seen.len()
    );
    assert_eq!(seen.len() as u64, TOTAL, "{label}: lost records");
    assert_eq!(
        all.len() as u64,
        TOTAL,
        "{label}: duplicates past the idempotence window"
    );

    // Partition 0 really failed over while node 0 was dead.
    let status = client.replication_status("t").unwrap();
    assert_eq!(
        status[0].leader, 1,
        "{label}: partition 0 never failed over"
    );
    assert!(status[0].epoch >= 1, "{label}");

    let report = chaos.report();
    assert_eq!(report.incidents.len(), 1, "{label}: {report}");
    assert!(
        report.incidents[0].mttr_ms.unwrap_or(-1.0) > 0.0,
        "{label}: MTTR not measured: {report}"
    );
}

#[test]
fn leader_failover_drill_over_inproc_transport() {
    let chaos = ChaosHandle::enabled();
    let backing = backing_cluster(&chaos);
    let server: Arc<dyn BrokerApi> = backing;
    let handler: RpcHandler = {
        let b = server.clone();
        Arc::new(move |frame: &[u8]| rpc::handle_frame(b.as_ref(), frame))
    };
    let client = RemoteBroker::with_parts(
        Box::new(InProcTransport::new(handler)),
        ObsHandle::disabled(),
        chaos.clone(),
    );
    drill(client, &chaos, "inproc");
}

#[test]
fn leader_failover_drill_over_tcp_transport() {
    let chaos = ChaosHandle::enabled();
    let backing = backing_cluster(&chaos);
    let server = rpc::serve(backing, "127.0.0.1:0".parse().unwrap(), 8).unwrap();
    let client = RemoteBroker::connect_with(server.addr(), ObsHandle::disabled(), chaos.clone());
    drill(client, &chaos, "tcp");
    server.shutdown();
}
