//! Owning buffers for the blocked GEMM: pre-packed weight operands and
//! reusable packing scratch.
//!
//! The kernels in [`crate::kernels`] are allocation-free (enforced by the
//! repo's `hot-path-alloc` lint rule); every buffer they pack into comes
//! from here. Two lifetimes exist:
//!
//! * **Weights** are packed once — at executor plan-compile time — into
//!   [`PackedA`] (convolution weights, the left GEMM operand) or
//!   [`PackedB`] (dense weights, the right operand). Steady-state inference
//!   performs zero weight packing.
//! * **Activations** change per call and are packed into a [`GemmScratch`]
//!   owned by the caller (the executors keep one in their arena), which
//!   reuses its buffers across calls.
//!
//! Buffers are `Arc<Vec<f32>>` so the worker pool ([`crate::par`]) can
//! share them with its threads without copying; between calls the `Arc` is
//! unique again and `Arc::make_mut` reuses the existing allocation.

use std::cell::RefCell;

use crayfish_sync::Arc;

use crate::kernels::pack::{pack_a_into, pack_b_into, packed_a_len, packed_b_len};

/// A left-hand GEMM operand (`m×k`) packed once into `MR`-row strips.
/// Executor plans store convolution weights in this form.
#[derive(Debug, Clone, Default)]
pub struct PackedA {
    data: Arc<Vec<f32>>,
    m: usize,
    k: usize,
}

impl PackedA {
    /// Pack a row-major `m×k` matrix.
    pub fn pack(a: &[f32], m: usize, k: usize) -> PackedA {
        let mut data = vec![0.0f32; packed_a_len(m, k)];
        pack_a_into(a, m, k, &mut data);
        PackedA {
            data: Arc::new(data),
            m,
            k,
        }
    }

    /// Rows of the original matrix.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Columns of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The packed panels.
    pub(crate) fn data(&self) -> &Arc<Vec<f32>> {
        &self.data
    }

    /// Scale one original row by `s` in place (rows are interleaved inside
    /// strips, stride `MR`). This is how conv+batch-norm folding rescales
    /// already-packed convolution weights per output channel.
    pub fn scale_row(&mut self, row: usize, s: f32) {
        use crate::kernels::microkernel::MR;
        assert!(row < self.m, "scale_row: row {row} of {}", self.m);
        let k = self.k;
        let data = Arc::make_mut(&mut self.data);
        let strip = &mut data[(row / MR) * k * MR..(row / MR + 1) * k * MR];
        let lane = row % MR;
        for p in 0..k {
            strip[p * MR + lane] *= s;
        }
    }

    /// Unpack back to a row-major `m×k` matrix (test/debug aid).
    pub fn unpack(&self) -> Vec<f32> {
        use crate::kernels::microkernel::MR;
        let mut out = vec![0.0f32; self.m * self.k];
        for row in 0..self.m {
            let strip = &self.data[(row / MR) * self.k * MR..];
            for p in 0..self.k {
                out[row * self.k + p] = strip[p * MR + row % MR];
            }
        }
        out
    }
}

/// A right-hand GEMM operand (`k×n`) packed once into `NR`-column strips.
/// Executor plans store dense-layer weights in this form.
#[derive(Debug, Clone, Default)]
pub struct PackedB {
    data: Arc<Vec<f32>>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Pack a row-major `k×n` matrix.
    pub fn pack(b: &[f32], k: usize, n: usize) -> PackedB {
        let mut data = vec![0.0f32; packed_b_len(k, n)];
        pack_b_into(b, k, n, &mut data);
        PackedB {
            data: Arc::new(data),
            k,
            n,
        }
    }

    /// Rows of the original matrix (the GEMM depth).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns of the original matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed panels.
    pub(crate) fn data(&self) -> &Arc<Vec<f32>> {
        &self.data
    }
}

/// Reusable packing scratch for the per-call GEMM operands (activations,
/// `im2col` matrices). Holds its buffers across calls so steady-state
/// inference does not allocate.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pa: Arc<Vec<f32>>,
    pb: Arc<Vec<f32>>,
}

impl GemmScratch {
    pub fn new() -> GemmScratch {
        GemmScratch::default()
    }

    /// Borrow the `A`-side buffer at exactly `len` elements, reusing the
    /// allocation when capacity suffices. Between GEMM calls the `Arc` is
    /// unique, so `make_mut` never clones on the steady-state path.
    pub(crate) fn pa_mut(&mut self, len: usize) -> &mut [f32] {
        let v = Arc::make_mut(&mut self.pa);
        v.resize(len, 0.0);
        &mut v[..]
    }

    /// Borrow the `B`-side buffer at exactly `len` elements (see
    /// [`GemmScratch::pa_mut`]).
    pub(crate) fn pb_mut(&mut self, len: usize) -> &mut [f32] {
        let v = Arc::make_mut(&mut self.pb);
        v.resize(len, 0.0);
        &mut v[..]
    }

    pub(crate) fn pa_arc(&self) -> &Arc<Vec<f32>> {
        &self.pa
    }

    pub(crate) fn pb_arc(&self) -> &Arc<Vec<f32>> {
        &self.pb
    }

    /// `(ptr, capacity)` of each internal buffer — lets arena-reuse tests
    /// assert that steady-state calls touch no allocator.
    pub fn fingerprint(&self) -> [(usize, usize); 2] {
        [
            (self.pa.as_ptr() as usize, self.pa.capacity()),
            (self.pb.as_ptr() as usize, self.pb.capacity()),
        ]
    }
}

thread_local! {
    static TLS_SCRATCH: RefCell<GemmScratch> = RefCell::new(GemmScratch::new());
}

/// Run `f` with this thread's shared [`GemmScratch`] — the compatibility
/// path for callers of the plain `gemm()` signature, which has nowhere to
/// thread a scratch through. Hot paths own their scratch instead.
pub fn with_tls_scratch<R>(f: impl FnOnce(&mut GemmScratch) -> R) -> R {
    TLS_SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::microkernel::MR;

    #[test]
    fn packed_a_roundtrips_and_scales_rows() {
        let m = MR + 2;
        let k = 5;
        let a: Vec<f32> = (0..m * k).map(|v| v as f32 + 1.0).collect();
        let mut pa = PackedA::pack(&a, m, k);
        assert_eq!(pa.unpack(), a);
        pa.scale_row(MR + 1, 2.0);
        let got = pa.unpack();
        for (i, (&x, &orig)) in got.iter().zip(&a).enumerate() {
            let row = i / k;
            let expect = if row == MR + 1 { orig * 2.0 } else { orig };
            assert_eq!(x, expect, "element {i}");
        }
    }

    #[test]
    fn scratch_reuses_its_allocation() {
        let mut s = GemmScratch::new();
        s.pa_mut(1024).fill(1.0);
        let fp = s.fingerprint();
        s.pa_mut(512).fill(2.0);
        s.pa_mut(1024);
        assert_eq!(s.fingerprint(), fp, "scratch reallocated on shrink/grow");
    }
}
