//! Interprocedural analyses over the project call graph.
//!
//! Four analyses run here (DESIGN.md §3g):
//!
//! * **lock-rank / lock-rank-chain** — held-guard sets are tracked through
//!   each function (with `if let`/destructuring/`drop(..)`/`for`-header
//!   binding forms) and *propagated through call edges*: acquiring a
//!   ranked lock below the highest held rank is an inversion whether it
//!   happens in the same body (`lock-rank`) or anywhere in a callee's
//!   transitive acquisition set (`lock-rank-chain`).
//! * **lock-order-cycle** — independent of the hand-maintained rank
//!   tables, every *observed* acquisition pair (B taken while A held,
//!   directly or through a call) becomes an edge A→B in an empirical
//!   per-crate lock-order graph; any cycle fails the lint. This validates
//!   the rank tables instead of trusting them.
//! * **hot-path-alloc-transitive** — the zero-allocation promise of the
//!   GEMM kernels and the reactor/codec `poll_*` functions extends to
//!   their transitive intra-crate callees.
//! * **blocking-in-reactor** — no unbounded blocking call (`Condvar::wait`
//!   sans timeout, `sleep`, `join`, blocking `recv`, `park`, connect)
//!   reachable from the net reactor's poll thread.
//! * **panic-reachability** — `unwrap`/`expect`/`panic!` reachable from
//!   engine-kernel worker entry points, broker RPC handlers, or the
//!   multi-process binaries (this replaces the old prefix-list scoped
//!   `unwrap-in-pipeline` rule with actual reachability).
//!
//! Findings carry a *fingerprint* — `rule` + the qualified call chain —
//! so the ratchet baseline survives line churn.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::callgraph::{self, CallGraph};
use crate::items::{self, FnItem};
use crate::rules::{find_all, Violation};
use crate::source::SourceFile;

pub const LOCK_RANK: &str = "lock-rank";
pub const LOCK_RANK_CHAIN: &str = "lock-rank-chain";
pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
pub const HOT_PATH_ALLOC_TRANSITIVE: &str = "hot-path-alloc-transitive";
pub const BLOCKING_IN_REACTOR: &str = "blocking-in-reactor";
pub const PANIC_REACHABILITY: &str = "panic-reachability";

/// Lock-rank table. Rank = acquisition order: a lock may only be taken
/// while every held lock has a *smaller* rank (outermost first). Broker:
/// node append gate (3) → node leader state (5) → cluster client leader
/// index (8) → topic registry (10) → group coordinator (15) → committed
/// offsets (20) → replicated partition state (30) → topic version (40).
/// Net: TCP connection slot (5) → reactor injector (10) → ready queue
/// (15) → connection registry (20) → waker signal (30). Flink exchange:
/// channel state (10).
pub fn lock_rank_of(crate_name: &str, receiver: &str) -> Option<(u32, &'static str)> {
    match crate_name {
        "broker" => match receiver {
            "append_gate" => Some((3, "node append gate")),
            "state" => Some((5, "node leader state")),
            "leader" => Some((8, "cluster client leader index")),
            "topics" => Some((10, "broker topic registry")),
            "groups" => Some((15, "consumer group coordinator")),
            "offsets" => Some((20, "committed consumer offsets")),
            "repl" => Some((30, "replicated partition state")),
            "version" => Some((40, "topic version")),
            _ => None,
        },
        "net" => match receiver {
            "conn" => Some((5, "TCP connection slot")),
            "injector" => Some((10, "reactor injector")),
            "ready" => Some((15, "reactor ready queue")),
            "registry" | "connections" => Some((20, "connection registry")),
            "signal" => Some((30, "waker signal")),
            _ => None,
        },
        "flink" => match receiver {
            "state" => Some((10, "exchange channel state")),
            _ => None,
        },
        _ => None,
    }
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Walk back from a `.lock()`-style call's dot and return the dotted
/// receiver chain, skipping index/call bracket groups and a leading
/// `self.`: `self.inner.state[i].lock()` → `inner.state`.
pub fn receiver_chain_of(clean: &str, dot: usize) -> Option<String> {
    let bytes = clean.as_bytes();
    let mut segments: Vec<&str> = Vec::new();
    let mut i = dot;
    while i > 0 {
        let c = bytes[i - 1];
        if c == b')' {
            // A call: the chain roots at the call's result, e.g.
            // `partition(p).repl` is just `repl`.
            break;
        }
        if c == b']' {
            let mut depth = 0usize;
            while i > 0 {
                let d = bytes[i - 1];
                i -= 1;
                if d == b']' {
                    depth += 1;
                } else if d == b'[' {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
            }
        } else if is_ident(c) {
            let end = i;
            while i > 0 && is_ident(bytes[i - 1]) {
                i -= 1;
            }
            segments.push(&clean[i..end]);
        } else if c == b'.' {
            i -= 1;
        } else {
            break;
        }
    }
    segments.reverse();
    if let Some(&"self") = segments.first() {
        segments.remove(0);
    }
    if segments.is_empty() {
        None
    } else {
        Some(segments.join("."))
    }
}

/// Nearest identifier of the receiver chain (`partitions` for
/// `self.partitions[p].lock()`) — the rank-table key.
#[cfg(test)]
pub fn receiver_of(clean: &str, dot: usize) -> Option<String> {
    receiver_chain_of(clean, dot).map(|c| c.rsplit('.').next().unwrap_or("").to_string())
}

/// The `let` pattern binding a guard acquired at `pos`, handling plain
/// `let g =`, `let mut g =`, `if let Ok(g) =`, `while let Some(g) =`,
/// `let Ok(g) = .. else`, and positional tuple destructuring
/// (`let (a, b) = (x.lock(), y.lock())` binds `a` then `b`).
pub fn let_binding_before(body: &str, pos: usize) -> Option<String> {
    let stmt_start = body[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let stmt = &body[stmt_start..pos];
    let let_at = find_keyword(stmt, "let ")?;
    let after_let = &stmt[let_at + 4..];
    let eq = after_let.find('=')?;
    let pattern = &after_let[..eq];
    // Idents bound by the pattern: skip `mut`/`ref`/`_` and constructor
    // names (capitalized: `Ok`, `Some`, struct names).
    let names: Vec<&str> = pattern
        .split(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .filter(|s| !s.is_empty())
        .filter(|s| !matches!(*s, "mut" | "ref" | "_"))
        .filter(|s| !s.chars().next().is_some_and(char::is_uppercase))
        .collect();
    if names.is_empty() {
        return None;
    }
    // Positional match for destructuring: which acquisition inside the
    // statement's RHS is this one?
    let rhs_abs = stmt_start + let_at + 4 + eq + 1;
    let idx = ["\u{0}.lock()", ".lock()", ".read()", ".write()"]
        .iter()
        .skip(1)
        .map(|n| find_all(&body[rhs_abs..pos], n).len())
        .sum::<usize>();
    Some(names[idx.min(names.len() - 1)].to_string())
}

/// First occurrence of keyword `kw` in `s` at a word boundary.
fn find_keyword(s: &str, kw: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut search = 0;
    while let Some(found) = s[search..].find(kw) {
        let pos = search + found;
        search = pos + 1;
        if pos == 0 || !is_ident(bytes[pos - 1]) {
            return Some(pos);
        }
    }
    None
}

/// If the statement containing `pos` is an `if`/`while`/`for` header, the
/// guard acquired at `pos` lives until the end of the following block —
/// return that close-brace offset. Unbound guards in plain statements are
/// temporaries living to the statement's `;`.
fn scope_end_for(body: &str, pos: usize, has_binding: bool) -> Option<usize> {
    let stmt_start = body[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let stmt = body[stmt_start..pos].trim_start();
    let header = ["if ", "if(", "while ", "while(", "for "]
        .iter()
        .any(|k| stmt.starts_with(k));
    if header {
        let open_rel = body[pos..].find('{')?;
        let open = pos + open_rel;
        return crate::source::matching(body.as_bytes(), open, b'{', b'}');
    }
    if has_binding {
        // A `let`-bound guard dies at the close of its enclosing block:
        // `let epoch = { let st = self.state.lock(); st.epoch };` releases
        // `st` before the next statement.
        return enclosing_block_end(body, pos);
    }
    // Temporary guard: released at the end of the statement.
    body[pos..].find(';').map(|s| pos + s)
}

/// Close-brace offset of the innermost block containing `pos`. The body
/// slice includes the fn's own braces, so a top-level statement maps to
/// the end of the fn.
fn enclosing_block_end(body: &str, pos: usize) -> Option<usize> {
    let bytes = body.as_bytes();
    let mut stack: Vec<usize> = Vec::new();
    for (i, &b) in bytes.iter().enumerate().take(pos) {
        match b {
            b'{' => stack.push(i),
            b'}' => {
                stack.pop();
            }
            _ => {}
        }
    }
    let open = stack.pop()?;
    crate::source::matching(bytes, open, b'{', b'}')
}

/// One lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Offset of the needle (`.lock()` dot) within the fn body slice.
    pub pos: usize,
    /// Dotted receiver chain (node identity in the empirical graph).
    pub chain: String,
    /// Last chain segment (rank-table key).
    pub last: String,
    pub rank: Option<(u32, &'static str)>,
    pub binding: Option<String>,
    /// Offset past which the guard is certainly released, if known.
    pub scope_end: Option<usize>,
}

enum Ev {
    Acquire(Acquire),
    Drop { pos: usize, arg: String },
    Call { pos: usize, site: usize },
}

/// Ordered lock/drop/call events of one fn body.
fn events_of(graph: &CallGraph, fn_id: usize, clean: &str) -> Vec<Ev> {
    let f = &graph.fns[fn_id];
    let (open, close) = f.body;
    let body = &clean[open..=close];
    let mut events: Vec<Ev> = Vec::new();
    for needle in [".lock()", ".read()", ".write()"] {
        for pos in find_all(body, needle) {
            let Some(chain) = receiver_chain_of(body, pos) else {
                continue;
            };
            let last = chain.rsplit('.').next().unwrap_or("").to_string();
            let rank = lock_rank_of(&f.crate_name, &last);
            let binding = let_binding_before(body, pos);
            let scope_end = scope_end_for(body, pos, binding.is_some());
            events.push(Ev::Acquire(Acquire {
                pos,
                chain,
                last,
                rank,
                binding,
                scope_end,
            }));
        }
    }
    for pos in find_all(body, "drop(") {
        // Skip `.drop(`, `x_drop(`, and our own needle inside idents.
        if pos > 0 {
            let prev = body.as_bytes()[pos - 1];
            if is_ident(prev) || prev == b'.' {
                continue;
            }
        }
        let args_start = pos + "drop(".len();
        let arg: String = body[args_start..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '.' || *c == ':')
            .collect();
        events.push(Ev::Drop { pos, arg });
    }
    for (site, cs) in graph.calls[fn_id].iter().enumerate() {
        events.push(Ev::Call {
            pos: cs.pos - open,
            site,
        });
    }
    events.sort_by_key(|e| match e {
        Ev::Acquire(a) => a.pos,
        Ev::Drop { pos, .. } | Ev::Call { pos, .. } => *pos,
    });
    events
}

/// A lock identity in the empirical order graph: `(crate, receiver chain)`.
pub type LockKey = (String, String);

/// One observed ordered acquisition pair, with a sample context.
#[derive(Debug, Clone)]
pub struct OrderEdge {
    pub from: LockKey,
    pub to: LockKey,
    /// Qualified fn where the pair was observed.
    pub observed_in: String,
    pub rel: String,
    pub line: usize,
}

/// Everything the lock analyses produce.
pub struct LockReport {
    pub violations: Vec<Violation>,
    pub edges: Vec<OrderEdge>,
}

/// One entry in the interned lock-site universe: a lock identity plus the
/// fn performing the acquisition (for chain reporting).
#[derive(Debug)]
struct LockSite {
    chain: String,
    last: String,
    rank: Option<u32>,
    owner: usize,
}

/// Transitive acquisition summaries: for every fn, the set of lock sites
/// it or any intra-crate callee acquires. Sites are interned to small ids
/// so the fixpoint unions integers, not string tuples — the universe is
/// bounded by the number of textual acquisitions in the repo.
fn transitive_acquires(
    graph: &CallGraph,
    direct: &[Vec<Acquire>],
) -> (Vec<LockSite>, Vec<BTreeSet<u32>>) {
    let n = graph.fns.len();
    let mut universe: Vec<LockSite> = Vec::new();
    let mut ids: HashMap<(String, usize), u32> = HashMap::new();
    let mut trans: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    for (i, acquires) in direct.iter().enumerate() {
        for a in acquires {
            let id = *ids.entry((a.chain.clone(), i)).or_insert_with(|| {
                universe.push(LockSite {
                    chain: a.chain.clone(),
                    last: a.last.clone(),
                    rank: a.rank.map(|(r, _)| r),
                    owner: i,
                });
                (universe.len() - 1) as u32
            });
            trans[i].insert(id);
        }
    }
    // Fixpoint propagation; monotone over a finite universe, so this
    // terminates, and in practice converges in call-graph-depth passes.
    loop {
        let mut changed = false;
        for i in 0..n {
            let mut add: BTreeSet<u32> = BTreeSet::new();
            for site in &graph.calls[i] {
                for &t in graph.targets(site) {
                    if t != i {
                        add.extend(trans[t].difference(&trans[i]));
                    }
                }
            }
            if !add.is_empty() {
                trans[i].extend(add);
                changed = true;
            }
        }
        if !changed {
            return (universe, trans);
        }
    }
}

/// Run the whole-program lock analyses: intra-fn rank inversions,
/// call-chain rank inversions, and the empirical order graph.
pub fn lock_analysis(graph: &CallGraph, texts: &HashMap<String, String>) -> LockReport {
    let n = graph.fns.len();
    let mut direct: Vec<Vec<Acquire>> = vec![Vec::new(); n];
    let mut all_events: Vec<Vec<Ev>> = Vec::with_capacity(n);
    for i in 0..n {
        let clean = &texts[&graph.fns[i].rel];
        let events = events_of(graph, i, clean);
        direct[i] = events
            .iter()
            .filter_map(|e| match e {
                Ev::Acquire(a) => Some(a.clone()),
                _ => None,
            })
            .collect();
        all_events.push(events);
    }
    trace("events extracted");
    let (universe, trans) = transitive_acquires(graph, &direct);
    trace(&format!("fixpoint done: {} lock sites", universe.len()));

    let mut violations = Vec::new();
    let mut edges: BTreeMap<(LockKey, LockKey), OrderEdge> = BTreeMap::new();
    for (i, f) in graph.fns.iter().enumerate().take(n) {
        let file_rel = f.rel.clone();
        let clean = &texts[&file_rel];
        let body_open = f.body.0;
        let line_of = |pos: usize| -> usize {
            clean.as_bytes()[..(body_open + pos).min(clean.len())]
                .iter()
                .filter(|&&b| b == b'\n')
                .count()
                + 1
        };
        // Held guards, in acquisition order.
        let mut held: Vec<Acquire> = Vec::new();
        for ev in &all_events[i] {
            let at = match ev {
                Ev::Acquire(a) => a.pos,
                Ev::Drop { pos, .. } | Ev::Call { pos, .. } => *pos,
            };
            held.retain(|h| h.scope_end.map_or(true, |end| at <= end));
            match ev {
                Ev::Drop { arg, .. } => {
                    let arg_last = arg.rsplit(['.', ':']).next().unwrap_or(arg);
                    held.retain(|h| {
                        h.binding.as_deref() != Some(arg) && h.binding.as_deref() != Some(arg_last)
                    });
                }
                Ev::Acquire(a) => {
                    // Empirical order edges (self-edges skipped: multiple
                    // instances of one lock class — replica fan-out — are
                    // same-rank by design and handled by the rank rule).
                    for h in &held {
                        if h.chain != a.chain {
                            let from = (f.crate_name.clone(), h.chain.clone());
                            let to = (f.crate_name.clone(), a.chain.clone());
                            edges
                                .entry((from.clone(), to.clone()))
                                .or_insert(OrderEdge {
                                    from,
                                    to,
                                    observed_in: f.qualified(),
                                    rel: file_rel.clone(),
                                    line: line_of(a.pos),
                                });
                        }
                    }
                    if let (Some((rank, label)), Some(h)) = (
                        a.rank,
                        held.iter()
                            .filter(|h| h.rank.is_some_and(|(r, _)| r > a.rank.map_or(0, |x| x.0)))
                            .max_by_key(|h| h.rank.map_or(0, |x| x.0)),
                    ) {
                        let (hr, hl) = h.rank.unwrap_or((0, "?"));
                        violations.push(Violation {
                            rule: LOCK_RANK,
                            rel: file_rel.clone(),
                            line: line_of(a.pos),
                            fingerprint: format!("{}@{}>{}", f.qualified(), h.chain, a.chain),
                            msg: format!(
                                "acquires {label} (rank {rank}) while holding {hl} (rank {hr}); \
                                 acquisition order is rank-ascending"
                            ),
                        });
                    }
                    if a.binding.is_some() || a.scope_end.is_some() {
                        held.push(a.clone());
                    }
                }
                Ev::Call { pos, site } => {
                    if held.is_empty() {
                        continue;
                    }
                    let cs = &graph.calls[i][*site];
                    for &t in graph.targets(cs) {
                        if t == i {
                            continue;
                        }
                        for &site_id in &trans[t] {
                            let s = &universe[site_id as usize];
                            if held.iter().any(|h| h.chain == s.chain) {
                                continue;
                            }
                            for h in &held {
                                let from = (f.crate_name.clone(), h.chain.clone());
                                let to = (graph.fns[s.owner].crate_name.clone(), s.chain.clone());
                                if from == to {
                                    continue;
                                }
                                edges
                                    .entry((from.clone(), to.clone()))
                                    .or_insert(OrderEdge {
                                        from,
                                        to,
                                        observed_in: f.qualified(),
                                        rel: file_rel.clone(),
                                        line: line_of(*pos),
                                    });
                            }
                            let Some(acq_rank) = s.rank else { continue };
                            let worst = held
                                .iter()
                                .filter(|h| h.rank.is_some_and(|(r, _)| r > acq_rank))
                                .max_by_key(|h| h.rank.map_or(0, |x| x.0));
                            if let Some(h) = worst {
                                let (hr, hl) = h.rank.unwrap_or((0, "?"));
                                let sub = graph.reach(&[t]);
                                let chain_q =
                                    format!("{}->{}", f.qualified(), graph.chain(&sub, s.owner));
                                let label = lock_rank_of(&graph.fns[s.owner].crate_name, &s.last)
                                    .map_or("?", |(_, l)| l);
                                violations.push(Violation {
                                    rule: LOCK_RANK_CHAIN,
                                    rel: file_rel.clone(),
                                    line: line_of(*pos),
                                    fingerprint: format!(
                                        "{chain_q}@{hl}>{chain}",
                                        hl = h.chain,
                                        chain = s.chain
                                    ),
                                    msg: format!(
                                        "calls {callee} while holding {hl} (rank {hr}); the \
                                         callee transitively acquires {label} (rank {acq_rank}) \
                                         via {chain_q}",
                                        callee = graph.fns[t].qualified(),
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
    }

    // Cycle detection over the empirical graph, per crate.
    let edge_list: Vec<OrderEdge> = edges.into_values().collect();
    violations.extend(order_cycles(&edge_list));
    LockReport {
        violations,
        edges: edge_list,
    }
}

/// DFS cycle detection over the empirical lock-order edges.
fn order_cycles(edges: &[OrderEdge]) -> Vec<Violation> {
    let mut adj: BTreeMap<&LockKey, Vec<&OrderEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(&e.from).or_default().push(e);
    }
    let mut color: BTreeMap<&LockKey, u8> = BTreeMap::new(); // 0 white 1 grey 2 black
    let mut out = Vec::new();
    let keys: Vec<&LockKey> = adj.keys().copied().collect();
    for &start in &keys {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Iterative DFS with an explicit path stack.
        let mut stack: Vec<(&LockKey, usize)> = vec![(start, 0)];
        color.insert(start, 1);
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succ = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *next >= succ.len() {
                color.insert(node, 2);
                stack.pop();
                continue;
            }
            let edge = succ[*next];
            *next += 1;
            match color.get(&edge.to).copied().unwrap_or(0) {
                0 => {
                    color.insert(&edge.to, 1);
                    stack.push((&edge.to, 0));
                }
                1 => {
                    // Back edge: the path from `edge.to` on the stack to
                    // `node`, plus this edge, is a cycle.
                    let from_idx = stack.iter().position(|(k, _)| *k == &edge.to).unwrap_or(0);
                    let cycle: Vec<String> = stack[from_idx..]
                        .iter()
                        .map(|(k, _)| k.1.clone())
                        .chain(std::iter::once(edge.to.1.clone()))
                        .collect();
                    out.push(Violation {
                        rule: LOCK_ORDER_CYCLE,
                        rel: edge.rel.clone(),
                        line: edge.line,
                        fingerprint: format!("cycle:{}:{}", edge.to.0, cycle.join(">")),
                        msg: format!(
                            "empirical lock-order cycle in crate {}: {} (last edge observed in \
                             {}); no consistent acquisition order exists",
                            edge.to.0,
                            cycle.join(" -> "),
                            edge.observed_in
                        ),
                    });
                }
                _ => {}
            }
        }
    }
    out
}

/// A reachability analysis: entry predicate + sink tokens.
struct ReachRule {
    rule: &'static str,
    /// Include sinks in the entry fns' own bodies? (The direct hot-path
    /// rule already covers entry bodies; the others want depth 0 too.)
    include_entries: bool,
    entries: fn(&FnItem) -> bool,
    tokens: &'static [(&'static str, &'static str)], // (needle, slug)
    advice: &'static str,
}

fn hot_path_entry(f: &FnItem) -> bool {
    f.rel.starts_with("crates/tensor/src/kernels/")
        || ((f.rel == "crates/net/src/reactor.rs" || f.rel == "crates/net/src/codec.rs")
            && f.name.starts_with("poll_"))
}

fn reactor_entry(f: &FnItem) -> bool {
    f.crate_name == "net" && f.name == "run_reactor"
}

fn panic_entry(f: &FnItem) -> bool {
    match f.crate_name.as_str() {
        "engine-kernel" => {
            (f.owner.as_deref() == Some("PipelineWorker") && f.name == "run")
                || f.name == "source_pump"
                || f.name == "pipeline_workers"
                || (f.owner.as_deref() == Some("WorkerSet")
                    && matches!(f.name.as_str(), "supervised" | "task"))
        }
        "broker" => matches!(
            f.name.as_str(),
            "dispatch" | "handle_frame" | "handle" | "serve"
        ),
        "crayfish" => f.rel.starts_with("src/bin/") && f.name == "main",
        _ => false,
    }
}

const REACH_RULES: &[ReachRule] = &[
    ReachRule {
        rule: HOT_PATH_ALLOC_TRANSITIVE,
        include_entries: false,
        entries: hot_path_entry,
        tokens: &[
            ("Vec::new", "Vec::new"),
            ("vec![", "vec!"),
            (".to_vec(", "to_vec"),
            (".collect(", "collect"),
        ],
        advice: "the zero-allocation promise extends through transitive callees; \
                 use an `_into` variant or a reusable scratch",
    },
    ReachRule {
        rule: BLOCKING_IN_REACTOR,
        include_entries: true,
        entries: reactor_entry,
        tokens: &[
            ("::sleep(", "sleep"),
            (".join()", "join"),
            (".recv()", "recv"),
            (".wait(", "condvar-wait"),
            ("park(", "park"),
            ("TcpStream::connect", "connect"),
            (".read_to_end(", "read_to_end"),
            (".read_exact(", "read_exact"),
        ],
        advice: "the reactor poll thread may never block unboundedly; \
                 bounded waits (`wait_timeout`) and nonblocking I/O only",
    },
    ReachRule {
        rule: PANIC_REACHABILITY,
        include_entries: true,
        entries: panic_entry,
        tokens: &[
            (".unwrap()", "unwrap"),
            (".expect(", "expect"),
            ("panic!(", "panic"),
            ("todo!(", "todo"),
            ("unimplemented!(", "unimplemented"),
        ],
        advice: "a panic here kills a supervised worker or an RPC handler and \
                 corrupts fault-tolerance measurements; propagate the error",
    },
];

/// Run the three reachability analyses.
pub fn reachability(graph: &CallGraph, texts: &HashMap<String, String>) -> Vec<Violation> {
    let mut out = Vec::new();
    for rr in REACH_RULES {
        let entries = graph.find(|f| (rr.entries)(f));
        if entries.is_empty() {
            continue;
        }
        let parents = graph.reach(&entries);
        let mut reached: Vec<usize> = parents.keys().copied().collect();
        reached.sort_unstable();
        for id in reached {
            let f = &graph.fns[id];
            if !rr.include_entries && (rr.entries)(f) {
                continue;
            }
            let clean = &texts[&f.rel];
            let (open, close) = f.body;
            let body = &clean[open..=close];
            let chain = graph.chain(&parents, id);
            for (needle, slug) in rr.tokens {
                for pos in find_all(body, needle) {
                    let line = clean.as_bytes()[..open + pos]
                        .iter()
                        .filter(|&&b| b == b'\n')
                        .count()
                        + 1;
                    out.push(Violation {
                        rule: rr.rule,
                        rel: f.rel.clone(),
                        line,
                        fingerprint: format!("{chain}@{slug}"),
                        msg: format!(
                            "{slug} in {q}, reachable via {chain}; {advice}",
                            q = f.qualified(),
                            advice = rr.advice
                        ),
                    });
                }
            }
        }
    }
    out
}

/// The assembled project: parsed items, call graph, cleaned texts.
pub struct Project {
    pub graph: CallGraph,
    pub texts: HashMap<String, String>,
    pub lock_edges: Vec<OrderEdge>,
}

fn trace(msg: &str) {
    if std::env::var_os("CRAYFISH_LINT_TRACE").is_some() {
        eprintln!("crayfish-lint[trace]: {msg}");
    }
}

/// Build the project model and run every interprocedural analysis.
pub fn analyze(files: &[SourceFile]) -> (Project, Vec<Violation>) {
    let mut fns = Vec::new();
    let mut texts = HashMap::new();
    for f in files {
        trace(&format!("parsing {}", f.rel));
        fns.extend(items::file_fns(f));
        texts.insert(f.rel.clone(), f.clean.clone());
    }
    trace(&format!("{} fns parsed", fns.len()));
    let graph = callgraph::build(fns, &texts);
    trace(&format!(
        "graph built: {} resolved, {} ambiguous, {} unresolved",
        graph.resolved_edges, graph.ambiguous_edges, graph.unresolved_edges
    ));
    let mut violations = Vec::new();
    let report = lock_analysis(&graph, &texts);
    trace(&format!(
        "lock analysis done: {} violations, {} edges",
        report.violations.len(),
        report.edges.len()
    ));
    violations.extend(report.violations);
    violations.extend(reachability(&graph, &texts));
    trace("reachability done");
    (
        Project {
            graph,
            texts,
            lock_edges: report.edges,
        },
        violations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn run(files: &[(&str, &str)]) -> Vec<Violation> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(rel, code)| SourceFile::synthetic(rel, code))
            .collect();
        analyze(&sources).1
    }

    fn rules_of(v: &[Violation]) -> Vec<&'static str> {
        let mut r: Vec<&'static str> = v.iter().map(|x| x.rule).collect();
        r.sort_unstable();
        r
    }

    #[test]
    fn receiver_chain_walks_fields_and_brackets() {
        let s = "self.inner.state[i].lock()";
        let dot = s.rfind(".lock").unwrap();
        assert_eq!(receiver_chain_of(s, dot).as_deref(), Some("inner.state"));
        assert_eq!(receiver_of(s, dot).as_deref(), Some("state"));
        let s2 = "shared.completions.ready.lock()";
        let dot2 = s2.rfind(".lock").unwrap();
        assert_eq!(
            receiver_chain_of(s2, dot2).as_deref(),
            Some("shared.completions.ready")
        );
        let s3 = "partition(p).repl.lock()";
        let dot3 = s3.rfind(".lock").unwrap();
        assert_eq!(receiver_chain_of(s3, dot3).as_deref(), Some("repl"));
    }

    #[test]
    fn let_binding_handles_if_let_and_destructuring() {
        let b = "{ if let Ok(g) = self.topics.lock() { g.len(); } }";
        let pos = b.find(".lock").unwrap();
        assert_eq!(let_binding_before(b, pos).as_deref(), Some("g"));

        let b2 = "{ let (a, b) = (x.lock(), y.lock()); }";
        let first = b2.find(".lock").unwrap();
        let second = b2.rfind(".lock").unwrap();
        assert_eq!(let_binding_before(b2, first).as_deref(), Some("a"));
        assert_eq!(let_binding_before(b2, second).as_deref(), Some("b"));

        let b3 = "{ let Some(mut guard) = self.repl.try_lock() else { return }; guard.x(); \
                   let h = self.version.lock(); }";
        let pos3 = b3.rfind(".lock").unwrap();
        assert_eq!(let_binding_before(b3, pos3).as_deref(), Some("h"));

        let b4 = "{ foo(); self.topics.lock().insert(k, v); }";
        let pos4 = b4.find(".lock").unwrap();
        assert_eq!(let_binding_before(b4, pos4), None);
    }

    #[test]
    fn intra_fn_inversion_still_caught() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { fn f(&self) { let v = self.version.lock(); \
             let t = self.topics.read(); } }",
        )]);
        assert!(rules_of(&v).contains(&LOCK_RANK), "{v:?}");
    }

    #[test]
    fn if_let_bound_guard_is_tracked() {
        // The old binding parser missed `if let Ok(g) = ..`, so this
        // inversion went unseen.
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { fn f(&self) { if let Some(v) = self.version.lock().as_ref() { \
             let t = self.topics.read(); } } }",
        )]);
        assert!(rules_of(&v).contains(&LOCK_RANK), "{v:?}");
    }

    #[test]
    fn destructured_guards_are_tracked() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { fn f(&self) { let (v, x) = (self.version.lock(), 0); \
             let t = self.topics.read(); } }",
        )]);
        assert!(rules_of(&v).contains(&LOCK_RANK), "{v:?}");
    }

    #[test]
    fn dotted_drop_releases_the_guard() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { fn f(&self, s: &mut S) { s.g = Some(self.version.lock()); \
             let g = self.version.lock(); std::mem::drop(g); let t = self.topics.read(); } }",
        )]);
        // Guard g dropped via std::mem::drop path → no inversion from it.
        // The unbound store into s.g is a temporary (ends at `;`).
        assert!(!rules_of(&v).contains(&LOCK_RANK), "{v:?}");
    }

    #[test]
    fn interprocedural_inversion_via_helper() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { \
             fn f(&self) { let v = self.version.lock(); self.helper(); } \
             fn helper(&self) { let t = self.topics.read(); } }",
        )]);
        let rules = rules_of(&v);
        assert!(rules.contains(&LOCK_RANK_CHAIN), "{v:?}");
        // And the chain names both ends.
        let chain = v.iter().find(|x| x.rule == LOCK_RANK_CHAIN).unwrap();
        assert!(
            chain.fingerprint.contains("helper"),
            "{}",
            chain.fingerprint
        );
    }

    #[test]
    fn rank_ascending_call_chain_is_clean() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { \
             fn f(&self) { let t = self.topics.read(); self.helper(); } \
             fn helper(&self) { let v = self.version.lock(); } }",
        )]);
        assert!(
            !rules_of(&v).contains(&LOCK_RANK_CHAIN) && !rules_of(&v).contains(&LOCK_RANK),
            "{v:?}"
        );
    }

    #[test]
    fn empirical_cycle_fails_even_unranked() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { \
             fn f(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); } \
             fn g(&self) { let b = self.beta.lock(); let a = self.alpha.lock(); } }",
        )]);
        assert!(rules_of(&v).contains(&LOCK_ORDER_CYCLE), "{v:?}");
    }

    #[test]
    fn cross_fn_cycle_detected_through_calls() {
        let v = run(&[(
            "crates/broker/src/seeded.rs",
            "struct B; impl B { \
             fn f(&self) { let a = self.alpha.lock(); self.takes_beta(); } \
             fn takes_beta(&self) { let b = self.beta.lock(); } \
             fn g(&self) { let b = self.beta.lock(); self.takes_alpha(); } \
             fn takes_alpha(&self) { let a = self.alpha.lock(); } }",
        )]);
        assert!(rules_of(&v).contains(&LOCK_ORDER_CYCLE), "{v:?}");
    }

    #[test]
    fn transitive_alloc_reachable_from_kernel() {
        let v = run(&[
            (
                "crates/tensor/src/kernels/gemm.rs",
                "pub fn gemm_fast(a: &[f32]) { helper_pack(a); }",
            ),
            (
                "crates/tensor/src/packed.rs",
                "pub fn helper_pack(a: &[f32]) { let v = a.to_vec(); }",
            ),
        ]);
        let hits: Vec<_> = v
            .iter()
            .filter(|x| x.rule == HOT_PATH_ALLOC_TRANSITIVE)
            .collect();
        assert_eq!(hits.len(), 1, "{v:?}");
        assert!(hits[0]
            .fingerprint
            .contains("gemm_fast->tensor::packed::helper_pack"));
    }

    #[test]
    fn blocking_reachable_from_reactor_poll_thread() {
        let v = run(&[(
            "crates/net/src/reactor.rs",
            "fn run_reactor() { tick(); }\n\
             fn tick() { std::thread::sleep(d); }",
        )]);
        assert!(rules_of(&v).contains(&BLOCKING_IN_REACTOR), "{v:?}");
        // Bounded waits are fine.
        let clean = run(&[(
            "crates/net/src/reactor.rs",
            "fn run_reactor() { w.wait_timeout(PARK); x.park_timeout(d); }",
        )]);
        assert!(
            !rules_of(&clean).contains(&BLOCKING_IN_REACTOR),
            "{clean:?}"
        );
    }

    #[test]
    fn panic_reachable_from_rpc_handler() {
        let v = run(&[(
            "crates/broker/src/rpc.rs",
            "pub fn dispatch(req: R) { decode(req); }\n\
             fn decode(r: R) { r.field.unwrap(); }",
        )]);
        let hits: Vec<_> = v.iter().filter(|x| x.rule == PANIC_REACHABILITY).collect();
        assert_eq!(hits.len(), 1, "{v:?}");
        assert!(hits[0].fingerprint.ends_with("@unwrap"));
    }

    #[test]
    fn unreachable_panic_is_not_flagged() {
        let v = run(&[(
            "crates/broker/src/rpc.rs",
            "pub fn dispatch(req: R) { decode(req); }\n\
             fn decode(r: R) { r.ok(); }\n\
             fn cold_tool() { x.unwrap(); }",
        )]);
        assert!(!rules_of(&v).contains(&PANIC_REACHABILITY), "{v:?}");
    }
}
