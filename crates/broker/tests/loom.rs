//! Loom models for the broker's long-poll handshake. Compiled only under
//! `RUSTFLAGS="--cfg loom"`.
//!
//! The interesting window: a consumer reads the topic version, finds no
//! data, and goes to sleep on the condvar — while a producer appends and
//! notifies. A lost wakeup here would leave the consumer blocked until its
//! deadline (and forever under loom, whose condvars never time out), so the
//! model proves the fetch long-poll cannot miss a concurrent append.
#![cfg(loom)]

use std::time::Duration;

use bytes::Bytes;
use crayfish_broker::{Broker, PartitionConsumer};
use crayfish_sim::NetworkModel;
use crayfish_sync::{model, thread};

/// The deadline is a liveness bound, never the wakeup mechanism: under loom
/// the only way this poll returns is the append's notification arriving,
/// whatever the interleaving of version read, append, and condvar wait.
#[test]
fn long_poll_never_misses_a_concurrent_append() {
    model(|| {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("t", 1).unwrap();
        let b2 = broker.clone();
        let producer = thread::spawn(move || {
            b2.append("t", 0, vec![(Bytes::from_static(b"x"), 0.0)])
                .unwrap();
        });
        let mut consumer = PartitionConsumer::new(broker, "t", "g", vec![0]).unwrap();
        let recs = consumer.poll(Duration::from_secs(3600)).unwrap();
        assert_eq!(recs.len(), 1, "append lost by the long-poll");
        producer.join().unwrap();
    });
}

/// Offset commits race reads on the registry RwLock; a finished commit must
/// be visible to a subsequent read (what consumer restarts rely on).
#[test]
fn committed_offsets_are_visible_after_the_commit() {
    model(|| {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("t", 1).unwrap();
        let b2 = broker.clone();
        let committer = thread::spawn(move || b2.commit_offset("g", "t", 0, 1));
        let racing = broker.committed_offset("g", "t", 0);
        assert!(racing <= 1);
        committer.join().unwrap();
        assert_eq!(broker.committed_offset("g", "t", 0), 1);
    });
}
