//! Model tuning: pick a batch size that meets a latency budget.
//!
//! The paper's second motivating scenario (§2.2.2): a data scientist wants
//! to know, *before* deployment, how serving latency moves with a
//! configuration knob. Crayfish simulates the production pipeline so the
//! model can be tuned against latency as well as accuracy. Here we sweep
//! the producer batch size for the FFNN on the Flink-style engine and
//! report which settings fit a 50 ms p95 budget.
//!
//! ```sh
//! cargo run --release --example model_tuning
//! ```

use std::time::Duration;

use crayfish::prelude::*;

fn main() {
    const BUDGET_P95_MS: f64 = 50.0;
    println!("Latency-aware tuning: FFNN on flink + embedded onnx (closed loop, ir = 20 ev/s)");
    println!(
        "{:>6} {:>12} {:>12} {:>12}  fits 50 ms p95?",
        "bsz", "p50 (ms)", "p95 (ms)", "ms/point"
    );
    for bsz in [1usize, 4, 16, 64, 128] {
        let mut spec = ExperimentSpec::quick(
            ModelSpec::Ffnn,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.bsz = bsz;
        spec.workload = Workload::Constant { rate: 20.0 };
        spec.duration = Duration::from_secs(3);
        spec.network = NetworkModel::lan_1gbps();
        let result = run_experiment(&FlinkProcessor::new(), &spec).expect("experiment failed");
        let per_point = result.latency.p50 / bsz as f64;
        println!(
            "{bsz:>6} {:>12.2} {:>12.2} {:>12.3}  {}",
            result.latency.p50,
            result.latency.p95,
            per_point,
            if result.latency.p95 <= BUDGET_P95_MS {
                "yes"
            } else {
                "no"
            }
        );
    }
    println!("\nLarger batches amortise per-event overhead (cheaper per point) but");
    println!("stretch end-to-end latency — the trade-off of Figure 5 in the paper.");
}
