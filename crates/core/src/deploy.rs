//! Deployment topologies: in-process (the default) or real child
//! processes wired over TCP.
//!
//! The paper benchmarks clusters — brokers and engine workers on separate
//! machines — while everything else in this repo runs inside one process
//! for determinism. This module is the bridge: `MultiProcess` experiments
//! spawn the `crayfish-node` broker binary per node and (optionally) the
//! `crayfish-worker` engine binary per worker, then talk to them through
//! the same [`BrokerApi`] seam the in-process broker implements. Workers
//! that die are respawned and resume from their group's committed offsets,
//! so a SIGKILL mid-stream costs recovery time, never data.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crayfish_broker::{connect_cluster, RemoteBroker};

use crate::processor::RunningJob;
use crate::{CoreError, Result};

/// Where an experiment's broker cluster and engine workers live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeploymentTopology {
    /// Everything in this process (the deterministic default).
    #[default]
    InProcess,
    /// Real child processes over TCP: `broker_nodes` replicated broker
    /// processes (RF = nodes, quorum = majority), and `engine_workers`
    /// scoring processes. With `engine_workers == 0` the engine under test
    /// still runs in-process but speaks to the broker cluster over the
    /// wire.
    MultiProcess {
        /// Broker node processes (node 0 bootstraps as leader).
        broker_nodes: u32,
        /// Engine worker processes; 0 keeps the engine in-process.
        engine_workers: u32,
    },
}

/// Environment variable naming the broker-node binary (tests set it from
/// `CARGO_BIN_EXE_crayfish-node`).
pub const NODE_BIN_ENV: &str = "CRAYFISH_NODE_BIN";
/// Environment variable naming the engine-worker binary.
pub const WORKER_BIN_ENV: &str = "CRAYFISH_WORKER_BIN";

/// Find a companion binary: the env override first, then siblings of the
/// current executable (`target/<profile>/` for binaries, one level up for
/// test executables living in `deps/`).
fn locate_bin(env_var: &str, name: &str) -> Result<PathBuf> {
    if let Ok(p) = std::env::var(env_var) {
        let p = PathBuf::from(p);
        if p.is_file() {
            return Ok(p);
        }
        return Err(CoreError::Config(format!(
            "{env_var} points at {p:?}, which does not exist"
        )));
    }
    let exe =
        std::env::current_exe().map_err(|e| CoreError::Config(format!("current_exe: {e}")))?;
    let file = format!("{name}{}", std::env::consts::EXE_SUFFIX);
    let mut dir = exe.parent();
    for _ in 0..2 {
        if let Some(d) = dir {
            let candidate = d.join(&file);
            if candidate.is_file() {
                return Ok(candidate);
            }
            dir = d.parent();
        }
    }
    Err(CoreError::Config(format!(
        "cannot locate the {name} binary; build it (cargo build --bins) or set {env_var}"
    )))
}

/// Reserve `n` distinct loopback ports by binding then releasing them.
/// Marginally racy, but child processes bind within milliseconds.
fn free_addrs(n: u32) -> Result<Vec<SocketAddr>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| {
            TcpListener::bind("127.0.0.1:0")
                .map_err(|e| CoreError::Config(format!("reserve port: {e}")))
        })
        .collect::<Result<_>>()?;
    listeners
        .iter()
        .map(|l| {
            l.local_addr()
                .map_err(|e| CoreError::Config(format!("local_addr: {e}")))
        })
        .collect()
}

/// A running cluster of `crayfish-node` child processes.
///
/// Children are killed on [`BrokerCluster::shutdown`] or drop, so a
/// panicking test never leaks broker processes.
#[derive(Debug)]
pub struct BrokerCluster {
    children: Vec<(u32, Option<Child>)>,
    addrs: Vec<(u32, SocketAddr)>,
}

impl BrokerCluster {
    /// The node id → address table clients connect with.
    pub fn addrs(&self) -> &[(u32, SocketAddr)] {
        &self.addrs
    }

    /// A failover-aware client for this cluster.
    pub fn client(
        &self,
        obs: crate::obs::ObsHandle,
        chaos: crate::chaos::ChaosHandle,
    ) -> Arc<RemoteBroker> {
        connect_cluster(&self.addrs, obs, chaos)
    }

    /// SIGKILL one node (no graceful shutdown — this is the crash drill).
    /// Returns false if the node is unknown or already dead.
    pub fn kill_node(&mut self, id: u32) -> bool {
        for (nid, child) in self.children.iter_mut() {
            if *nid == id {
                if let Some(mut c) = child.take() {
                    let _ = c.kill();
                    let _ = c.wait();
                    return true;
                }
            }
        }
        false
    }

    /// Kill and reap every remaining node.
    pub fn shutdown(&mut self) {
        for (_, child) in self.children.iter_mut() {
            if let Some(mut c) = child.take() {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
}

impl Drop for BrokerCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn `nodes` broker processes on free loopback ports, fully meshed,
/// node 0 bootstrapped as leader at epoch 0, and wait until every node
/// answers a ping.
pub fn spawn_broker_cluster(nodes: u32, min_isr: u32) -> Result<BrokerCluster> {
    if nodes == 0 {
        return Err(CoreError::Config("broker_nodes must be >= 1".into()));
    }
    let bin = locate_bin(NODE_BIN_ENV, "crayfish-node")?;
    let ports = free_addrs(nodes)?;
    let addrs: Vec<(u32, SocketAddr)> = (0..nodes).map(|i| (i, ports[i as usize])).collect();

    let mut cluster = BrokerCluster {
        children: Vec::new(),
        addrs: addrs.clone(),
    };
    for &(id, addr) in &addrs {
        let mut cmd = Command::new(&bin);
        cmd.arg("--id")
            .arg(id.to_string())
            .arg("--listen")
            .arg(addr.to_string())
            .arg("--min-isr")
            .arg(min_isr.to_string())
            .stdin(Stdio::null());
        if id == 0 {
            cmd.arg("--leader");
        }
        for &(pid, paddr) in &addrs {
            if pid != id {
                cmd.arg("--peer").arg(format!("{pid}={paddr}"));
            }
        }
        let child = cmd
            .spawn()
            .map_err(|e| CoreError::Config(format!("spawn {bin:?}: {e}")))?;
        cluster.children.push((id, Some(child)));
    }

    // Readiness: every node must answer a status probe before the
    // experiment starts, or topic creation races the listeners coming up.
    let deadline = crayfish_sim::now() + Duration::from_secs(10);
    for &(id, addr) in &addrs {
        loop {
            if crayfish_broker::probe_node(addr).is_some() {
                break;
            }
            if crayfish_sim::now() >= deadline {
                return Err(CoreError::Config(format!(
                    "broker node {id} at {addr} did not become ready"
                )));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    Ok(cluster)
}

/// Everything a `crayfish-worker` child needs on its command line.
#[derive(Debug, Clone)]
pub struct WorkerFleetSpec {
    /// The broker cluster the workers connect to.
    pub nodes: Vec<(u32, SocketAddr)>,
    /// Input topic (scored from committed offsets).
    pub input_topic: String,
    /// Output topic.
    pub output_topic: String,
    /// Consumer group (shared by all workers of the fleet).
    pub group: String,
    /// Partition count of the input topic (split round-robin).
    pub partitions: u32,
    /// Model name (`crayfish_models::ModelSpec::by_name`).
    pub model: String,
    /// Weight seed.
    pub seed: u64,
    /// Worker process count.
    pub workers: u32,
}

struct WorkerProc {
    args: Vec<String>,
    child: Option<Child>,
}

/// Spawn the worker fleet and return the supervised job handle. A worker
/// that exits while the job runs (crash, SIGKILL) is respawned with the
/// same arguments and resumes from committed offsets; each respawn
/// increments the `worker_process_restarts` counter.
pub fn spawn_workers(
    spec: &WorkerFleetSpec,
    obs: &crate::obs::ObsHandle,
) -> Result<Box<dyn RunningJob>> {
    if spec.workers == 0 {
        return Err(CoreError::Config("engine_workers must be >= 1".into()));
    }
    let bin = locate_bin(WORKER_BIN_ENV, "crayfish-worker")?;
    let nodes_arg = spec
        .nodes
        .iter()
        .map(|(id, addr)| format!("{id}={addr}"))
        .collect::<Vec<_>>()
        .join(",");
    let mut procs = Vec::new();
    for w in 0..spec.workers {
        let mine: Vec<String> = (0..spec.partitions)
            .filter(|p| p % spec.workers == w)
            .map(|p| p.to_string())
            .collect();
        if mine.is_empty() {
            continue; // more workers than partitions
        }
        let args = vec![
            "--nodes".into(),
            nodes_arg.clone(),
            "--input".into(),
            spec.input_topic.clone(),
            "--output".into(),
            spec.output_topic.clone(),
            "--group".into(),
            spec.group.clone(),
            "--partitions".into(),
            mine.join(","),
            "--model".into(),
            spec.model.clone(),
            "--seed".into(),
            spec.seed.to_string(),
        ];
        let child = Command::new(&bin)
            .args(&args)
            .stdin(Stdio::null())
            .spawn()
            .map_err(|e| CoreError::Config(format!("spawn {bin:?}: {e}")))?;
        procs.push(WorkerProc {
            args,
            child: Some(child),
        });
    }

    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let restarts = obs.counter("worker_process_restarts");
    let supervisor = std::thread::Builder::new()
        .name("worker-fleet".into())
        .spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                for p in procs.iter_mut() {
                    let exited = match p.child.as_mut().map(|c| c.try_wait()) {
                        Some(Ok(Some(_))) => true,
                        Some(Ok(None)) => false,
                        Some(Err(_)) | None => true,
                    };
                    if exited && !flag.load(Ordering::SeqCst) {
                        p.child = Command::new(&bin)
                            .args(&p.args)
                            .stdin(Stdio::null())
                            .spawn()
                            .ok();
                        restarts.inc();
                    }
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            for p in procs.iter_mut() {
                if let Some(mut c) = p.child.take() {
                    let _ = c.kill();
                    let _ = c.wait();
                }
            }
        })
        .map_err(|e| CoreError::Config(format!("spawn worker-fleet supervisor: {e}")))?;

    Ok(Box::new(WorkerFleetJob {
        stop,
        supervisor: Some(supervisor),
    }))
}

struct WorkerFleetJob {
    stop: Arc<AtomicBool>,
    supervisor: Option<std::thread::JoinHandle<()>>,
}

impl RunningJob for WorkerFleetJob {
    fn stop(mut self: Box<Self>) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.supervisor.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_topology_is_in_process() {
        assert_eq!(DeploymentTopology::default(), DeploymentTopology::InProcess);
    }

    #[test]
    fn zero_nodes_is_rejected() {
        assert!(spawn_broker_cluster(0, 1).is_err());
    }

    #[test]
    fn missing_env_binary_is_a_config_error() {
        std::env::set_var(NODE_BIN_ENV, "/nonexistent/crayfish-node");
        let err = locate_bin(NODE_BIN_ENV, "crayfish-node").unwrap_err();
        std::env::remove_var(NODE_BIN_ENV);
        assert!(err.to_string().contains("does not exist"), "{err}");
    }

    #[test]
    fn free_addrs_are_distinct() {
        let addrs = free_addrs(4).unwrap();
        for (i, a) in addrs.iter().enumerate() {
            for b in &addrs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
