//! ONNX Runtime analog: the graph-optimised embedded library.

use crayfish_models::ModelFormat;
use crayfish_tensor::NnGraph;

use crate::device::Device;
use crate::exec::{FusedExec, GpuExec};
use crate::precision::{Precision, QuantConfig};
use crate::runtimes::{EmbeddedRuntime, FusedModel, GpuModel, LoadedModel};
use crate::Result;

/// The ONNX-Runtime-style embedded library.
///
/// `load` compiles the model with the full optimisation pipeline
/// (Conv+BN folding, ReLU fusion, arena reuse — see
/// [`crate::exec::fused`]); `apply` executes the compiled plan. This is the
/// paper's fastest embedded option because of exactly these optimisations.
#[derive(Debug, Default, Clone, Copy)]
pub struct OnnxRuntime {
    quant: QuantConfig,
}

impl OnnxRuntime {
    /// Create the runtime (f32 plans).
    pub fn new() -> Self {
        OnnxRuntime::default()
    }

    /// Compile CPU plans at `precision` with the default calibration gate
    /// (the GPU path always stays f32).
    pub fn with_precision(precision: Precision) -> Self {
        Self::with_quant(QuantConfig::with_precision(precision))
    }

    /// Compile CPU plans with an explicit quantization config.
    pub fn with_quant(quant: QuantConfig) -> Self {
        OnnxRuntime { quant }
    }
}

impl EmbeddedRuntime for OnnxRuntime {
    fn name(&self) -> &'static str {
        "onnx"
    }

    fn expected_format(&self) -> ModelFormat {
        ModelFormat::Onnx
    }

    fn load_graph(&self, graph: &NnGraph, device: Device) -> Result<Box<dyn LoadedModel>> {
        match device {
            Device::Cpu => Ok(Box::new(FusedModel {
                name: self.name(),
                exec: FusedExec::with_precision(graph, self.quant)?,
            })),
            Device::Gpu(spec) => Ok(Box::new(GpuModel {
                name: self.name(),
                exec: GpuExec::new(graph, spec)?,
            })),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;
    use crayfish_tensor::Tensor;

    #[test]
    fn loads_and_scores() {
        let rt = OnnxRuntime::new();
        let mut model = rt.load_graph(&tiny::tiny_mlp(1), Device::Cpu).unwrap();
        let out = model
            .apply(&Tensor::seeded_uniform([2, 8, 8], 3, 0.0, 1.0))
            .unwrap();
        assert_eq!(out.shape().dims(), &[2, 4]);
    }

    #[test]
    fn expected_format_is_onnx() {
        assert_eq!(OnnxRuntime::new().expected_format(), ModelFormat::Onnx);
    }
}
