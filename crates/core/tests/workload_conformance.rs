//! Statistical conformance of the workload generator: the bursty producer
//! must actually emit at two distinguishable rates with the configured
//! phase lengths.

use std::time::Duration;

use crayfish_broker::Broker;
use crayfish_core::workload::{start_producer, Workload};
use crayfish_sim::NetworkModel;
use crayfish_tensor::Shape;

#[test]
fn bursty_producer_emits_two_rates() {
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("in", 1).unwrap();
    // 1 s quiet at 200/s, 1 s burst at 1200/s, repeating.
    let handle = start_producer(
        broker.clone(),
        "in",
        Shape::from([4]),
        1,
        Workload::Bursty {
            base: 200.0,
            burst: 1200.0,
            burst_secs: 1.0,
            between_secs: 1.0,
        },
        7,
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(4200));
    handle.stop();

    // Bucket the broker's append times into 250 ms windows.
    let recs = broker.read("in", 0, 0, usize::MAX, usize::MAX).unwrap();
    assert!(recs.len() > 1000, "only {} records", recs.len());
    let t0 = recs.first().unwrap().append_time_ms;
    let mut buckets = [0usize; 18];
    for r in &recs {
        let i = ((r.append_time_ms - t0) / 250.0) as usize;
        if i < buckets.len() {
            buckets[i] += 1;
        }
    }
    // Drop edge buckets; classify the rest by rate.
    let mid = &buckets[1..16];
    let quiet = mid.iter().filter(|&&c| c < 100).count();
    let bursty = mid.iter().filter(|&&c| c > 200).count();
    assert!(
        quiet >= 3 && bursty >= 3,
        "phases indistinct: buckets (events/250ms) = {mid:?}"
    );
}

#[test]
fn constant_producer_rate_is_steady() {
    let broker = Broker::new(NetworkModel::zero());
    broker.create_topic("in", 1).unwrap();
    let handle = start_producer(
        broker.clone(),
        "in",
        Shape::from([4]),
        1,
        Workload::Constant { rate: 1000.0 },
        3,
    )
    .unwrap();
    std::thread::sleep(Duration::from_millis(1500));
    handle.stop();
    let recs = broker.read("in", 0, 0, usize::MAX, usize::MAX).unwrap();
    let t0 = recs.first().unwrap().append_time_ms;
    let mut buckets = vec![0usize; 6];
    for r in &recs {
        let i = ((r.append_time_ms - t0) / 250.0) as usize;
        if i < buckets.len() {
            buckets[i] += 1;
        }
    }
    // Every interior 250 ms window carries roughly 250 events.
    for (i, &c) in buckets[1..5].iter().enumerate() {
        assert!(
            (150..400).contains(&c),
            "bucket {i} has {c} events: {buckets:?}"
        );
    }
}
