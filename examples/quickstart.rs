//! Quickstart: run one Crayfish experiment end to end.
//!
//! Deploys the Flink-style engine with embedded ONNX serving over the tiny
//! MLP, generates a constant-rate stream for a couple of seconds, and
//! prints the throughput and latency summary — the minimal "is everything
//! wired up" check.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use crayfish::prelude::*;

fn main() {
    let mut spec = ExperimentSpec::quick(
        ModelSpec::TinyMlp,
        ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        },
    );
    spec.workload = Workload::Constant { rate: 500.0 };
    spec.duration = Duration::from_secs(3);
    spec.network = NetworkModel::lan_1gbps();

    println!("engine      : flink (chained, mp = {})", spec.mp);
    println!("serving     : {}", spec.serving.label());
    println!("model       : {}", spec.model.name());
    println!("workload    : 500 events/s for {:?}", spec.duration);
    println!();

    let result = run_experiment(&FlinkProcessor::new(), &spec).expect("experiment failed");

    println!("produced    : {}", result.produced);
    println!("scored      : {}", result.consumed);
    println!("throughput  : {:.1} events/s", result.throughput_eps);
    println!(
        "latency     : mean {:.2} ms  p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms",
        result.latency.mean, result.latency.p50, result.latency.p95, result.latency.p99
    );
}
