//! The data-processor abstraction engines implement.
//!
//! §3.2 of the paper: any event-based system that can express its
//! computation as a DAG of an input operator, a scoring operator, and an
//! output operator qualifies. Engines receive a [`ProcessorContext`] naming
//! the broker, the topics, the serving tool, and the parallelism (`mp`),
//! and return a [`RunningJob`] the runner stops when the experiment ends.

use std::sync::Arc;

use crayfish_broker::BrokerApi;

use crate::scoring::ScorerSpec;
use crate::Result;

/// Everything an engine needs to run the Crayfish pipeline.
#[derive(Debug, Clone)]
pub struct ProcessorContext {
    /// The shared broker "cluster" — in-process, or a remote client when
    /// the experiment deploys brokers as separate processes. Engines only
    /// see the [`BrokerApi`] seam, so the same pipeline code runs in both
    /// topologies.
    pub broker: Arc<dyn BrokerApi>,
    /// Topic carrying `CrayfishDataBatch` payloads.
    pub input_topic: String,
    /// Topic receiving `ScoredBatch` payloads.
    pub output_topic: String,
    /// Consumer group of the engine's sources.
    pub group: String,
    /// The serving alternative under test.
    pub scorer: ScorerSpec,
    /// Degree of parallelism (`mp` in Table 1).
    pub mp: usize,
}

impl ProcessorContext {
    /// The observability recorder engines tag spans and counters into.
    /// Lives on the broker so every client of the run's broker — engine
    /// tasks, producers, consumers — shares one recorder; disabled unless
    /// the runner was given a live handle.
    pub fn obs(&self) -> &crate::obs::ObsHandle {
        self.broker.obs()
    }

    /// The fault switches for this run. Like `obs`, they live on the broker
    /// so every component shares one set; disabled unless the runner was
    /// given a live chaos handle, in which case engine workers honour
    /// injected crashes and report recovery successes.
    pub fn chaos(&self) -> &crayfish_chaos::ChaosHandle {
        self.broker.chaos()
    }

    /// Validate common invariants before an engine starts. Catching these
    /// here keeps misconfigurations out of the worker loop, where they
    /// would surface as confusing mid-run failures: an empty group cannot
    /// track committed offsets, and a shared input/output topic feeds the
    /// engine its own scored output.
    pub fn validate(&self) -> Result<()> {
        if self.mp == 0 {
            return Err(crate::CoreError::Config("mp must be >= 1".into()));
        }
        if self.group.is_empty() {
            return Err(crate::CoreError::Config(
                "consumer group must be non-empty".into(),
            ));
        }
        if self.input_topic == self.output_topic {
            return Err(crate::CoreError::Config(format!(
                "input and output topics must differ (both {:?})",
                self.input_topic
            )));
        }
        self.broker.partitions(&self.input_topic)?;
        self.broker.partitions(&self.output_topic)?;
        Ok(())
    }
}

/// A started streaming job.
pub trait RunningJob: Send {
    /// Gracefully stop all tasks and join their threads. Records already
    /// fetched may finish processing; nothing new is fetched afterwards.
    fn stop(self: Box<Self>);
}

/// A stream processing system adapter (the paper's SUT data processor).
pub trait DataProcessor: Send + Sync {
    /// Engine name as used in configurations ("flink", "kstreams",
    /// "sparkss", "ray").
    fn name(&self) -> &'static str;
    /// Deploy the input→scoring→output pipeline and start processing.
    fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_broker::Broker;
    use crayfish_models::tiny;
    use crayfish_runtime::{Device, EmbeddedLib};
    use crayfish_sim::NetworkModel;

    fn ctx(mp: usize) -> ProcessorContext {
        let broker: Arc<dyn BrokerApi> = Broker::new(NetworkModel::zero());
        broker.create_topic("in", 4).unwrap();
        broker.create_topic("out", 4).unwrap();
        ProcessorContext {
            broker,
            input_topic: "in".into(),
            output_topic: "out".into(),
            group: "sut".into(),
            scorer: ScorerSpec::Embedded {
                lib: EmbeddedLib::Onnx,
                graph: Arc::new(tiny::tiny_mlp(1)),
                device: Device::Cpu,
            },
            mp,
        }
    }

    #[test]
    fn validate_accepts_sane_contexts() {
        assert!(ctx(1).validate().is_ok());
        assert!(ctx(16).validate().is_ok());
    }

    #[test]
    fn validate_rejects_zero_parallelism_and_missing_topics() {
        assert!(ctx(0).validate().is_err());
        let mut c = ctx(1);
        c.input_topic = "missing".into();
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_group() {
        let mut c = ctx(1);
        c.group = String::new();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("group"), "{err}");
    }

    #[test]
    fn validate_rejects_input_equal_to_output() {
        let mut c = ctx(1);
        c.output_topic = c.input_topic.clone();
        let err = c.validate().unwrap_err();
        assert!(err.to_string().contains("differ"), "{err}");
    }
}
