//! # crayfish-flink
//!
//! A push-based, pipelined dataflow engine in the style of Apache Flink
//! (§3.4.1 of the paper), implementing the Crayfish `DataProcessor`
//! interface.
//!
//! Mechanisms reproduced:
//!
//! * **Operator chaining** (the default): source → scoring → sink fuse into
//!   one task per parallel subtask — no intermediate buffers, the
//!   configuration behind the paper's `flink[N-N-N]`.
//! * **Operator-level parallelism** with chaining disabled
//!   (`flink[32-N-32]`, §6.1): independent source/scoring/sink task counts
//!   connected by network-buffer exchanges.
//! * **Network buffers**: records between unchained operators accumulate
//!   into fixed-size buffers flushed when full or when the buffer timeout
//!   expires — the buffering the paper blames for Flink's latency on large
//!   records (§5.3.2).
//! * **Backpressure**: exchanges are bounded; a slow downstream blocks the
//!   upstream push.

#![forbid(unsafe_code)]

pub mod exchange;
pub mod job;

pub use job::{FlinkOptions, FlinkProcessor, OperatorParallelism};
