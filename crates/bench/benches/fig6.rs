//! **Figure 6** — vertical scalability of every serving tool on the
//! Flink-style engine (FFNN, offered 30 k events/s, `bsz = 1`).

use crayfish::prelude::*;
use crayfish_bench::*;

/// Paper-reported peak throughput (events/s) and the parallelism at which
/// it occurs.
fn paper_peak(tool: &str) -> (f64, usize) {
    match tool {
        "dl4j (e)" => (2_800.0, 8),
        "onnx (e)" => (13_600.0, 16),
        "saved_model (e)" => (10_400.0, 16),
        "torchserve (x)" => (2_800.0, 16),
        "tf-serving (x)" => (9_800.0, 16),
        _ => (0.0, 0),
    }
}

fn main() {
    let flink = FlinkProcessor::new();
    let mut table = Table::new(
        "Figure 6: vertical scaling on Flink (events/s, FFNN, ir=30k, bsz=1)",
        &["serving tool", "mp", "measured", "paper peak (mp)"],
    );
    let mut dump = Vec::new();
    for (tool, serving) in ffnn_tools() {
        let mut peak = 0.0f64;
        for mp in mp_sweep() {
            let mut spec = base_spec(ModelSpec::Ffnn, serving);
            spec.mp = mp;
            spec.workload = Workload::Constant {
                rate: OVERLOAD_FFNN,
            };
            let result = run(&format!("fig6/{tool}/mp{mp}"), &flink, &spec);
            peak = peak.max(result.throughput_eps);
            let (paper_eps, paper_mp) = paper_peak(tool);
            table.row(vec![
                tool.into(),
                mp.to_string(),
                eps(result.throughput_eps),
                format!("{paper_eps:.0} (mp={paper_mp})"),
            ]);
            dump.push(Measurement::of(format!("{tool}/mp{mp}"), &result));
        }
        eprintln!("  {tool}: measured peak {peak:.0} events/s");
    }
    table.print();
    println!("\nPaper shape: onnx scales to mp=16 and tops the chart; saved_model close");
    println!("behind; dl4j stops scaling early; tf-serving scales steadily and passes");
    println!("dl4j; torchserve trails. Embedded options share resources with the SPS,");
    println!("external ones keep improving with workers.");
    save_json("fig6", &dump);
}
