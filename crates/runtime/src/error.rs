//! Error type for model runtimes.

use std::fmt;

/// Errors from loading or applying a model.
#[derive(Debug)]
pub enum RuntimeError {
    /// Tensor/graph-level failure.
    Tensor(crayfish_tensor::TensorError),
    /// Model deserialization failure.
    Model(crayfish_models::ModelError),
    /// The input tensor does not match the model's expected shape.
    BadInput(String),
    /// The requested device or configuration is not supported.
    Unsupported(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Tensor(e) => write!(f, "tensor error: {e}"),
            RuntimeError::Model(e) => write!(f, "model error: {e}"),
            RuntimeError::BadInput(msg) => write!(f, "bad input: {msg}"),
            RuntimeError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Tensor(e) => Some(e),
            RuntimeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crayfish_tensor::TensorError> for RuntimeError {
    fn from(e: crayfish_tensor::TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

impl From<crayfish_models::ModelError> for RuntimeError {
    fn from(e: crayfish_models::ModelError) -> Self {
        RuntimeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_context() {
        let e = RuntimeError::BadInput("expected [1, 28, 28]".into());
        assert!(e.to_string().contains("28"));
    }
}
