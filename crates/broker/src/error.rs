//! Broker error type.

use std::fmt;

/// Errors returned by broker operations.
///
/// The enum derives `Serialize`/`Deserialize` so a broker-side failure
/// round-trips *typed* through the RPC layer: a remote client matching on
/// [`BrokerError::FencedLeaderEpoch`] or [`BrokerError::NotEnoughReplicas`]
/// sees exactly the variant (and fields) the broker produced, never a
/// stringified copy.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum BrokerError {
    /// The topic does not exist.
    UnknownTopic(String),
    /// The partition index is out of range for the topic.
    UnknownPartition {
        /// Topic name.
        topic: String,
        /// Requested partition.
        partition: u32,
    },
    /// A topic with this name already exists.
    TopicExists(String),
    /// The producer has been closed.
    ProducerClosed,
    /// A fetch referenced an offset beyond the log end (only possible with
    /// explicit seeks).
    OffsetOutOfRange {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Requested offset.
        offset: u64,
        /// Current log end.
        end: u64,
    },
    /// The topic's partitions are temporarily unavailable (fault injection:
    /// a partition-outage window, or a lost append ack). Transient — safe
    /// to retry.
    Unavailable {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
    },
    /// A client-side fabric failure: a producer sender thread could not be
    /// spawned or panicked. Terminal for the client that hit it.
    Fabric(String),
    /// The append carried a stale leader epoch: an election happened after
    /// the producer fetched metadata. Transient — refresh and retry lands
    /// on the new leader (where the replicated dedup window still applies).
    FencedLeaderEpoch {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// The epoch currently in force.
        current: u64,
    },
    /// Fewer in-sync replicas than `min.insync.replicas`: the append was
    /// refused rather than risk losing it on the next failover. Transient —
    /// retried once a replica node returns and catches up.
    NotEnoughReplicas {
        /// Topic name.
        topic: String,
        /// Partition.
        partition: u32,
        /// Current ISR size.
        isr: u32,
        /// Required minimum.
        min_isr: u32,
    },
    /// A replication configuration that cannot be laid out (for example a
    /// replication factor above the broker count).
    InvalidCluster(String),
    /// A group operation raced a membership change: the caller's generation
    /// is stale. Rejoin/re-fetch the assignment and retry.
    RebalanceInProgress {
        /// Consumer group.
        group: String,
    },
    /// The caller is not (or no longer) a member of the consumer group.
    NotGroupMember {
        /// Consumer group.
        group: String,
        /// Member id.
        member: String,
    },
    /// The node that received the request is not the cluster leader
    /// (multi-process deployment). Transient — the client re-discovers the
    /// leader and retries.
    NotLeader {
        /// The epoch the node last observed.
        epoch: u64,
    },
    /// The RPC transport failed before a broker-side answer arrived
    /// (connection refused/reset, malformed frame). Transient — clients
    /// retry, and the broker's dedup window absorbs any append whose first
    /// attempt actually landed.
    Transport(String),
}

impl BrokerError {
    /// Whether retrying the operation can succeed. Producers retry
    /// transient errors with backoff; everything else is terminal.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            BrokerError::Unavailable { .. }
                | BrokerError::FencedLeaderEpoch { .. }
                | BrokerError::NotEnoughReplicas { .. }
                | BrokerError::NotLeader { .. }
                | BrokerError::Transport(_)
        )
    }
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownTopic(t) => write!(f, "unknown topic: {t}"),
            BrokerError::UnknownPartition { topic, partition } => {
                write!(f, "unknown partition {partition} of topic {topic}")
            }
            BrokerError::TopicExists(t) => write!(f, "topic already exists: {t}"),
            BrokerError::ProducerClosed => write!(f, "producer closed"),
            BrokerError::OffsetOutOfRange {
                topic,
                partition,
                offset,
                end,
            } => write!(
                f,
                "offset {offset} out of range for {topic}/{partition} (log end {end})"
            ),
            BrokerError::Unavailable { topic, partition } => {
                write!(f, "partition {partition} of topic {topic} unavailable")
            }
            BrokerError::Fabric(msg) => write!(f, "client fabric failure: {msg}"),
            BrokerError::FencedLeaderEpoch {
                topic,
                partition,
                current,
            } => write!(
                f,
                "stale leader epoch for {topic}/{partition} (current epoch {current})"
            ),
            BrokerError::NotEnoughReplicas {
                topic,
                partition,
                isr,
                min_isr,
            } => write!(
                f,
                "{topic}/{partition} has {isr} in-sync replicas, {min_isr} required"
            ),
            BrokerError::InvalidCluster(msg) => write!(f, "invalid cluster config: {msg}"),
            BrokerError::RebalanceInProgress { group } => {
                write!(f, "group {group} is rebalancing; generation is stale")
            }
            BrokerError::NotGroupMember { group, member } => {
                write!(f, "{member} is not a member of group {group}")
            }
            BrokerError::NotLeader { epoch } => {
                write!(f, "node is not the cluster leader (epoch {epoch})")
            }
            BrokerError::Transport(msg) => write!(f, "broker transport failure: {msg}"),
        }
    }
}

impl std::error::Error for BrokerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_topic() {
        assert!(BrokerError::UnknownTopic("in".into())
            .to_string()
            .contains("in"));
    }

    #[test]
    fn replication_rejections_are_transient_membership_is_not() {
        assert!(BrokerError::Unavailable {
            topic: "in".into(),
            partition: 0
        }
        .is_transient());
        assert!(BrokerError::FencedLeaderEpoch {
            topic: "in".into(),
            partition: 0,
            current: 3
        }
        .is_transient());
        assert!(BrokerError::NotEnoughReplicas {
            topic: "in".into(),
            partition: 0,
            isr: 1,
            min_isr: 2
        }
        .is_transient());
        assert!(BrokerError::NotLeader { epoch: 1 }.is_transient());
        assert!(BrokerError::Transport("reset".into()).is_transient());
        assert!(!BrokerError::UnknownTopic("in".into()).is_transient());
        assert!(!BrokerError::ProducerClosed.is_transient());
        assert!(!BrokerError::RebalanceInProgress { group: "g".into() }.is_transient());
        assert!(!BrokerError::NotGroupMember {
            group: "g".into(),
            member: "m".into()
        }
        .is_transient());
    }
}
