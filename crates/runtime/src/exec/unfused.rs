//! The direct (one-kernel-per-node) graph executor.

use std::time::Duration;

use crayfish_sim::Cost;
use crayfish_tensor::kernels::quant::amax;
use crayfish_tensor::kernels::{
    activation, add_inplace,
    conv::{conv2d_direct, conv2d_dispatch_into},
    gemm::dense_dispatch_into,
    norm, pool,
};
use crayfish_tensor::{
    ConvWeights, DenseWeights, GemmScratch, NnGraph, Op, PackedA, PackedA16, PackedB, PackedB16,
    QuantizedA, QuantizedB, Shape, Tensor,
};

use crate::error::RuntimeError;
use crate::exec::check_batched_input;
use crate::precision::{LayerReport, Precision, PrecisionReport, QuantConfig};
use crate::Result;

/// Simulated foreign-function boundary configuration for DL4J-style
/// execution: every op crossing pays a real marshalling copy
/// (`f32 → f64 → f32` of its input activation, as a JVM binding converting
/// to/from `INDArray` storage does) plus the calibrated per-call cost.
#[derive(Debug, Clone, Copy)]
pub struct JniBoundary {
    /// Per-call fixed + per-byte cost (see `crayfish_sim::calibration`).
    pub cost: Cost,
}

/// A node's weight operand, packed once at executor-build time so
/// steady-state inference performs zero weight packing (even the unfused
/// runtimes' underlying BLAS pre-packs weights at model load).
#[derive(Debug)]
enum NodePack {
    None,
    /// Dense weight as the GEMM's right operand, at the plan's precision.
    Dense(DenseWeights),
    /// Conv weight (`[out_c, in_c*k*k]`) as the GEMM's left operand, at the
    /// plan's precision.
    Conv(ConvWeights),
}

/// A candidate reduced-precision weight plus its calibration output,
/// carried between the compute and the adopt/reject decision in
/// [`UnfusedExec::quantize_plan`].
enum CandPack {
    Dense(DenseWeights, Vec<f32>),
    Conv(ConvWeights, Vec<f32>),
}

/// Executes the graph node by node with no cross-op optimisation.
///
/// With `reuse_buffers = true` (SavedModel-style) per-node output buffers
/// persist across calls; with `false` (DL4J-style) every call allocates
/// fresh buffers, as a binding materialising new host arrays would.
#[derive(Debug)]
pub struct UnfusedExec {
    graph: NnGraph,
    input_shape: Shape,
    reuse_buffers: bool,
    /// Use the textbook sliding-window convolution instead of
    /// `im2col`+GEMM — the "eager kernels without off-the-shelf CPU
    /// optimisations" the paper blames for TorchServe's deficit (§5.1.1).
    naive_conv: bool,
    jni: Option<JniBoundary>,
    /// Per-node activation buffers (kept across calls when reusing).
    buffers: Vec<Vec<f32>>,
    /// Cached shape inference for the last-seen batch size.
    shapes: Option<(usize, Vec<Shape>)>,
    col_scratch: Vec<f32>,
    /// Per-node pre-packed weights (indexed by node id).
    packs: Vec<NodePack>,
    gemm_scratch: GemmScratch,
    report: PrecisionReport,
}

impl UnfusedExec {
    /// Build an executor, validating the graph.
    pub fn new(graph: NnGraph, reuse_buffers: bool, jni: Option<JniBoundary>) -> Result<Self> {
        graph.infer_shapes(1)?;
        let input_shape = graph.input_shape()?;
        let n = graph.nodes().len();
        let packs = graph
            .nodes()
            .iter()
            .map(|node| match &node.op {
                Op::Dense { w, .. } => NodePack::Dense(DenseWeights::F32(PackedB::pack(
                    w.data(),
                    w.shape().dim(0),
                    w.shape().dim(1),
                ))),
                Op::Conv2d { w, params, .. } => NodePack::Conv(ConvWeights::F32(PackedA::pack(
                    w.data(),
                    params.out_c,
                    params.in_c * params.kernel * params.kernel,
                ))),
                _ => NodePack::None,
            })
            .collect();
        Ok(UnfusedExec {
            graph,
            input_shape,
            reuse_buffers,
            naive_conv: false,
            jni,
            buffers: (0..n).map(|_| Vec::new()).collect(),
            shapes: None,
            col_scratch: Vec::new(),
            packs,
            gemm_scratch: GemmScratch::new(),
            report: PrecisionReport::default(),
        })
    }

    /// Build an executor whose conv/dense weights are compiled at
    /// `cfg.precision`, with the same per-layer calibration gate as
    /// [`crate::exec::FusedExec::with_precision`]. Unlike the fused plan
    /// there is no BN folding here (batch-norm stays its own node), so the
    /// raw node weights are what gets quantized.
    pub fn with_precision(
        graph: NnGraph,
        reuse_buffers: bool,
        jni: Option<JniBoundary>,
        cfg: QuantConfig,
    ) -> Result<Self> {
        let mut exec = Self::new(graph, reuse_buffers, jni)?;
        if cfg.precision != Precision::F32 {
            exec.report = exec.quantize_plan(&cfg)?;
        }
        Ok(exec)
    }

    /// Per-layer accuracy accounting from plan compilation (empty for f32
    /// plans).
    pub fn precision_report(&self) -> &PrecisionReport {
        &self.report
    }

    /// Node-level quantization post-pass: run a seeded calibration batch at
    /// f32, then re-compute each conv/dense node with candidate quantized
    /// weights against its exact f32 inputs, adopting the candidate only
    /// when the error passes the gate. The naive-conv path ignores packed
    /// weights entirely, so quantization only affects the GEMM-backed path.
    fn quantize_plan(&mut self, cfg: &QuantConfig) -> Result<PrecisionReport> {
        let mut report = PrecisionReport {
            requested: cfg.precision,
            layers: Vec::new(),
        };
        let batch = cfg.calib_batch.max(1);
        let mut dims = vec![batch];
        dims.extend_from_slice(self.input_shape.dims());
        let calib = Tensor::seeded_uniform(Shape::new(dims), cfg.calib_seed, -1.0, 1.0);
        // Fills self.buffers with every node's f32 output (buffers are only
        // cleared at the *start* of a non-reusing run).
        self.run(&calib)?;
        let shapes = &self.shapes.as_ref().expect("shapes cached by run").1;

        for id in 0..self.graph.nodes().len() {
            let node = &self.graph.nodes()[id];
            let oracle = &self.buffers[id];
            let (kind, replacement) = match &node.op {
                Op::Dense { w, b } => {
                    let (inf, outf) = (w.shape().dim(0), w.shape().dim(1));
                    let cand = match cfg.precision {
                        Precision::Int8 => {
                            DenseWeights::Int8(QuantizedB::from_f32(w.data(), inf, outf))
                        }
                        Precision::F16 => DenseWeights::F16(PackedB16::pack(w.data(), inf, outf)),
                        Precision::F32 => unreachable!("quantize_plan is gated on != F32"),
                    };
                    let mut tmp = vec![0.0f32; batch * outf];
                    dense_dispatch_into(
                        &self.buffers[node.inputs[0]],
                        &cand,
                        b.data(),
                        batch,
                        &mut tmp,
                        &mut self.gemm_scratch,
                    );
                    ("dense", CandPack::Dense(cand, tmp))
                }
                Op::Conv2d { w, b, params } => {
                    let krows = params.in_c * params.kernel * params.kernel;
                    let cand = match cfg.precision {
                        Precision::Int8 => {
                            ConvWeights::Int8(QuantizedA::from_f32(w.data(), params.out_c, krows))
                        }
                        Precision::F16 => {
                            ConvWeights::F16(PackedA16::pack(w.data(), params.out_c, krows))
                        }
                        Precision::F32 => unreachable!("quantize_plan is gated on != F32"),
                    };
                    let s = &shapes[node.inputs[0]];
                    let bias: &[f32] = b.as_ref().map(|t| t.data()).unwrap_or(&[]);
                    let mut tmp = vec![0.0f32; shapes[id].numel()];
                    conv2d_dispatch_into(
                        &self.buffers[node.inputs[0]],
                        batch,
                        s.dim(2),
                        s.dim(3),
                        &cand,
                        bias,
                        params,
                        &mut self.col_scratch,
                        &mut tmp,
                        &mut self.gemm_scratch,
                    );
                    ("conv", CandPack::Conv(cand, tmp))
                }
                _ => continue,
            };

            let candidate = match &replacement {
                CandPack::Dense(_, tmp) | CandPack::Conv(_, tmp) => tmp,
            };
            let max_abs_err = candidate
                .iter()
                .zip(oracle)
                .fold(0.0f32, |m, (&c, &o)| m.max((c - o).abs()));
            let rel_err = max_abs_err / amax(oracle).max(1e-12);
            let adopt = rel_err <= cfg.max_rel_err;
            if adopt {
                self.packs[id] = match replacement {
                    CandPack::Dense(cand, _) => NodePack::Dense(cand),
                    CandPack::Conv(cand, _) => NodePack::Conv(cand),
                };
            }
            report.layers.push(LayerReport {
                name: node.name.clone(),
                kind,
                requested: cfg.precision.name(),
                chosen: if adopt { cfg.precision.name() } else { "f32" },
                rel_err,
                max_abs_err,
            });
        }
        Ok(report)
    }

    /// `(ptr, capacity)` of every arena buffer and scratch — lets tests
    /// assert that steady-state inference reuses the arena instead of
    /// reallocating (only meaningful with `reuse_buffers = true`).
    #[doc(hidden)]
    pub fn arena_fingerprint(&self) -> Vec<(usize, usize)> {
        let mut fp: Vec<(usize, usize)> = self
            .buffers
            .iter()
            .map(|b| (b.as_ptr() as usize, b.capacity()))
            .collect();
        fp.push((
            self.col_scratch.as_ptr() as usize,
            self.col_scratch.capacity(),
        ));
        fp.extend(self.gemm_scratch.fingerprint());
        fp
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &NnGraph {
        &self.graph
    }

    /// Switch convolutions to the direct (unoptimised) kernel.
    pub fn with_naive_conv(mut self) -> Self {
        self.naive_conv = true;
        self
    }

    /// Run a forward pass over a `[batch, ..input]` tensor.
    pub fn run(&mut self, input: &Tensor) -> Result<Tensor> {
        let batch = check_batched_input(input, &self.input_shape)?;
        if self.shapes.as_ref().map(|(b, _)| *b) != Some(batch) {
            self.shapes = Some((batch, self.graph.infer_shapes(batch)?));
        }
        let shapes = &self.shapes.as_ref().expect("shapes cached").1;
        if !self.reuse_buffers {
            // A fresh binding call: drop all retained activations.
            for b in &mut self.buffers {
                *b = Vec::new();
            }
            self.col_scratch = Vec::new();
        }

        for node in self.graph.nodes() {
            // Split borrows: the output buffer vs. the input buffers.
            let (before, rest) = self.buffers.split_at_mut(node.id);
            let out = &mut rest[0];
            let in_buf = |i: usize| -> &[f32] { &before[node.inputs[i]] };
            let in_shape = |i: usize| -> &Shape { &shapes[node.inputs[i]] };
            let out_numel = shapes[node.id].numel();

            if let Some(jni) = self.jni {
                // Real marshalling work for the op's inputs: the JVM binding
                // copies the array into foreign storage and back.
                let mut marshalled_bytes = 0usize;
                for i in 0..node.inputs.len() {
                    let src = in_buf(i);
                    let as_f64: Vec<f64> = src.iter().map(|&v| v as f64).collect();
                    let back: Vec<f32> = as_f64.iter().map(|&v| v as f32).collect();
                    // Keep the optimiser honest.
                    debug_assert_eq!(back.len(), src.len());
                    std::hint::black_box(&back);
                    marshalled_bytes += src.len() * 4;
                }
                if !matches!(node.op, Op::Input { .. }) {
                    // JNI/INDArray work is CPU-bound: it contends with real
                    // compute rather than overlapping with it.
                    jni.cost.spend_spinning(marshalled_bytes);
                }
            }

            match &node.op {
                Op::Input { .. } => {
                    out.clear();
                    out.extend_from_slice(input.data());
                }
                Op::Dense { w, b } => {
                    let outf = w.shape().dim(1);
                    out.resize(batch * outf, 0.0);
                    let NodePack::Dense(pw) = &self.packs[node.id] else {
                        unreachable!("dense node packed at build time");
                    };
                    dense_dispatch_into(in_buf(0), pw, b.data(), batch, out, &mut self.gemm_scratch);
                }
                Op::Conv2d { w, b, params } => {
                    let s = in_shape(0);
                    let bias: &[f32] = b.as_ref().map(|t| t.data()).unwrap_or(&[]);
                    if self.naive_conv {
                        *out = conv2d_direct(
                            in_buf(0),
                            batch,
                            s.dim(2),
                            s.dim(3),
                            w.data(),
                            bias,
                            params,
                        );
                    } else {
                        let NodePack::Conv(pw) = &self.packs[node.id] else {
                            unreachable!("conv node packed at build time");
                        };
                        out.resize(out_numel, 0.0);
                        conv2d_dispatch_into(
                            in_buf(0),
                            batch,
                            s.dim(2),
                            s.dim(3),
                            pw,
                            bias,
                            params,
                            &mut self.col_scratch,
                            out,
                            &mut self.gemm_scratch,
                        );
                    }
                }
                Op::BatchNorm { params } => {
                    let s = in_shape(0);
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    let plane: usize = s.dims()[2..].iter().product();
                    norm::batchnorm_inference(out, batch, s.dim(1), plane, params);
                }
                Op::Relu => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    activation::relu_inplace(out);
                }
                Op::MaxPool { k, s: stride, pad } => {
                    let s = in_shape(0);
                    out.resize(out_numel, 0.0);
                    pool::maxpool2d_into(
                        in_buf(0),
                        batch,
                        s.dim(1),
                        s.dim(2),
                        s.dim(3),
                        *k,
                        *stride,
                        *pad,
                        out,
                    );
                }
                Op::GlobalAvgPool => {
                    let s = in_shape(0);
                    out.resize(out_numel, 0.0);
                    pool::avgpool_global_into(in_buf(0), batch, s.dim(1), s.dim(2), s.dim(3), out);
                }
                Op::Add => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    add_inplace(out, in_buf(1));
                }
                Op::Flatten => {
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                }
                Op::Softmax => {
                    let s = &shapes[node.id];
                    out.clear();
                    out.extend_from_slice(in_buf(0));
                    activation::softmax_rows(out, s.dim(0), s.dim(1));
                }
            }
            debug_assert_eq!(out.len(), out_numel, "node {} output size", node.name);
        }

        let out_id = self.graph.output();
        Tensor::from_vec(shapes[out_id].clone(), self.buffers[out_id].clone())
            .map_err(RuntimeError::from)
    }

    /// Total modelled JNI time for one forward pass of `batch` items —
    /// exposed for tests asserting the boundary is actually charged.
    pub fn modelled_jni_time(&self, batch: usize) -> Result<Duration> {
        let Some(jni) = self.jni else {
            return Ok(Duration::ZERO);
        };
        let shapes = self.graph.infer_shapes(batch)?;
        let mut total = Duration::ZERO;
        for node in self.graph.nodes() {
            if matches!(node.op, Op::Input { .. }) {
                continue;
            }
            let bytes: usize = node.inputs.iter().map(|&i| shapes[i].numel() * 4).sum();
            total += jni.cost.duration(bytes);
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;

    #[test]
    fn mlp_outputs_are_distributions() {
        let mut exec = UnfusedExec::new(tiny::tiny_mlp(4), true, None).unwrap();
        let input = Tensor::seeded_uniform([3, 8, 8], 9, 0.0, 1.0);
        let out = exec.run(&input).unwrap();
        assert_eq!(out.shape().dims(), &[3, 4]);
        for i in 0..3 {
            let sum: f32 = out.batch_item(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn cnn_runs_and_is_deterministic() {
        let mut exec = UnfusedExec::new(tiny::tiny_cnn(4), true, None).unwrap();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 1, 0.0, 1.0);
        let a = exec.run(&input).unwrap();
        let b = exec.run(&input).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fresh_buffers_match_reused_buffers() {
        let g = tiny::tiny_cnn(4);
        let mut reuse = UnfusedExec::new(g.clone(), true, None).unwrap();
        let mut fresh = UnfusedExec::new(g, false, None).unwrap();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 2, 0.0, 1.0);
        // Run the reusing executor twice to dirty its buffers first.
        reuse.run(&input).unwrap();
        let a = reuse.run(&input).unwrap();
        let b = fresh.run(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-6);
    }

    #[test]
    fn varying_batch_sizes_work() {
        let mut exec = UnfusedExec::new(tiny::tiny_mlp(4), true, None).unwrap();
        for batch in [1usize, 5, 2, 8] {
            let input = Tensor::seeded_uniform([batch, 8, 8], batch as u64, 0.0, 1.0);
            let out = exec.run(&input).unwrap();
            assert_eq!(out.shape().dims(), &[batch, 4]);
        }
    }

    #[test]
    fn rejects_bad_input_shape() {
        let mut exec = UnfusedExec::new(tiny::tiny_mlp(4), true, None).unwrap();
        assert!(exec.run(&Tensor::zeros([8, 8])).is_err());
        assert!(exec.run(&Tensor::zeros([2, 8, 9])).is_err());
    }

    #[test]
    fn naive_conv_matches_im2col_numerically() {
        let g = tiny::tiny_cnn(9);
        let mut fast = UnfusedExec::new(g.clone(), true, None).unwrap();
        let mut slow = UnfusedExec::new(g, true, None).unwrap().with_naive_conv();
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 5, -1.0, 1.0);
        let a = fast.run(&input).unwrap();
        let b = slow.run(&input).unwrap();
        assert!(a.max_abs_diff(&b).unwrap() < 1e-4);
    }

    #[test]
    fn quantized_plans_track_the_f32_plan() {
        let g = tiny::tiny_cnn(7);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 11, -1.0, 1.0);
        let mut f32_exec = UnfusedExec::new(g.clone(), true, None).unwrap();
        let oracle = f32_exec.run(&input).unwrap();
        for precision in [Precision::Int8, Precision::F16] {
            let cfg = QuantConfig::with_precision(precision);
            let mut exec = UnfusedExec::with_precision(g.clone(), true, None, cfg).unwrap();
            let report = exec.precision_report();
            assert_eq!(report.requested, precision);
            assert!(!report.layers.is_empty(), "conv+dense layers reported");
            let out = exec.run(&input).unwrap();
            assert!(
                oracle.max_abs_diff(&out).unwrap() < 0.05,
                "{} plan drifted",
                precision.name()
            );
        }
    }

    #[test]
    fn zero_threshold_falls_back_to_exact_f32() {
        let g = tiny::tiny_cnn(3);
        let input = Tensor::seeded_uniform([2, 3, 8, 8], 5, -1.0, 1.0);
        let mut f32_exec = UnfusedExec::new(g.clone(), true, None).unwrap();
        let mut cfg = QuantConfig::with_precision(Precision::F16);
        cfg.max_rel_err = 0.0;
        let mut exec = UnfusedExec::with_precision(g, true, None, cfg).unwrap();
        let report = exec.precision_report();
        assert_eq!(report.quantized_count(), 0, "gate rejects every layer");
        assert_eq!(f32_exec.run(&input).unwrap(), exec.run(&input).unwrap());
    }

    #[test]
    fn jni_boundary_charges_time() {
        let cost = Cost::fixed_us(200.0);
        let g = tiny::tiny_mlp(4);
        let mut exec = UnfusedExec::new(g, false, Some(JniBoundary { cost })).unwrap();
        let modelled = exec.modelled_jni_time(1).unwrap();
        // 5 non-input nodes (flatten, fc1, relu1, fc2, softmax) * 200 µs.
        assert!(modelled >= Duration::from_micros(900));
        let input = Tensor::seeded_uniform([1, 8, 8], 1, 0.0, 1.0);
        let sw = crayfish_sim::Stopwatch::start();
        exec.run(&input).unwrap();
        assert!(sw.elapsed() >= modelled, "JNI time not spent");
    }
}
