//! Multi-model serving with hot deployment.
//!
//! §7.2 of the paper singles out what external serving offers that embedded
//! designs lack: "model management, auto-scaling, state sharing,
//! multi-model serving" for industries that "deploy and serve thousands of
//! models ... each with different deployment time, re-deployment
//! periodicity, and lifespan". This module implements that surface for the
//! TF-Serving analog: a server-side registry of named models, versioned
//! hot deployment (a new version replaces the old one without dropping
//! connections), and per-request model selection on the wire.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crayfish_runtime::{EmbeddedRuntime, LoadedModel, OnnxRuntime};
use crayfish_tensor::NnGraph;

use crate::server::{ModelPool, ServingConfig};
use crate::{Result, ServingError};

/// One deployed model: its worker pool and its version number.
#[derive(Clone)]
struct Deployment {
    pool: ModelPool,
    version: u32,
}

/// A shared, hot-swappable registry of named models.
///
/// Cloning the handle shares the registry; the serving loop resolves the
/// target deployment per request, so a `deploy` takes effect for the very
/// next request without restarting the server.
#[derive(Clone, Default)]
pub struct ModelRegistry {
    inner: Arc<RwLock<HashMap<String, Deployment>>>,
    config: ServingConfig,
}

impl ModelRegistry {
    /// An empty registry whose deployments use `config` (replica count and
    /// device per model).
    pub fn new(config: ServingConfig) -> ModelRegistry {
        ModelRegistry {
            inner: Arc::new(RwLock::new(HashMap::new())),
            config,
        }
    }

    /// The registry's serving configuration (shared by every deployment
    /// and by the server fronting this registry).
    pub(crate) fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Deploy (or hot-replace) `name` with `graph`. Returns the new version
    /// number (1 for a first deployment). In-flight requests against the
    /// old version finish on the old pool; new requests see the new one.
    pub fn deploy(&self, name: &str, graph: &NnGraph) -> Result<u32> {
        let loader = OnnxRuntime::new();
        let graph = graph.clone();
        let device = self.config.device;
        self.deploy_with(name, move || loader.load_graph(&graph, device))
    }

    /// Deploy (or hot-replace) `name` from a custom loader, called once per
    /// replica. This is the hook for serving models the stock ONNX executor
    /// cannot produce — a foreign runtime, or a wrapper around a loaded
    /// model (the saturation bench uses it to attach a modelled
    /// service-time cost to each scoring invocation).
    pub fn deploy_with(
        &self,
        name: &str,
        load: impl FnMut() -> crayfish_runtime::Result<Box<dyn LoadedModel>>,
    ) -> Result<u32> {
        // Load outside the lock: model loading is expensive.
        let pool = ModelPool::new(self.config.replicas, &self.config.obs, load)?;
        let mut models = self.inner.write();
        let version = models.get(name).map(|d| d.version + 1).unwrap_or(1);
        models.insert(name.to_string(), Deployment { pool, version });
        Ok(version)
    }

    /// Remove a model. Errors if it was not deployed.
    pub fn undeploy(&self, name: &str) -> Result<()> {
        self.inner
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| ServingError::Config(format!("model not deployed: {name}")))
    }

    /// Deployed model names with their current versions, sorted by name.
    pub fn deployments(&self) -> Vec<(String, u32)> {
        let mut out: Vec<(String, u32)> = self
            .inner
            .read()
            .iter()
            .map(|(k, d)| (k.clone(), d.version))
            .collect();
        out.sort();
        out
    }

    /// Current version of a model, if deployed.
    pub fn version(&self, name: &str) -> Option<u32> {
        self.inner.read().get(name).map(|d| d.version)
    }

    /// Resolve a model's pool for one request. `None` selects the sole
    /// deployed model (the single-model fast path); with several models
    /// deployed the name is mandatory.
    pub(crate) fn resolve(&self, name: Option<&str>) -> Result<ModelPool> {
        let models = self.inner.read();
        match name {
            Some(n) => models
                .get(n)
                .map(|d| d.pool.clone())
                .ok_or_else(|| ServingError::Config(format!("unknown model: {n}"))),
            None => match models.values().next() {
                Some(sole) if models.len() == 1 => Ok(sole.pool.clone()),
                _ => Err(ServingError::Config(format!(
                    "{} models deployed; requests must name one",
                    models.len()
                ))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crayfish_models::tiny;

    #[test]
    fn deploy_versions_increment() {
        let reg = ModelRegistry::new(ServingConfig::default());
        assert_eq!(reg.deploy("m", &tiny::tiny_mlp(1)).unwrap(), 1);
        assert_eq!(reg.deploy("m", &tiny::tiny_mlp(2)).unwrap(), 2);
        assert_eq!(reg.version("m"), Some(2));
        assert_eq!(reg.deployments(), vec![("m".to_string(), 2)]);
    }

    #[test]
    fn undeploy_removes() {
        let reg = ModelRegistry::new(ServingConfig::default());
        reg.deploy("m", &tiny::tiny_mlp(1)).unwrap();
        reg.undeploy("m").unwrap();
        assert!(reg.undeploy("m").is_err());
        assert!(reg.version("m").is_none());
    }

    #[test]
    fn resolution_rules() {
        let reg = ModelRegistry::new(ServingConfig::default());
        assert!(reg.resolve(None).is_err(), "empty registry");
        reg.deploy("a", &tiny::tiny_mlp(1)).unwrap();
        assert!(reg.resolve(None).is_ok(), "single model needs no name");
        reg.deploy("b", &tiny::tiny_cnn(1)).unwrap();
        assert!(reg.resolve(None).is_err(), "ambiguous without a name");
        assert!(reg.resolve(Some("a")).is_ok());
        assert!(reg.resolve(Some("zzz")).is_err());
    }
}
