//! Property test: partition offsets are assigned strictly monotonically —
//! contiguous from zero, no gap, no duplicate — no matter how many
//! producers race their appends. Offset integrity is what at-least-once
//! replay and lag accounting stand on.

use std::sync::{Arc, Mutex};

use bytes::Bytes;
use crayfish_broker::Broker;
use crayfish_sim::NetworkModel;
use proptest::prelude::*;

/// Per-partition list of `(first_offset, batch_len)` observed by appenders.
type SeenOffsets = Arc<Mutex<Vec<Vec<(u64, usize)>>>>;

proptest! {
    // Each case spins up real threads; keep the case count bounded.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn concurrent_appends_assign_contiguous_offsets(
        producers in 1usize..5,
        partitions in 1u32..4,
        batches in 1usize..20,
        batch_len in 1usize..4,
    ) {
        let broker = Broker::new(NetworkModel::zero());
        broker.create_topic("t", partitions).unwrap();
        // (partition -> first offsets observed by appenders)
        let seen: SeenOffsets = Arc::new(Mutex::new(vec![Vec::new(); partitions as usize]));
        let mut handles = Vec::new();
        for p in 0..producers {
            let broker = broker.clone();
            let seen = seen.clone();
            handles.push(std::thread::spawn(move || {
                for b in 0..batches {
                    let partition = ((p + b) % partitions as usize) as u32;
                    let values: Vec<_> = (0..batch_len)
                        .map(|_| (Bytes::from_static(b"x"), 0.0))
                        .collect();
                    let (first, _) = broker.append("t", partition, values).unwrap();
                    seen.lock().unwrap()[partition as usize].push((first, batch_len));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Within each partition the assigned ranges must tile [0, total)
        // exactly: strictly monotonic once sorted, adjacent, no overlap.
        for (partition, mut ranges) in seen.lock().unwrap().clone().into_iter().enumerate() {
            ranges.sort_unstable();
            let mut next = 0u64;
            for (first, len) in ranges {
                prop_assert_eq!(
                    first, next,
                    "partition {} skipped or reused offsets", partition
                );
                next = first + len as u64;
            }
            let recs = broker
                .read("t", partition as u32, 0, usize::MAX, usize::MAX)
                .unwrap();
            prop_assert_eq!(recs.len() as u64, next);
            for (i, rec) in recs.iter().enumerate() {
                prop_assert_eq!(rec.offset, i as u64, "offset gap at {}", i);
            }
        }
    }
}
