//! Machine-readable findings report. The lint crate is deliberately
//! dependency-free, so this is a small hand-rolled JSON writer — the
//! report shape is flat enough that escaping strings is the only hard
//! part.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use crate::LintOutput;

fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize the full lint output: every finding (with suppression
/// state), call-graph resolution stats, and the empirical lock-order
/// edges.
pub fn render(out: &LintOutput) -> String {
    let mut s = String::from("{\n  \"findings\": [\n");
    for (i, f) in out.findings.iter().enumerate() {
        s.push_str("    {\"rule\": ");
        esc(&mut s, f.v.rule);
        s.push_str(", \"file\": ");
        esc(&mut s, &f.v.rel);
        let _ = write!(s, ", \"line\": {}", f.v.line);
        s.push_str(", \"fingerprint\": ");
        esc(&mut s, &f.v.fingerprint);
        s.push_str(", \"message\": ");
        esc(&mut s, &f.v.msg);
        match &f.suppressed {
            Some(reason) => {
                s.push_str(", \"suppressed\": ");
                esc(&mut s, reason);
            }
            None => s.push_str(", \"suppressed\": null"),
        }
        s.push('}');
        if i + 1 < out.findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ],\n");

    let g = &out.project.graph;
    let _ = writeln!(
        s,
        "  \"call_graph\": {{\"functions\": {}, \"resolved_edges\": {}, \
         \"ambiguous_edges\": {}, \"unresolved_edges\": {}}},",
        g.fns.len(),
        g.resolved_edges,
        g.ambiguous_edges,
        g.unresolved_edges
    );

    s.push_str("  \"lock_order_edges\": [\n");
    for (i, e) in out.project.lock_edges.iter().enumerate() {
        s.push_str("    {\"crate\": ");
        esc(&mut s, &e.from.0);
        s.push_str(", \"from\": ");
        esc(&mut s, &e.from.1);
        s.push_str(", \"to\": ");
        esc(&mut s, &e.to.1);
        s.push_str(", \"observed_in\": ");
        esc(&mut s, &e.observed_in);
        s.push('}');
        if i + 1 < out.project.lock_edges.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

pub fn write_report(path: &Path, out: &LintOutput) -> Result<(), String> {
    fs::write(path, render(out)).map_err(|e| format!("write {}: {e}", path.display()))
}
