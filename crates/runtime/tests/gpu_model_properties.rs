//! Properties of the simulated-GPU cost model: monotonicity in every input
//! and sane composition of the three cost components.

use proptest::prelude::*;

use crayfish_runtime::GpuSpec;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn forward_time_is_monotone_in_every_argument(
        flops in 1u64..10_000_000_000,
        kernels in 1usize..200,
        in_bytes in 1usize..10_000_000,
        out_bytes in 1usize..1_000_000,
    ) {
        let gpu = GpuSpec::t4();
        let base = gpu.forward_seconds(flops, kernels, in_bytes, out_bytes);
        prop_assert!(base > 0.0);
        prop_assert!(gpu.forward_seconds(flops * 2, kernels, in_bytes, out_bytes) >= base);
        prop_assert!(gpu.forward_seconds(flops, kernels + 1, in_bytes, out_bytes) >= base);
        prop_assert!(gpu.forward_seconds(flops, kernels, in_bytes * 2, out_bytes) >= base);
        prop_assert!(gpu.forward_seconds(flops, kernels, in_bytes, out_bytes * 2) >= base);
    }

    #[test]
    fn components_are_additive(
        flops in 1u64..1_000_000_000,
        kernels in 1usize..100,
        bytes in 1usize..1_000_000,
    ) {
        // forward(a+b FLOPs) == forward(a) + forward(b) - fixed parts, i.e.
        // the compute term is linear in FLOPs.
        let gpu = GpuSpec::t4();
        let fixed = gpu.forward_seconds(0, kernels, bytes, bytes);
        let one = gpu.forward_seconds(flops, kernels, bytes, bytes);
        let two = gpu.forward_seconds(flops * 2, kernels, bytes, bytes);
        let delta1 = one - fixed;
        let delta2 = two - fixed;
        prop_assert!((delta2 - 2.0 * delta1).abs() < 1e-9, "{delta1} vs {delta2}");
    }

    #[test]
    fn batch_amortises_launches(
        kernels in 2usize..100,
        item_bytes in 1usize..100_000,
    ) {
        // Doubling the batch doubles transfer+compute but not launches, so
        // time per item strictly improves.
        let gpu = GpuSpec::t4();
        let flops_per_item = 1_000_000u64;
        let one = gpu.forward_seconds(flops_per_item, kernels, item_bytes, 64);
        let eight = gpu.forward_seconds(flops_per_item * 8, kernels, item_bytes * 8, 64 * 8);
        prop_assert!(eight / 8.0 < one, "per-item {} vs {}", eight / 8.0, one);
    }
}
