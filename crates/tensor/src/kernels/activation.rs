//! Activation functions.

/// In-place ReLU.
pub fn relu_inplace(x: &mut [f32]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// Row-wise numerically stable softmax over a `[rows, cols]` buffer.
pub fn softmax_rows(x: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(x.len(), rows * cols, "softmax: input length");
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut x = vec![-1.0, 0.0, 2.5, -0.001];
        relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.5, 0.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut x = vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0];
        softmax_rows(&mut x, 2, 3);
        for r in 0..2 {
            let sum: f32 = x[r * 3..(r + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "row {r} sums to {sum}");
        }
        // Larger logits get larger probabilities.
        assert!(x[2] > x[1] && x[1] > x[0]);
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut x = vec![1000.0, 1001.0];
        softmax_rows(&mut x, 1, 2);
        assert!(x.iter().all(|v| v.is_finite()));
        assert!((x[0] + x[1] - 1.0).abs() < 1e-5);
    }

    proptest! {
        #[test]
        fn softmax_output_is_a_distribution(
            cols in 1usize..16,
            seed in any::<u64>(),
        ) {
            let t = crate::Tensor::seeded_uniform([3, cols], seed, -50.0, 50.0);
            let mut x = t.data().to_vec();
            softmax_rows(&mut x, 3, cols);
            for r in 0..3 {
                let row = &x[r * cols..(r + 1) * cols];
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
}
