//! The experiment runner: orchestrates producer → SUT → consumer for one
//! configuration and reduces the measurements (§4.1's per-experiment
//! process, with the warmup discard of §4.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crayfish_broker::{Broker, BrokerApi, ClusterConfig};
use crayfish_models::ModelSpec;
use crayfish_runtime::{Device, EmbeddedLib};
use crayfish_serving::{ExternalKind, ServingConfig};
use crayfish_sim::NetworkModel;
use crayfish_tensor::NnGraph;

use crate::consumer::{LatencySample, OutputConsumer};
use crate::deploy::DeploymentTopology;
use crate::metrics::LagSample;
use crate::metrics::{summarize, Summary};
use crate::processor::{DataProcessor, ProcessorContext};
use crate::scoring::ScorerSpec;
use crate::workload::{start_producer, Workload};
use crate::Result;

pub use crate::workload::Workload as WorkloadSpec;

/// Which serving alternative an experiment tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ServingChoice {
    /// Embedded serving via an interoperability library.
    Embedded {
        /// The library.
        lib: EmbeddedLib,
        /// CPU or simulated GPU.
        device: Device,
    },
    /// External serving via a dedicated inference service.
    External {
        /// The framework.
        kind: ExternalKind,
        /// Device of the *server's* workers.
        device: Device,
    },
}

impl ServingChoice {
    /// Paper-style label, e.g. `"onnx (e)"` or `"tf_serving (x)"`, with a
    /// `-gpu` suffix on accelerated configurations.
    pub fn label(&self) -> String {
        let (name, kind, device) = match self {
            ServingChoice::Embedded { lib, device } => (lib.name(), "e", device),
            ServingChoice::External { kind, device } => (kind.name(), "x", device),
        };
        if device.is_gpu() {
            format!("{name}-gpu ({kind})")
        } else {
            format!("{name} ({kind})")
        }
    }
}

/// One experiment configuration (Table 1's parameters plus the SUT choice).
#[derive(Debug, Clone)]
pub struct ExperimentSpec {
    /// The pre-trained model.
    pub model: ModelSpec,
    /// Weight/data seed.
    pub seed: u64,
    /// Serving alternative.
    pub serving: ServingChoice,
    /// Input-rate scenario (`ir` / `bd` / `tbb`).
    pub workload: Workload,
    /// Data points per batch (`bsz`).
    pub bsz: usize,
    /// Parallelism (`mp`).
    pub mp: usize,
    /// Partitions per topic (the paper uses 32).
    pub partitions: u32,
    /// Measurement window.
    pub duration: Duration,
    /// Leading fraction of samples discarded as warmup (paper: 25 %).
    pub warmup_fraction: f64,
    /// The modelled LAN between components.
    pub network: NetworkModel,
    /// Live observability recorder shared by every component of the run
    /// (broker clients, engine tasks, the serving tool). Disabled by
    /// default: a disabled handle records nothing and never reads the
    /// clock.
    pub obs: crate::obs::ObsHandle,
    /// Fault switches shared by every component of the run. Disabled by
    /// default: a disabled handle is a `None` behind a pointer and each
    /// check costs one branch. Enabling it also switches external serving
    /// onto the resilient client (retries, deadlines, circuit breaker) and
    /// a restartable server.
    pub chaos: crate::chaos::ChaosHandle,
    /// Deterministic fault schedule executed against `chaos` while the
    /// measurement window runs. Empty by default (no injector thread is
    /// spawned); ignored when `chaos` is disabled.
    pub chaos_plan: crate::chaos::FaultPlan,
    /// Broker cluster layout. The default is a single node with
    /// replication factor 1 (the unreplicated broker); chaos drills use
    /// [`ClusterConfig::replicated`] so `LeaderKill` windows exercise
    /// failover instead of a total outage.
    pub cluster: ClusterConfig,
    /// Where the broker and engine workers live. `InProcess` (the
    /// default) keeps everything in this process; `MultiProcess` spawns
    /// real broker-node children over TCP (and optionally engine-worker
    /// children), exercising the same pipeline across process boundaries.
    pub deployment: DeploymentTopology,
}

impl ExperimentSpec {
    /// A short, quick-running spec with the paper's structural defaults.
    pub fn quick(model: ModelSpec, serving: ServingChoice) -> ExperimentSpec {
        ExperimentSpec {
            model,
            seed: 42,
            serving,
            workload: Workload::Constant { rate: 100.0 },
            bsz: 1,
            mp: 1,
            partitions: 8,
            duration: Duration::from_secs(2),
            warmup_fraction: 0.25,
            network: NetworkModel::zero(),
            obs: crate::obs::ObsHandle::disabled(),
            chaos: crate::chaos::ChaosHandle::disabled(),
            chaos_plan: crate::chaos::FaultPlan::empty(),
            cluster: ClusterConfig::default(),
            deployment: DeploymentTopology::InProcess,
        }
    }
}

/// The reduced outcome of one experiment.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Events the producer generated.
    pub produced: u64,
    /// Scored events observed on the output topic.
    pub consumed: usize,
    /// Post-warmup throughput in events/s.
    pub throughput_eps: f64,
    /// Post-warmup end-to-end latency summary (ms).
    pub latency: Summary,
    /// All samples (including warmup), ordered by completion time.
    pub samples: Vec<LatencySample>,
    /// Input-topic consumer lag of the SUT over the run, sampled ~4×/s —
    /// the sustainability signal (bounded lag ⇔ the SUT keeps up).
    pub lag_samples: Vec<LagSample>,
    /// Warmup cutoff (ms since first completion) used for the summaries.
    pub warmup_cutoff_ms: f64,
    /// Fault/recovery accounting (incidents, MTTR, retries, duplicates
    /// dropped, availability). `None` unless the spec carried an enabled
    /// chaos handle.
    pub recovery: Option<crate::chaos::RecoveryReport>,
}

impl ExperimentResult {
    /// True when consumer lag stayed bounded over the second half of the
    /// run: the maximum late-run lag is no more than `max_lag` events.
    pub fn lag_bounded(&self, max_lag: u64) -> bool {
        let n = self.lag_samples.len();
        if n < 2 {
            return true;
        }
        self.lag_samples[n / 2..].iter().all(|s| s.lag <= max_lag)
    }
}

static RUN_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Run one experiment: build the model, deploy the serving tool and the
/// processor, generate load for `spec.duration`, and reduce the output
/// samples.
pub fn run_experiment(
    processor: &dyn DataProcessor,
    spec: &ExperimentSpec,
) -> Result<ExperimentResult> {
    let graph = Arc::new(spec.model.build(spec.seed));
    run_experiment_with_graph(processor, spec, graph)
}

/// [`run_experiment`] with a pre-built model graph (benchmarks reuse one
/// ResNet50 across dozens of configurations).
pub fn run_experiment_with_graph(
    processor: &dyn DataProcessor,
    spec: &ExperimentSpec,
    graph: Arc<NnGraph>,
) -> Result<ExperimentResult> {
    if spec.mp == 0 {
        return Err(crate::CoreError::Config("mp must be >= 1".into()));
    }
    if !(0.0..1.0).contains(&spec.warmup_fraction) {
        return Err(crate::CoreError::Config(
            "warmup_fraction must be in [0, 1)".into(),
        ));
    }
    let run = RUN_COUNTER.fetch_add(1, Ordering::Relaxed);
    let input_topic = format!("crayfish-in-{run}");
    let output_topic = format!("crayfish-out-{run}");

    // The broker "cluster": in-process replicas by default, or real
    // `crayfish-node` child processes reached through a failover-aware
    // RPC client. Either way the rest of the runner only sees `BrokerApi`.
    let mut node_procs: Option<crate::deploy::BrokerCluster> = None;
    let broker: Arc<dyn BrokerApi> = match spec.deployment {
        DeploymentTopology::InProcess => Broker::with_cluster(
            spec.network,
            spec.obs.clone(),
            spec.chaos.clone(),
            spec.cluster.clone(),
        )
        .map_err(|e| crate::CoreError::Config(format!("broker cluster: {e}")))?,
        DeploymentTopology::MultiProcess { broker_nodes, .. } => {
            let min_isr = broker_nodes / 2 + 1;
            let cluster = crate::deploy::spawn_broker_cluster(broker_nodes, min_isr)?;
            let client = cluster.client(spec.obs.clone(), spec.chaos.clone());
            node_procs = Some(cluster);
            client
        }
    };
    broker.create_topic(&input_topic, spec.partitions)?;
    broker.create_topic(&output_topic, spec.partitions)?;

    // External serving runs as a separate service sized to mp (§4.3). A
    // chaos-enabled run deploys it behind the restartable wrapper (so the
    // injector can crash and restore it in place) and connects through the
    // resilient client instead of the raw one.
    enum RunServer {
        Plain(crayfish_serving::ServerHandle),
        Restartable(Arc<crayfish_serving::RestartableServer>),
    }
    let (scorer, server) = match spec.serving {
        ServingChoice::Embedded { lib, device } => (
            ScorerSpec::Embedded {
                lib,
                graph: graph.clone(),
                device,
            },
            None,
        ),
        ServingChoice::External { kind, device } => {
            let config = ServingConfig {
                replicas: spec.mp,
                device,
                obs: spec.obs.clone(),
                ..Default::default()
            };
            if spec.chaos.is_enabled() {
                let server = crayfish_serving::RestartableServer::start(kind, &graph, config)?;
                let scorer = ScorerSpec::ResilientExternal {
                    kind,
                    addr: server.addr(),
                    network: spec.network,
                    config: crayfish_serving::ResilienceConfig {
                        retry: crate::chaos::RetryPolicy::patient(),
                        chaos: spec.chaos.clone(),
                        obs: spec.obs.clone(),
                        ..Default::default()
                    },
                };
                (scorer, Some(RunServer::Restartable(server)))
            } else {
                let server = kind.start(&graph, config)?;
                let scorer = ScorerSpec::External {
                    kind,
                    addr: server.addr(),
                    network: spec.network,
                };
                (scorer, Some(RunServer::Plain(server)))
            }
        }
    };

    let ctx = ProcessorContext {
        broker: broker.clone(),
        input_topic: input_topic.clone(),
        output_topic: output_topic.clone(),
        group: "crayfish-sut".into(),
        scorer,
        mp: spec.mp,
    };
    ctx.validate()?;
    let job = match spec.deployment {
        DeploymentTopology::MultiProcess { engine_workers, .. } if engine_workers > 0 => {
            // Engine workers as child processes: the generic scoring
            // worker binary replaces the in-process engine personality.
            let fleet = crate::deploy::WorkerFleetSpec {
                nodes: node_procs
                    .as_ref()
                    .expect("MultiProcess built a cluster")
                    .addrs()
                    .to_vec(),
                input_topic: input_topic.clone(),
                output_topic: output_topic.clone(),
                group: "crayfish-sut".into(),
                partitions: spec.partitions,
                model: spec.model.name().into(),
                seed: spec.seed,
                workers: engine_workers,
            };
            crate::deploy::spawn_workers(&fleet, &spec.obs)?
        }
        _ => processor.start(ctx)?,
    };

    // With a live handle and a non-empty plan, walk the fault schedule in
    // real time against this run's broker/serving/engine components.
    let mut injector = if spec.chaos.is_enabled() && !spec.chaos_plan.is_empty() {
        let mut actions = crate::chaos::ChaosActions::default();
        if let Some(RunServer::Restartable(rs)) = &server {
            let (crash, restore) = (rs.clone(), rs.clone());
            actions.on_serving_crash = Some(Box::new(move || crash.crash()));
            actions.on_serving_restore = Some(Box::new(move || {
                let _ = restore.restore();
            }));
        }
        Some(crate::chaos::FaultInjector::start(
            &spec.chaos_plan,
            spec.chaos.clone(),
            crate::chaos::InjectorConfig {
                target_topic: input_topic.clone(),
                ..Default::default()
            },
            actions,
        ))
    } else {
        None
    };

    let mut output = OutputConsumer::new(broker.clone(), &output_topic)?;
    let producer = start_producer(
        broker.clone(),
        &input_topic,
        spec.model.input_shape(),
        spec.bsz,
        spec.workload,
        spec.seed,
    )?;

    // Measurement window, with periodic SUT-lag sampling.
    let mut samples: Vec<LatencySample> = Vec::new();
    let mut lag_samples: Vec<LagSample> = Vec::new();
    let lag_gauge = spec.obs.gauge("consumer_lag");
    let mut observed = 0usize;
    let started = crayfish_sim::now();
    let deadline = started + spec.duration;
    let mut next_lag_probe = started;
    while crayfish_sim::now() < deadline {
        let remaining = deadline.saturating_duration_since(crayfish_sim::now());
        output.poll_into(remaining.min(Duration::from_millis(100)), &mut samples)?;
        observed = observe_e2e(&spec.obs, &samples, observed);
        let now = crayfish_sim::now();
        if now >= next_lag_probe {
            if let Ok(lag) = broker.group_lag("crayfish-sut", &input_topic) {
                lag_gauge.set(lag as i64);
                lag_samples.push(LagSample {
                    t_ms: now.duration_since(started).as_secs_f64() * 1e3,
                    lag,
                });
            }
            next_lag_probe = now + Duration::from_millis(250);
        }
    }
    let produced = producer.stop();

    // Short drain so in-flight batches do not distort shutdown, then stop.
    let drain_deadline = crayfish_sim::now() + Duration::from_millis(300);
    while crayfish_sim::now() < drain_deadline {
        if output.poll_into(Duration::from_millis(50), &mut samples)? == 0 {
            break;
        }
    }
    observe_e2e(&spec.obs, &samples, observed);
    // Stop the injector first: it clears every fault switch (and restores a
    // crashed server), so the job and server shut down on a healthy system.
    if let Some(inj) = injector.as_mut() {
        inj.stop();
    }
    job.stop();
    match server {
        Some(RunServer::Plain(h)) => h.shutdown(),
        Some(RunServer::Restartable(rs)) => rs.crash(),
        None => {}
    }
    if let Some(mut procs) = node_procs {
        procs.shutdown();
    }

    let mut result = reduce(spec, produced, samples);
    result.lag_samples = lag_samples;
    result.recovery = spec.chaos.is_enabled().then(|| spec.chaos.report());
    Ok(result)
}

/// Options for the sustainable-throughput search.
#[derive(Debug, Clone, Copy)]
pub struct StSearchOptions {
    /// Duration of every probe run.
    pub probe: Duration,
    /// Binary-search refinement steps after the capacity probe.
    pub iterations: usize,
    /// A rate is sustainable when the achieved output rate is at least
    /// `(1 - tolerance) *` the offered rate (Karimov-style definition).
    pub tolerance: f64,
}

impl Default for StSearchOptions {
    fn default() -> Self {
        StSearchOptions {
            probe: Duration::from_secs(3),
            iterations: 4,
            tolerance: 0.05,
        }
    }
}

/// Find a configuration's sustainable throughput (§4.1: "the maximum rate
/// that can be handled by the processor").
///
/// Procedure: one overload probe estimates capacity, then a binary search
/// over offered rates finds the highest rate the SUT keeps up with (output
/// rate within `tolerance` of the offered rate). Returns events/second.
pub fn find_sustainable_rate(
    processor: &dyn DataProcessor,
    base: &ExperimentSpec,
    opts: StSearchOptions,
) -> Result<f64> {
    let graph = Arc::new(base.model.build(base.seed));
    let probe = |rate: f64| -> Result<f64> {
        let mut spec = base.clone();
        spec.workload = Workload::Constant { rate };
        spec.duration = opts.probe;
        let result = run_experiment_with_graph(processor, &spec, graph.clone())?;
        // Sustainable means both: output keeps pace AND the SUT's input lag
        // stays bounded (half a second of backlog at the offered rate).
        let bounded = result.lag_bounded(((rate * 0.5) as u64).max(64));
        Ok(if bounded {
            result.throughput_eps
        } else {
            result.throughput_eps.min(rate * 0.8)
        })
    };
    // Capacity estimate under heavy overload.
    let capacity = probe(1.0e9)?;
    if capacity <= 0.0 {
        return Ok(0.0);
    }
    let mut lo = 0.0f64;
    let mut hi = capacity * 1.5;
    let mut best = capacity;
    for _ in 0..opts.iterations {
        let mid = (lo + hi) / 2.0;
        let achieved = probe(mid)?;
        if achieved >= mid * (1.0 - opts.tolerance) {
            best = best.max(achieved);
            lo = mid;
        } else {
            best = best.max(achieved);
            hi = mid;
        }
    }
    Ok(best)
}

/// Feed latency samples past `from` into the end-to-end histogram.
/// Returns the new high-water mark.
fn observe_e2e(obs: &crate::obs::ObsHandle, samples: &[LatencySample], from: usize) -> usize {
    if obs.is_enabled() {
        for s in &samples[from..] {
            obs.observe_e2e_ns((s.latency_ms.max(0.0) * 1e6) as u64);
        }
    }
    samples.len()
}

fn reduce(
    spec: &ExperimentSpec,
    produced: u64,
    mut samples: Vec<LatencySample>,
) -> ExperimentResult {
    samples.sort_by(|a, b| a.end_ms.total_cmp(&b.end_ms));
    let consumed = samples.len();
    if samples.is_empty() {
        return ExperimentResult {
            produced,
            consumed,
            throughput_eps: 0.0,
            latency: Summary::empty(),
            samples,
            lag_samples: Vec::new(),
            warmup_cutoff_ms: 0.0,
            recovery: None,
        };
    }
    let t0 = samples.first().expect("non-empty").end_ms;
    let t1 = samples.last().expect("non-empty").end_ms;
    let cutoff = t0 + spec.warmup_fraction * (t1 - t0);
    let steady: Vec<&LatencySample> = samples.iter().filter(|s| s.end_ms >= cutoff).collect();
    let latencies: Vec<f64> = steady.iter().map(|s| s.latency_ms).collect();
    let span_s = (t1 - cutoff).max(f64::EPSILON) / 1e3;
    let throughput = if steady.len() > 1 {
        (steady.len() - 1) as f64 / span_s
    } else {
        0.0
    };
    ExperimentResult {
        produced,
        consumed,
        throughput_eps: throughput,
        latency: summarize(&latencies),
        samples,
        lag_samples: Vec::new(),
        warmup_cutoff_ms: cutoff - t0,
        recovery: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::RunningJob;
    use crate::scoring::score_payload;
    use crayfish_broker::{PartitionConsumer, Producer, ProducerConfig};
    use std::sync::atomic::AtomicBool;

    /// A minimal single-threaded reference processor used to test the
    /// runner without any engine crate.
    struct InlineProcessor;

    struct InlineJob {
        stop: Arc<AtomicBool>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl RunningJob for InlineJob {
        fn stop(mut self: Box<Self>) {
            self.stop.store(true, Ordering::SeqCst);
            if let Some(h) = self.thread.take() {
                let _ = h.join();
            }
        }
    }

    impl DataProcessor for InlineProcessor {
        fn name(&self) -> &'static str {
            "inline"
        }
        fn start(&self, ctx: ProcessorContext) -> Result<Box<dyn RunningJob>> {
            let stop = Arc::new(AtomicBool::new(false));
            let flag = stop.clone();
            let partitions = ctx.broker.partitions(&ctx.input_topic)?;
            let mut consumer = PartitionConsumer::new(
                ctx.broker.clone(),
                &ctx.input_topic,
                &ctx.group,
                (0..partitions).collect(),
            )?;
            let mut producer = Producer::new(
                ctx.broker.clone(),
                &ctx.output_topic,
                ProducerConfig::default(),
            )?;
            let mut scorer = ctx.scorer.build()?;
            let thread = std::thread::spawn(move || {
                while !flag.load(Ordering::SeqCst) {
                    let records = match consumer.poll(Duration::from_millis(50)) {
                        Ok(r) => r,
                        Err(_) => break,
                    };
                    for rec in records {
                        if let Ok(out) = score_payload(scorer.as_mut(), &rec.value) {
                            let _ = producer.send(None, out);
                        }
                    }
                    consumer.commit();
                }
            });
            Ok(Box::new(InlineJob {
                stop,
                thread: Some(thread),
            }))
        }
    }

    #[test]
    fn end_to_end_experiment_produces_sane_results() {
        let spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        let result = run_experiment(&InlineProcessor, &spec).unwrap();
        assert!(result.produced > 50, "produced {}", result.produced);
        assert!(result.consumed > 50, "consumed {}", result.consumed);
        // Everything consumed was produced.
        assert!(result.consumed as u64 <= result.produced + 5);
        assert!(
            result.throughput_eps > 10.0,
            "{} eps",
            result.throughput_eps
        );
        assert!(result.latency.count > 0);
        assert!(result.latency.mean > 0.0 && result.latency.mean < 1_000.0);
        assert!(result.latency.p99 >= result.latency.p50);
        // Samples are time-ordered.
        for pair in result.samples.windows(2) {
            assert!(pair[0].end_ms <= pair[1].end_ms);
        }
    }

    #[test]
    fn rejects_invalid_specs() {
        let mut spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.mp = 0;
        assert!(run_experiment(&InlineProcessor, &spec).is_err());
        let mut spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.warmup_fraction = 1.5;
        assert!(run_experiment(&InlineProcessor, &spec).is_err());
    }

    #[test]
    fn external_serving_runs_end_to_end() {
        let mut spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::External {
                kind: ExternalKind::TfServing,
                device: Device::Cpu,
            },
        );
        spec.duration = Duration::from_millis(1500);
        let result = run_experiment(&InlineProcessor, &spec).unwrap();
        assert!(result.consumed > 20, "consumed {}", result.consumed);
        assert!(result.latency.mean > 0.0);
    }

    #[test]
    fn serving_choice_labels() {
        let e = ServingChoice::Embedded {
            lib: EmbeddedLib::Onnx,
            device: Device::Cpu,
        };
        assert_eq!(e.label(), "onnx (e)");
        let xg = ServingChoice::External {
            kind: ExternalKind::TfServing,
            device: Device::gpu(),
        };
        assert_eq!(xg.label(), "tf_serving-gpu (x)");
    }

    #[test]
    fn lag_is_sampled_and_bounded_when_underloaded() {
        let spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        let result = run_experiment(&InlineProcessor, &spec).unwrap();
        assert!(
            result.lag_samples.len() >= 4,
            "{} lag probes",
            result.lag_samples.len()
        );
        assert!(result.lag_bounded(100), "lag grew under light load");
        // Probes are time-ordered.
        for pair in result.lag_samples.windows(2) {
            assert!(pair[1].t_ms >= pair[0].t_ms);
        }
    }

    #[test]
    fn sustainable_rate_search_converges() {
        let mut spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        spec.partitions = 4;
        let opts = StSearchOptions {
            probe: Duration::from_millis(700),
            iterations: 2,
            tolerance: 0.1,
        };
        let st = find_sustainable_rate(&InlineProcessor, &spec, opts).unwrap();
        // The inline processor on a tiny model sustains thousands/s; the
        // search must land on something positive and finite.
        assert!(st > 100.0, "st = {st}");
        assert!(st.is_finite());
    }

    #[test]
    fn reduce_discards_warmup() {
        let spec = ExperimentSpec::quick(
            ModelSpec::TinyMlp,
            ServingChoice::Embedded {
                lib: EmbeddedLib::Onnx,
                device: Device::Cpu,
            },
        );
        // 100 samples over 10 s; first quarter has huge latencies.
        let samples: Vec<LatencySample> = (0..100)
            .map(|i| LatencySample {
                id: i as u64,
                end_ms: 1000.0 + i as f64 * 100.0,
                latency_ms: if i < 25 { 10_000.0 } else { 10.0 },
            })
            .collect();
        let result = reduce(&spec, 100, samples);
        assert!(result.latency.max < 11_000.0);
        assert!(
            result.latency.mean < 200.0,
            "warmup not discarded: {}",
            result.latency.mean
        );
    }
}
