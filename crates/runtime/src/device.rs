//! Inference devices: the real CPU and the simulated GPU.

use serde::{Deserialize, Serialize};

use crayfish_sim::calibration;
use crayfish_sim::{Cost, OverheadModel};

/// Performance envelope of the simulated accelerator.
///
/// Defaults model the paper's NVIDIA T4 (§4.2): PCIe 3.0 x16 transfers,
/// ~10 µs kernel launches, and ~2.8 TFLOPS achieved fp32 throughput. All
/// constants come from [`crayfish_sim::calibration`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Achieved fp32 FLOPs per second for conv/GEMM work.
    pub flops_per_s: f64,
    /// Per-kernel launch cost.
    pub kernel_launch: Cost,
    /// Host↔device transfer cost (per byte each way).
    pub pcie: Cost,
}

impl GpuSpec {
    /// The calibrated T4-like accelerator.
    pub fn t4() -> Self {
        let m = OverheadModel::calibrated();
        GpuSpec {
            flops_per_s: calibration::GPU_FP32_FLOPS,
            kernel_launch: m.gpu_kernel_launch,
            pcie: m.pcie_transfer,
        }
    }

    /// Modelled execution time for a forward pass, in seconds.
    ///
    /// First-order additive model: input upload + one launch per fused
    /// kernel + compute at the achieved FLOP rate + output download.
    pub fn forward_seconds(
        &self,
        flops: u64,
        kernels: usize,
        in_bytes: usize,
        out_bytes: usize,
    ) -> f64 {
        let upload = self.pcie.duration(in_bytes).as_secs_f64();
        let download = self.pcie.duration(out_bytes).as_secs_f64();
        let launches = self.kernel_launch.duration(0).as_secs_f64() * kernels as f64;
        let compute = flops as f64 / self.flops_per_s;
        upload + launches + compute + download
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        Self::t4()
    }
}

/// Where a loaded model executes.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum Device {
    /// Execute kernels for real on the host CPU (single intra-op thread).
    #[default]
    Cpu,
    /// Simulate execution on an accelerator: wall time follows the
    /// [`GpuSpec`] cost model; outputs come from a cheap deterministic
    /// surrogate (see `exec::gpu`).
    Gpu(GpuSpec),
}

impl Device {
    /// The default simulated GPU.
    pub fn gpu() -> Self {
        Device::Gpu(GpuSpec::t4())
    }

    /// True if this is the (simulated) accelerator.
    pub fn is_gpu(&self) -> bool {
        matches!(self, Device::Gpu(_))
    }

    /// Short name for configs and reports ("cpu" / "gpu").
    pub fn name(&self) -> &'static str {
        match self {
            Device::Cpu => "cpu",
            Device::Gpu(_) => "gpu",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_resnet_forward_is_a_few_milliseconds() {
        let gpu = GpuSpec::t4();
        // ResNet50, batch 8: ~8.2 GFLOPs/image, ~60 fused kernels,
        // 8 * 3*224*224*4 bytes in, 8 * 1000 * 4 bytes out.
        let secs = gpu.forward_seconds(8 * 8_200_000_000, 60, 8 * 602_112, 8 * 4_000);
        assert!(secs > 0.01 && secs < 0.2, "forward = {secs}s");
    }

    #[test]
    fn transfer_dominates_for_tiny_models() {
        let gpu = GpuSpec::t4();
        // FFNN: 55 KFLOPs, 5 kernels, 3 KB in — launches+transfer dominate.
        let total = gpu.forward_seconds(55_000, 5, 3_136, 40);
        let compute = 55_000.0 / gpu.flops_per_s;
        assert!(total > 10.0 * compute);
    }

    #[test]
    fn device_names() {
        assert_eq!(Device::Cpu.name(), "cpu");
        assert_eq!(Device::gpu().name(), "gpu");
        assert!(Device::gpu().is_gpu());
        assert!(!Device::Cpu.is_gpu());
    }
}
