//! Property-based checks of the reduced-precision kernels: quantize →
//! dequantize round-trip bounds, and the int8 / f16 GEMM paths against the
//! naive f32 oracle across edge dimensions.

use proptest::prelude::*;

use crayfish_tensor::kernels::gemm::{
    gemm_prepacked_a16, gemm_prepacked_b16, gemm_prepacked_b16_ipj, gemm_prepacked_qa,
    gemm_prepacked_qb, matmul_naive,
};
use crayfish_tensor::kernels::quant::{
    amax, f16_bits_to_f32, f32_to_f16_bits, quant_scales, quantize_channel_into,
};
use crayfish_tensor::{
    GemmScratch, PackedA16, PackedB16, QuantizedA, QuantizedB, Tensor,
};

proptest! {
    /// Per-channel symmetric quantization round-trips every value to within
    /// half a quantization step of the channel's scale.
    #[test]
    fn quantize_dequantize_is_within_half_step(
        xs in proptest::collection::vec(-100.0f32..100.0, 1..64),
    ) {
        let (scale, inv) = quant_scales(amax(&xs));
        let mut q = vec![0i16; xs.len()];
        quantize_channel_into(&xs, inv, &mut q);
        for (&x, &qi) in xs.iter().zip(&q) {
            prop_assert!((-127..=127).contains(&qi), "clamped to int8 range");
            let back = qi as f32 * scale;
            prop_assert!(
                (x - back).abs() <= scale * 0.5 + 1e-6,
                "x={x} back={back} scale={scale}"
            );
        }
    }

    /// An all-zero (or empty-range) channel quantizes to exact zeros: both
    /// scales are zero, so dequantization reproduces 0.0 exactly.
    #[test]
    fn zero_channel_round_trips_exactly(len in 1usize..32) {
        let xs = vec![0.0f32; len];
        let (scale, inv) = quant_scales(amax(&xs));
        prop_assert_eq!(scale, 0.0);
        prop_assert_eq!(inv, 0.0);
        let mut q = vec![1i16; len];
        quantize_channel_into(&xs, inv, &mut q);
        prop_assert!(q.iter().all(|&v| v == 0));
    }

    /// f16 storage round-trips finite values to within 2⁻¹¹ relative error
    /// (half-precision has a 10-bit mantissa; round-to-nearest halves the
    /// ulp), with values past the f16 normal range saturating to ±65504.
    #[test]
    fn f16_round_trip_is_half_precision(x in -60000.0f32..60000.0) {
        let back = f16_bits_to_f32(f32_to_f16_bits(x));
        let tol = x.abs() * (1.0 / 2048.0) + 6e-5; // + subnormal ulp
        prop_assert!((x - back).abs() <= tol, "x={x} back={back}");
    }
}

/// Shared driver: check one int8 GEMM result against the f32 oracle.
///
/// With `a` and `b` drawn from `[-1, 1]`, each of the `k` products carries
/// at most `~(step_a/2 + step_b/2) ≤ 1/127` absolute error, so `1.2 · k/127`
/// bounds the sum with margin.
fn assert_q8_close(got: &[f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize, label: &str) {
    let oracle = matmul_naive(a, b, m, k, n);
    let bound = k as f32 / 127.0 * 1.2;
    for i in 0..m * n {
        assert!(
            (got[i] - oracle[i]).abs() <= bound,
            "{label} ({m},{k},{n})[{i}]: {} vs {} (bound {bound})",
            got[i],
            oracle[i]
        );
    }
}

/// Deterministic edge-dimension sweep of both int8 prepacked drivers
/// (weights-as-A for conv, weights-as-B for dense) over every tile
/// remainder in 1..=13 plus shapes past the 128 boundary, against the naive
/// f32 oracle.
#[test]
fn q8_gemm_edge_remainder_sweep() {
    let mut scratch = GemmScratch::new();
    let dims: Vec<usize> = (1..=13).chain([32, 97, 130]).collect();
    let ks = [1usize, 3, 64, 130];
    for &m in &dims {
        for &n in &dims {
            for &k in &ks {
                let seed = (m * 1_000_000 + n * 1000 + k) as u64;
                let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
                let b = Tensor::seeded_uniform([k, n], seed ^ 1, -1.0, 1.0);

                let qa = QuantizedA::from_f32(a.data(), m, k);
                let mut c = vec![0.0f32; m * n];
                gemm_prepacked_qa(&qa, b.data(), &mut c, n, &mut scratch);
                assert_q8_close(&c, a.data(), b.data(), m, k, n, "qa");

                let qb = QuantizedB::from_f32(b.data(), k, n);
                let mut c = vec![0.0f32; m * n];
                gemm_prepacked_qb(a.data(), &qb, &mut c, m, &mut scratch);
                assert_q8_close(&c, a.data(), b.data(), m, k, n, "qb");
            }
        }
    }
}

/// Same sweep for the f16-storage path (both the blocked driver and the
/// skinny-batch strip-streaming variant), at half-precision tolerance.
#[test]
fn f16_gemm_edge_remainder_sweep() {
    let mut scratch = GemmScratch::new();
    let dims: Vec<usize> = (1..=9).chain([32, 130]).collect();
    let ks = [1usize, 3, 64, 130];
    for &m in &dims {
        for &n in &dims {
            for &k in &ks {
                let seed = (m * 1_000_000 + n * 1000 + k) as u64;
                let a = Tensor::seeded_uniform([m, k], seed, -1.0, 1.0);
                let b = Tensor::seeded_uniform([k, n], seed ^ 1, -1.0, 1.0);
                let oracle = matmul_naive(a.data(), b.data(), m, k, n);
                let bound = k as f32 / 2048.0 + 1e-4;

                let pa = PackedA16::pack(a.data(), m, k);
                let mut c = vec![0.0f32; m * n];
                gemm_prepacked_a16(&pa, b.data(), &mut c, n, &mut scratch);
                for i in 0..m * n {
                    assert!((c[i] - oracle[i]).abs() <= bound, "a16 ({m},{k},{n})[{i}]");
                }

                let pb = PackedB16::pack(b.data(), k, n);
                let mut c = vec![0.0f32; m * n];
                gemm_prepacked_b16(a.data(), &pb, &mut c, m, &mut scratch);
                for i in 0..m * n {
                    assert!((c[i] - oracle[i]).abs() <= bound, "b16 ({m},{k},{n})[{i}]");
                }

                let mut c = vec![0.0f32; m * n];
                gemm_prepacked_b16_ipj(a.data(), &pb, &mut c, m);
                for i in 0..m * n {
                    assert!((c[i] - oracle[i]).abs() <= bound, "b16_ipj ({m},{k},{n})[{i}]");
                }
            }
        }
    }
}

proptest! {
    /// Randomised int8 GEMM property at arbitrary (small) shapes, including
    /// non-uniform value ranges per run.
    #[test]
    fn q8_gemm_matches_oracle_on_random_shapes(
        m in 1usize..20,
        k in 1usize..40,
        n in 1usize..20,
        scale in 0.1f32..8.0,
        seed in 0u64..1000,
    ) {
        let a = Tensor::seeded_uniform([m, k], seed, -scale, scale);
        let b = Tensor::seeded_uniform([k, n], seed ^ 7, -scale, scale);
        let oracle = matmul_naive(a.data(), b.data(), m, k, n);
        // Error per product scales with both operands' quantization steps:
        // |da·b + a·db| ≤ scale/127 · scale · 2, summed over k, with margin.
        let bound = 2.4 * k as f32 * scale * scale / 127.0;

        let mut scratch = GemmScratch::new();
        let qa = QuantizedA::from_f32(a.data(), m, k);
        let mut c = vec![0.0f32; m * n];
        gemm_prepacked_qa(&qa, b.data(), &mut c, n, &mut scratch);
        for i in 0..m * n {
            prop_assert!((c[i] - oracle[i]).abs() <= bound, "qa [{i}]");
        }
    }
}
