//! # crayfish-models
//!
//! The "pre-trained models" of the Crayfish reproduction.
//!
//! The paper evaluates two image-classification models (Table 2): a small
//! fully connected network trained on Fashion-MNIST (**FFNN**, ~28 K
//! parameters) and **ResNet50** (~23 M parameters, ImageNet). The paper
//! notes that inference latency depends on input/model *sizes* only, with
//! data content irrelevant — so this crate builds the same architectures
//! with seeded random weights and executes them for real.
//!
//! The crate also implements the four on-disk model formats of Table 2
//! (`onnx`, `saved_model`, `torch`, `h5`) as distinct binary encodings whose
//! relative sizes reproduce the paper's, plus a [`zoo`] for looking models
//! up by name as the benchmark configuration does.

#![forbid(unsafe_code)]

pub mod error;
pub mod ffnn;
pub mod formats;
pub mod resnet;
pub mod tiny;
pub mod zoo;

pub use error::ModelError;
pub use formats::ModelFormat;
pub use zoo::{ModelSpec, ModelZoo};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
